"""Mapping optimization on MAERI: default vs AutoTVM vs mRNA (§VII/VIII).

For one conv and one FC layer of AlexNet this example produces a mapping
three ways — Bifrost's default (all-ones), the AutoTVM module (GBT tuner
on the psum proxy with early stopping), and the mRNA analytical mapper —
then simulates each and prints the cycle comparison of Figure 12.

Run:  python examples/maeri_mapping_tuning.py
"""

from repro.models import alexnet_conv_layers, alexnet_fc_layers
from repro.mrna import MrnaMapper
from repro.stonne.config import maeri_config
from repro.stonne.layer import ConvLayer
from repro.stonne.maeri import MaeriController
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.tuner import MaeriConvTask, MaeriFcTask, XGBTuner

config = maeri_config()  # MAERI, 128 multipliers
controller = MaeriController(config)
mapper = MrnaMapper(config)

for layer in [alexnet_conv_layers()[2], alexnet_fc_layers()[0]]:
    is_conv = isinstance(layer, ConvLayer)
    print(f"== {layer.describe()}")

    # --- AutoTVM module: knob space + GBT tuner + psum objective -------
    if is_conv:
        task = MaeriConvTask(layer, config, objective="psums")
    else:
        task = MaeriFcTask(layer, config, objective="psums")
    tuner = XGBTuner(task, seed=0, warmup=32)
    tuning = tuner.tune(n_trials=400, early_stopping=120)
    tuned = task.best_mapping(tuning.best_config)
    print(
        f"   AutoTVM explored {tuning.num_trials} configs"
        f"{' (early stop)' if tuning.stopped_early else ''}; "
        f"picked {tuned.as_tuple()}"
    )

    # --- mRNA: analytical, no simulation needed ------------------------
    mrna = mapper.map_conv(layer) if is_conv else mapper.map_fc(layer)
    print(f"   mRNA picked {mrna.as_tuple()} analytically")

    # --- simulate all three mappings ------------------------------------
    basic = ConvMapping.basic() if is_conv else FcMapping.basic()
    run = controller.run_conv if is_conv else controller.run_fc
    for label, mapping in [("default", basic), ("AutoTVM", tuned), ("mRNA", mrna)]:
        stats = run(layer, mapping)
        print(
            f"   {label:<8} {stats.cycles:>14,} cycles   "
            f"utilization {stats.utilization:6.1%}   psums {stats.psums:,}"
        )
    base_cycles = run(layer, basic).cycles
    print(
        f"   speedup over default: AutoTVM "
        f"{base_cycles / run(layer, tuned).cycles:.1f}x, "
        f"mRNA {base_cycles / run(layer, mrna).cycles:.1f}x"
    )
    print()
