"""The Session API end to end: one TOML file configures everything.

The unified Session API collapses architecture, engine, cache, fleet
and tuning knobs into a single :class:`repro.session.SessionConfig`.
This example drives the whole workflow from a config file — the same
file ``repro run --config`` accepts, with the same precedence (explicit
kwargs and ``REPRO_*`` variables override it):

1. load a config (``repro.toml`` path as argv[1], or an inline default);
2. run a zoo model and read the structured :class:`RunReport`;
3. tune one layer and read the :class:`TuneReport`;
4. round-trip the run report through JSON (what an archive/CI diff does).

Run:  python examples/session_quickstart.py [path/to/repro.toml]
"""

import json
import sys
import tempfile
from pathlib import Path

from repro.session import RunReport, Session

DEFAULT_TOML = """\
[architecture]
arch = "maeri"
ms_size = 64

[engine]
executor = "serial"

[tuning]
mapping = "mrna"
tuner = "random"
trials = 40
seed = 0
"""

if len(sys.argv) > 1:
    config_path = Path(sys.argv[1])
else:
    config_path = Path(tempfile.gettempdir()) / "session_quickstart.toml"
    config_path.write_text(DEFAULT_TOML)
print(f"config file: {config_path}")

# 1-2. One `with` block owns the engine, caches and pools. --------------
with Session.from_file(config_path) as session:
    print(f"resolved architecture: {session.config.architecture.arch}, "
          f"ms_size={session.simulator_config.ms_size}")

    report = session.run("lenet")
    print(f"lenet: {len(report.layer_stats)} offloaded layers, "
          f"{report.total_cycles:,} simulated cycles")

    # 3. Tuning goes through the same session (and shares its cache). ---
    tuned = session.tune("lenet", "fc3")
    print(f"tuned fc3 with {tuned.tuner}: best {tuned.objective} = "
          f"{tuned.best_cost:,.0f} after {tuned.num_trials} trials "
          f"(mapping {tuned.best_mapping})")

# 4. Reports are plain data: archive them, diff them, reload them. ------
restored = RunReport.from_json(report.to_json())
assert restored.total_cycles == report.total_cycles
assert json.loads(report.to_json())["model"] == "lenet"
print("run report JSON round-trip verified")
print(f"session closed cleanly: {session.closed}")
