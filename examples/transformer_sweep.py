"""Sweep a transformer encoder block across MAERI, SIGMA and the TPU.

The paper's experiment matrix stops at AlexNet-era CNNs; the workload
zoo's ``transformer`` entry closes the gap by lowering one encoder block
(QKV projections, per-head attention score/value GEMMs, FFN pair) to
dense scenarios every controller can run.  This example sweeps the block
across three architectures and two array sizes in one session — shared
layers simulate once, and the report filters by axis label.

Run:  python examples/transformer_sweep.py
"""

from repro.session import Session, SessionConfig
from repro.sweep import SweepPlan

config = SessionConfig.resolve(env=False)
plan = SweepPlan.matrix(
    config,
    models=["transformer"],
    axes={
        "architecture.arch": ["maeri", "sigma", "tpu"],
        "architecture.ms_size": [64, 128],
    },
)

with Session(config) as session:
    report = session.sweep(plan)

print(report.summary(metric="total_cycles"))
print()

# Per-architecture totals at ms_size=128 (the axis labels carry the
# coerced values, so filtering works on exactly what each cell ran).
for arch in ("maeri", "sigma", "tpu"):
    (result,) = report.filter(arch=arch, ms_size=128)
    total = sum(stats.cycles for stats in result.report.layer_stats)
    print(f"{arch:<8} ms_size=128: {total:>12,} cycles "
          f"({len(result.report.layer_stats)} layers)")
