"""Trace a sweep: spans for every tier, metrics on the report.

The observability layer (``repro.obs``) answers "where did the sweep's
time go?" without a profiler run:

1. ``trace=True`` on the session records spans from every tier —
   ``session.sweep`` → ``sweep.execute`` → ``engine.plan_many`` /
   ``cache.lookup`` → one lane per scheduler slot with each pulled
   chunk (steals and re-splits as distinct span names) — and writes a
   Chrome trace-event file at ``close()``.  Load it in
   ``chrome://tracing`` / Perfetto, or render the self-time table with
   ``repro trace summary``;
2. ``metrics=True`` attaches a ``metrics`` section to the reports:
   wall time, simulations/sec, per-tier cache hit rates, the
   scheduler's chunk-latency histogram — it survives the JSON
   round-trip, so ``repro report diff`` shows its deltas between two
   archived runs;
3. tracing off is the default and costs one no-op check per call site
   (<2%, gated by ``benchmarks/bench_obs_overhead.py``), so the
   instrumentation stays in production code paths.

Run:  python examples/trace_sweep.py
"""

import json
import tempfile
from pathlib import Path

from repro.obs import read_trace, spans_from_document, summarize_spans
from repro.session import Session
from repro.sweep import SweepPlan

workdir = Path(tempfile.mkdtemp(prefix="trace_sweep_"))
trace_path = workdir / "sweep_trace.json"

# -- 1. a traced, metered sweep over the process executor -------------
with Session(
    executor="process",
    max_workers=2,
    trace=True,
    trace_path=str(trace_path),
    metrics=True,
) as session:
    plan = SweepPlan.matrix(session.config, models=["mlp", "lenet"])
    report = session.sweep(plan)

print(report.summary())
print()

# -- 2. the metrics section rides on the report (and its JSON form) ---
metrics = report.metrics
print(f"wall time:        {metrics['wall_s']:.3f} s")
print(f"simulations/sec:  {metrics['simulations_per_s']:,.0f}")
print(f"cache hit rate:   {metrics['cache']['hit_rate']:.1%} "
      f"(tiers: {metrics['cache']['tiers'] or 'in-memory only'})")
print(f"scheduler:        {metrics['scheduler']}")
archived = json.loads(report.to_json())
assert archived["metrics"]["simulations"] == metrics["simulations"]
print()

# -- 3. the trace file: Chrome-loadable, summarizable -----------------
doc = read_trace(str(trace_path))
spans = spans_from_document(doc)
print(f"trace: {len(doc['traceEvents'])} Chrome events, "
      f"{len(spans)} raw spans -> {trace_path}")
print(f"tiers covered: {sorted({span['cat'] for span in spans})}")
print()
print(summarize_spans(spans, doc["reproTrace"]["metrics"], top=8))
print()
print(f"open in chrome://tracing, or: repro trace summary {trace_path}")
