"""A whole scenario matrix from one TOML: profiles, axes, diffable reports.

The paper's experiments are cross-products — models × accelerator
configurations — and `repro.sweep` makes that product one API call
instead of a shell loop:

1. one TOML holds the base config plus named ``[profile.edge]`` /
   ``[profile.cloud]`` overlays;
2. ``SweepPlan.matrix`` expands 3 models × 2 profiles into scenarios;
3. ``Session.sweep`` executes the whole matrix in one session — layers
   shared between scenarios simulate once (watch ``num_simulations``
   against ``num_evaluations`` in the counters) and one executor pool
   serves every scenario;
4. the ``SweepReport`` is archived as JSON and diffed against a saved
   baseline with ``repro.sweep.diff_reports`` — the same machinery as
   ``repro report diff --fail-on-regression`` in CI.

Run:  python examples/sweep_matrix.py
"""

import tempfile
from pathlib import Path

from repro.session import Session, SessionConfig, load_profiles
from repro.sweep import SweepPlan, SweepReport, diff_reports, load_report

MATRIX_TOML = """\
[architecture]
arch = "maeri"
ms_size = 128

[tuning]
mapping = "mrna"

# The edge deployment: a quarter of the multipliers, inline execution.
[profile.edge.architecture]
ms_size = 32

[profile.edge.engine]
executor = "serial"

# The cloud deployment: full fabric, a parallel worker pool.
[profile.cloud.engine]
executor = "process"
max_workers = 2
"""

workdir = Path(tempfile.mkdtemp(prefix="sweep_matrix_"))
config_path = workdir / "matrix.toml"
config_path.write_text(MATRIX_TOML)
print(f"matrix config: {config_path}")

# 1-3. Expand and execute the matrix in one session. --------------------
base = SessionConfig.from_file(config_path)
plan = SweepPlan.matrix(
    base,
    models=["mlp", "lenet", "vgg_small"],
    profiles=load_profiles(config_path),
)
print(f"plan: {len(plan)} scenarios "
      f"({', '.join(s.name for s in plan)})")

with Session(base) as session:
    report = session.sweep(plan)
    # Re-sweeping the same matrix is free: every evaluation is a cache
    # hit (the same cross-run saving a shared .sqlite cache_path gives
    # you between processes).
    warm = session.sweep(plan)

print()
print(report.summary())
print(f"warm re-sweep: {warm.counters['num_simulations']} simulations, "
      f"{warm.counters['cache_hits']} cache hits")
assert warm.counters["num_simulations"] == 0

# The edge profile changes the hardware (ms_size = 32), so its key
# space is disjoint from cloud's — but scenarios that *share* hardware
# dedup against each other: profiles differing only in execution knobs
# simulate their common layers once (see tests/test_sweep.py).

# The typed report answers the sweep's questions directly.
best = report.best("total_cycles")
print(f"\nfastest cell: {best.name} ({best.report.total_cycles:,} cycles)")
edge_only = report.filter(profile="edge")
print(f"edge rows: {', '.join(edge_only.names)}")

# 4. Archive, reload, and diff against the saved baseline. --------------
baseline_path = workdir / "baseline.json"
baseline_path.write_text(report.to_json() + "\n")
reloaded = load_report(baseline_path)
assert isinstance(reloaded, SweepReport)
assert reloaded.to_json() == report.to_json()
print(f"\nbaseline archived: {baseline_path}")

diff = diff_reports(reloaded, report)
print(f"diff vs baseline: "
      f"{'zero delta' if diff.is_zero else diff.summary()}")
assert diff.is_zero
print("sweep report JSON round-trip and self-diff verified")
