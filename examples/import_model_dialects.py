"""One model, four frontends: the "model support" feature of Table I.

Bifrost inherits TVM's ability to ingest models from many frameworks.
This example defines the same two-layer CNN in all four frontend dialects
(native layer list, torch-like modules, ONNX-like graph, Keras-like
config), imports each to the IR, and runs each end to end on a simulated
SIGMA accelerator — demonstrating that the offload path is frontend-
agnostic.

Run:  python examples/import_model_dialects.py
"""

import numpy as np

import repro.frontends.torchlike as nn
from repro.frontends import (
    from_keraslike,
    from_native,
    from_onnxlike,
    from_torchlike,
)
from repro.session import Session

rng = np.random.default_rng(42)
data = rng.normal(size=(1, 3, 16, 16))

# The same architecture in every dialect (weights differ per frontend —
# each dialect generates its own deterministic parameters).
native_spec = {
    "name": "cnn-native",
    "input_shape": [1, 3, 16, 16],
    "layers": [
        {"op": "conv2d", "channels": 8, "kernel_size": 3, "padding": 1},
        {"op": "relu"},
        {"op": "max_pool2d"},
        {"op": "flatten"},
        {"op": "dense", "units": 10},
    ],
}

torch_model = nn.Sequential(
    nn.Conv2d(3, 8, 3, padding=1),
    nn.ReLU(),
    nn.MaxPool2d(2),
    nn.Flatten(),
    nn.Linear(8 * 8 * 8, 10),
)

onnx_model = {
    "name": "cnn-onnx",
    "graph": {
        "input": [{"name": "x", "shape": [1, 3, 16, 16]}],
        "initializer": [
            {
                "name": "w1",
                "shape": [8, 3, 3, 3],
                "data": rng.normal(0, 0.05, 216).tolist(),
            },
            {
                "name": "w2",
                "shape": [10, 512],
                "data": rng.normal(0, 0.05, 5120).tolist(),
            },
        ],
        "node": [
            {"op_type": "Conv", "input": ["x", "w1"], "output": ["c"],
             "attributes": {"pads": [1, 1, 1, 1]}},
            {"op_type": "Relu", "input": ["c"], "output": ["r"]},
            {"op_type": "MaxPool", "input": ["r"], "output": ["p"],
             "attributes": {"kernel_shape": [2, 2], "strides": [2, 2]}},
            {"op_type": "Flatten", "input": ["p"], "output": ["f"]},
            {"op_type": "Gemm", "input": ["f", "w2"], "output": ["y"]},
        ],
        "output": [{"name": "y"}],
    },
}

keras_model = {
    "class_name": "Sequential",
    "config": {
        "name": "cnn-keras",
        "layers": [
            {"class_name": "Conv2D",
             "config": {"filters": 8, "kernel_size": 3, "padding": "same",
                        "activation": "relu",
                        "batch_input_shape": [None, 16, 16, 3]}},
            {"class_name": "MaxPooling2D", "config": {}},
            {"class_name": "Flatten", "config": {}},
            {"class_name": "Dense", "config": {"units": 10}},
        ],
    },
}

graphs = {
    "native": from_native(native_spec),
    "torch-like": from_torchlike(torch_model, (1, 3, 16, 16)),
    "onnx-like": from_onnxlike(onnx_model),
    "keras-like": from_keraslike(keras_model),
}

print("running each import on SIGMA at 50% sparsity\n")
for dialect, graph in graphs.items():
    with Session(arch="sigma", sparsity=50) as session:
        first_input = graph.nodes[graph.input_ids[0]].name
        result = session.run_graph(graph, {first_input: data})
    offloaded = ", ".join(s.layer_name for s in result.layer_stats)
    print(
        f"{dialect:<11} output {result.output.shape} | "
        f"{result.total_cycles:>9,} cycles | offloaded: {offloaded}"
    )

print("\nall four dialects drive the same IR, executor, and offload path")
