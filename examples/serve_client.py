"""Talking to a resident sweep service: submit, watch, diff, resume.

``repro serve`` turns the sweep machinery into a daemon: one long-lived
:class:`~repro.session.Session` (one warm cache) serving many clients.
This example embeds the service in-process — the wire protocol and the
job lifecycle are identical to a real ``repro serve`` daemon on another
machine; only the transport endpoint differs:

1. start a :class:`~repro.serve.SweepService` on an ephemeral port;
2. submit two *overlapping* matrices from two independent
   :class:`~repro.serve.ServeClient` connections — the service runs
   jobs sequentially against its one session, so the second job's
   overlap is served from the shared cache (``num_simulations`` tells
   the story);
3. watch a job's scenario-level progress stream;
4. diff the two archived reports — overlapping cells are bit-identical
   because the cache is an execution detail, never an approximation;
5. resume a wider matrix from the first job's archive: config-hash
   matched scenarios are adopted, only the missing ones run.

Run:  python examples/serve_client.py
"""

import tempfile
import threading
from pathlib import Path

from repro.serve import ServeClient, SweepService
from repro.session import SessionConfig
from repro.sweep import SweepPlan, diff_reports

archive_dir = Path(tempfile.mkdtemp(prefix="serve_client_")) / "archive"

# 1. The daemon: what `repro serve --listen 127.0.0.1:9462` runs. -------
service = SweepService(
    ("127.0.0.1", 0),
    config=SessionConfig(),
    archive_dir=str(archive_dir),
)
threading.Thread(target=service.serve_forever, daemon=True).start()
print(f"sweep service on {service.address} (archive: {archive_dir})")

base = SessionConfig()
narrow = SweepPlan.matrix(base, models=["mlp"], axes={"ms_size": [64, 128]})
wide = SweepPlan.matrix(
    base, models=["mlp", "lenet"], axes={"ms_size": [64, 128]}
)

try:
    # 2. Two clients, overlapping plans, one shared cache. --------------
    with ServeClient(service.address) as one, ServeClient(
        service.address
    ) as two:
        first = one.submit(narrow, label="narrow")
        second = two.submit(wide, label="wide")
        print(f"submitted {first['id']} (narrow) and {second['id']} (wide)")

        # 3. Stream the wide job's progress (scenario-level events). ----
        def show(event):
            kind = event.get("event", "?")
            name = event.get("name", "")
            print(f"  {kind}: {name} "
                  f"[{event.get('completed', 0)}/{event.get('total', 0)}]")

        final = two.watch(second["id"], callback=show)
        print(f"wide job landed: {final['state']}")

        one.wait(first["id"], timeout=300)
        narrow_report = one.result(first["id"])
        wide_report = two.result(second["id"])

    sims = (narrow_report.counters["num_simulations"],
            wide_report.counters["num_simulations"])
    print(f"num_simulations: narrow={sims[0]}, wide={sims[1]}")

    # 4. The overlap (the mlp column) is bit-identical across jobs. -----
    overlap = wide_report.filter(model="mlp")
    diff = diff_reports(narrow_report, overlap)
    assert diff.is_zero, diff.summary()
    print("overlapping cells bit-identical across jobs (diff is zero)")

    # 5. Resume: the wide archive covers half of a wider matrix. --------
    wider = SweepPlan.matrix(
        base, models=["mlp", "lenet"], axes={"ms_size": [64, 128, 256]}
    )
    with ServeClient(service.address) as client:
        job = client.submit(wider, resume=wide_report, label="resumed")
        client.wait(job["id"], timeout=300)
        resumed_report = client.result(job["id"])
    print(f"resumed job: {resumed_report.counters['resumed_scenarios']} of "
          f"{len(resumed_report)} scenarios adopted from the archive")
    assert resumed_report.counters["resumed_scenarios"] == len(wide_report)

    # Every archive on disk feeds `repro report diff` directly.
    archives = sorted(p.name for p in archive_dir.glob("*.json"))
    print(f"archives: {', '.join(archives)}")
finally:
    service.close()
print("service closed (cache tiers flushed, session released)")
