"""Quickstart: run a PyTorch-style model on a simulated MAERI accelerator.

This is Listing 1 of the paper, end to end:

1. define a model (torch-like module tree — any frontend dialect works);
2. configure the simulated architecture through the ``architecture``
   singleton and ``create_config_file()``;
3. call ``run_torch_stonne``: conv2d/dense layers execute on the
   simulated accelerator, everything else on the CPU;
4. read back the output tensor and the per-layer cycle statistics.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.frontends.torchlike as nn
from repro.bifrost import architecture, make_session, run_torch_stonne
from repro.bifrost.reporting import stats_table

# 1. An arbitrary model in the torch-like dialect. ----------------------
model = nn.Sequential(
    nn.Conv2d(3, 16, kernel_size=3, padding=1),
    nn.ReLU(),
    nn.MaxPool2d(2),
    nn.Conv2d(16, 32, kernel_size=3, padding=1),
    nn.ReLU(),
    nn.MaxPool2d(2),
    nn.Flatten(),
    nn.Linear(32 * 8 * 8, 128),
    nn.ReLU(),
    nn.Linear(128, 10),
    nn.Softmax(),
)
input_batch = np.random.default_rng(0).normal(size=(1, 3, 32, 32))

# 2. Configure the simulated accelerator (Listing 1). -------------------
architecture.reset()
architecture.maeri()
architecture.ms_size = 128          # number of multipliers
architecture.dn_bw = 64             # distribution network bandwidth
architecture.rn_bw = 16             # reduction network bandwidth
config = architecture.create_config_file()

# 3. Run the model; mRNA generates an optimized mapping per layer. ------
session = make_session(config, mapping_strategy="mrna")
result = run_torch_stonne(model, input_batch, session)

# 4. Inspect results. ----------------------------------------------------
print("model output shape:", result.output.shape)
print("predicted class:", int(np.argmax(result.output)))
print()
print("per-layer simulation statistics:")
print(stats_table(result.layer_stats))
print()
print(f"total simulated cycles: {result.total_cycles:,}")

# Sanity: the accelerated execution is numerically exact.
from repro.frontends.torchlike import from_torchlike
from repro.runtime import compile_graph

cpu_output = compile_graph(
    from_torchlike(model, (1, 3, 32, 32)), apply_passes=False
)(input_batch)
assert np.allclose(result.output, cpu_output), "offload changed the result!"
print("verified: accelerator output matches CPU execution exactly")
