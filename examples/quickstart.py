"""Quickstart: run a PyTorch-style model on a simulated MAERI accelerator.

This is Listing 1 of the paper, end to end:

1. define a model (torch-like module tree — any frontend dialect works);
2. open a :class:`repro.session.Session` configured for the simulated
   architecture (one typed config covers architecture, engine, cache,
   fleet and tuning knobs — the same settings a ``repro.toml`` file or
   ``REPRO_*`` environment variables can provide);
3. call ``session.run``: conv2d/dense layers execute on the simulated
   accelerator, everything else on the CPU;
4. read back the output tensor and the per-layer cycle statistics from
   the structured :class:`~repro.session.RunReport`.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.frontends.torchlike as nn
from repro.bifrost.reporting import stats_table
from repro.session import Session

# 1. An arbitrary model in the torch-like dialect. ----------------------
model = nn.Sequential(
    nn.Conv2d(3, 16, kernel_size=3, padding=1),
    nn.ReLU(),
    nn.MaxPool2d(2),
    nn.Conv2d(16, 32, kernel_size=3, padding=1),
    nn.ReLU(),
    nn.MaxPool2d(2),
    nn.Flatten(),
    nn.Linear(32 * 8 * 8, 128),
    nn.ReLU(),
    nn.Linear(128, 10),
    nn.Softmax(),
)
input_batch = np.random.default_rng(0).normal(size=(1, 3, 32, 32))

# 2-3. Configure + run in one session (Listing 1, Session form). --------
# mRNA generates an optimized mapping per layer; the `with` block owns
# every resource (engine, caches, pools) and tears them down on exit.
with Session(
    arch="maeri",
    ms_size=128,        # number of multipliers
    dn_bw=64,           # distribution network bandwidth
    rn_bw=16,           # reduction network bandwidth
    mapping="mrna",
) as session:
    result = session.run(model, input_batch)

# 4. Inspect results. ----------------------------------------------------
print("model output shape:", result.output.shape)
print("predicted class:", int(np.argmax(result.output)))
print()
print("per-layer simulation statistics:")
print(stats_table(result.layer_stats))
print()
print(f"total simulated cycles: {result.total_cycles:,}")

# Sanity: the accelerated execution is numerically exact.
from repro.frontends.torchlike import from_torchlike
from repro.runtime import compile_graph

cpu_output = compile_graph(
    from_torchlike(model, (1, 3, 32, 32)), apply_passes=False
)(input_batch)
assert np.allclose(result.output, cpu_output), "offload changed the result!"
print("verified: accelerator output matches CPU execution exactly")
