"""AlexNet on SIGMA across sparsity levels (the Figure 9 experiment).

SIGMA's memory controller orchestrates the dataflow automatically from
the weight-sparsity bitmap, so the only knob is the pruning level.  This
example sweeps sparsity from 0% to 90% and reports the per-layer and mean
cycle savings — the trade-off a model-compression researcher would
explore before committing to a pruning ratio.

Run:  python examples/alexnet_sigma_sparsity.py
"""

from repro.models import alexnet_conv_layers, alexnet_fc_layers
from repro.stonne.config import sigma_config
from repro.stonne.sigma import SigmaController

SPARSITIES = [0, 25, 50, 75, 90]

layers = alexnet_conv_layers() + alexnet_fc_layers()
results = {}
for sparsity in SPARSITIES:
    controller = SigmaController(sigma_config(sparsity_ratio=sparsity))
    cycles = {}
    for layer in layers:
        run = (
            controller.run_conv
            if layer.name.startswith("conv")
            else controller.run_fc
        )
        cycles[layer.name] = run(layer).cycles
    results[sparsity] = cycles

header = f"{'layer':<8}" + "".join(f"{s}%{'':>6}".rjust(14) for s in SPARSITIES)
print(header)
for layer in layers:
    row = f"{layer.name:<8}"
    for sparsity in SPARSITIES:
        row += f"{results[sparsity][layer.name]:>14,}"
    print(row)

print()
base = results[0]
for sparsity in SPARSITIES[1:]:
    conv_saving = sum(
        1 - results[sparsity][l.name] / base[l.name]
        for l in alexnet_conv_layers()
    ) / 5
    fc_saving = sum(
        1 - results[sparsity][l.name] / base[l.name]
        for l in alexnet_fc_layers()
    ) / 3
    print(
        f"sparsity {sparsity:>2}%: conv layers save {conv_saving:5.1%}, "
        f"fc layers save {fc_saving:5.1%}"
    )
print()
print("paper reference point (50% sparsity): conv -44%, fc -54%")
