"""Hardware design-space exploration with the AutoTVM module (§VI).

Bifrost exposes *hardware* parameters (array size, network bandwidths) as
tuning knobs, not just mappings.  This example searches the hardware
space for the smallest MAERI configuration that keeps LeNet-5 inference
under a cycle budget — the accelerator-provisioning question an edge
deployment asks.

Run:  python examples/hardware_design_space.py
"""

from repro.models import lenet_conv_layers, lenet_fc_layers
from repro.session import Session
from repro.tuner import CallableTask, GridSearchTuner, hardware_space

CYCLE_BUDGET = 60_000
LAYERS = [*lenet_conv_layers(), *lenet_fc_layers()]


def total_cycles(hw) -> int:
    """Simulated LeNet cycles for one hardware configuration, with mRNA
    mappings regenerated for that hardware."""
    with Session(
        arch="maeri", ms_size=hw["ms_size"], dn_bw=hw["dn_bw"],
        rn_bw=hw["rn_bw"], mapping="mrna",
    ) as session:
        return sum(s.cycles for s in session.run_layers(LAYERS))


def cost(hw) -> float:
    """Minimize PE count, then bandwidth, subject to the cycle budget."""
    cycles = total_cycles(hw)
    if cycles > CYCLE_BUDGET:
        return float("inf")
    return hw["ms_size"] * 1000 + hw["dn_bw"] + hw["rn_bw"]


space = hardware_space(
    ms_sizes=(8, 16, 32, 64, 128),
    dn_bws=(8, 16, 32, 64),
    rn_bws=(8, 16, 32, 64),
)
task = CallableTask(space, cost)
result = GridSearchTuner(task).tune(n_trials=space.raw_size)

print(f"searched {result.num_trials} hardware configurations")
print(f"cycle budget: {CYCLE_BUDGET:,} cycles for LeNet-5")
if result.best_config is None:
    print("no configuration meets the budget")
else:
    best = result.best_config
    print(
        f"smallest viable MAERI: ms_size={best['ms_size']}, "
        f"dn_bw={best['dn_bw']}, rn_bw={best['rn_bw']} "
        f"-> {total_cycles(best):,} cycles"
    )

print()
print("cycle count per array size (best bandwidths, mRNA mappings):")
for ms in (8, 16, 32, 64, 128):
    cycles = min(
        total_cycles({"ms_size": ms, "dn_bw": dn, "rn_bw": rn})
        for dn in (8, 16, 32, 64)
        for rn in (8, 16, 32, 64)
    )
    marker = " <= budget" if cycles <= CYCLE_BUDGET else ""
    print(f"  ms_size {ms:>4}: {cycles:>10,} cycles{marker}")
