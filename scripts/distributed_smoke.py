#!/usr/bin/env python
"""Distributed smoke test: two real worker daemons vs serial execution.

Spawns two ``repro worker`` processes on ephemeral localhost ports, runs
a small GA tune through ``--executor remote`` against them, runs the
identical tune with ``--executor serial``, and asserts the two report
the *same best mapping and best cost* — the fleet tier is an execution
detail, never an approximation.  Exits non-zero on any divergence, so
CI can gate on it.

Usage: PYTHONPATH=src python scripts/distributed_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys

TUNE_ARGS = [
    "tune", "lenet", "conv1",
    "--objective", "cycles", "--tuner", "ga",
    "--trials", "40", "--seed", "0",
]


def _env() -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = os.pathsep.join(filter(None, [src, env.get("PYTHONPATH")]))
    return env


def _spawn_worker(env: dict) -> tuple:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker", "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    banner = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+:\d+)", banner)
    if not match:
        proc.kill()
        raise RuntimeError(f"worker failed to start: {banner!r}")
    return proc, match.group(1)


def _tune(env: dict, extra: list) -> list:
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli"] + TUNE_ARGS + extra,
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"tune {extra} failed ({result.returncode}):\n"
            f"{result.stdout}{result.stderr}"
        )
    lines = result.stdout.splitlines()
    return (
        [line for line in lines if line.startswith("best ")],
        [line for line in lines if line.startswith("fleet:")],
    )


def main() -> int:
    env = _env()
    workers = []
    try:
        workers = [_spawn_worker(env) for _ in range(2)]
        addresses = ",".join(address for _, address in workers)
        print(f"workers: {addresses}")
        serial, _ = _tune(env, ["--executor", "serial"])
        remote, fleet = _tune(
            env, ["--executor", "remote", "--workers", addresses]
        )
    finally:
        for proc, _ in workers:
            proc.send_signal(signal.SIGINT)
        for proc, _ in workers:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
    print(f"serial: {serial}")
    print(f"remote: {remote}  {fleet}")
    if not serial or serial != remote:
        print("FAIL: remote tuning diverged from serial", file=sys.stderr)
        return 1
    # Identical results alone would also be produced by a silent inline
    # fallback; the fleet counters prove the workers actually served.
    if fleet != ["fleet: 0 fallback batches, 0 retried shards"]:
        print(f"FAIL: fleet did not serve the run cleanly: {fleet}",
              file=sys.stderr)
        return 1
    print("OK: remote 2-worker tune is bit-identical to serial "
          "(workers served, no fallback)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
