#!/usr/bin/env python
"""Batch-kernel smoke test: bit-identity and speedup at smoke scale.

Runs the vectorized batch kernels against their scalar loops on a
small-but-real workload and asserts the PR's contract:

* ``run_conv_batch`` on MAERI returns *bit-identical* payloads to the
  scalar ``run_conv`` loop — including captured exceptions for invalid
  mappings injected mid-batch (per-item error isolation);
* the closed-form psum proxy and the mRNA mapper's batch scorer agree
  exactly with their scalar counterparts;
* the SIGMA / TPU / MAGMA GEMM batch kernels agree exactly with their
  ``run_gemm`` loops;
* the batch sweep beats the scalar loop by >= 3x wall-clock even at
  this scale (best-of-3 timing).

Exits non-zero on any divergence, so CI can gate on it.

Usage: PYTHONPATH=src python scripts/kernels_smoke.py
"""

from __future__ import annotations

import itertools
import sys
import time

SWEEP = 1024
MS_SIZE = 128
MIN_SPEEDUP = 3.0


def _canon(results):
    """Payloads as comparable values: stats dict, int estimate, or the
    exception's type and message."""
    out = []
    for r in results:
        if isinstance(r, Exception):
            out.append((type(r).__name__, str(r)))
        elif hasattr(r, "to_dict"):
            out.append(r.to_dict())
        else:
            out.append(r)
    return out


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main() -> int:
    from repro.mrna.mapper import MrnaMapper
    from repro.stonne.config import (
        magma_config, maeri_config, sigma_config, tpu_config,
    )
    from repro.stonne.controller import AcceleratorController, make_controller
    from repro.stonne.layer import ConvLayer, GemmLayer
    from repro.stonne.mapping import ConvMapping, enumerate_conv_mappings

    layer = ConvLayer("smoke_conv", C=64, H=16, W=16, K=64, R=3, S=3)
    controller = make_controller(maeri_config(ms_size=MS_SIZE))
    mappings = list(
        itertools.islice(enumerate_conv_mappings(layer, MS_SIZE), SWEEP)
    )
    if len(mappings) < SWEEP:
        print(f"FAIL: sweep space too small ({len(mappings)})",
              file=sys.stderr)
        return 1
    # Invalid rows mid-batch: capacity blowout and an out-of-bounds tile.
    mappings[7] = ConvMapping(T_K=MS_SIZE * 2)
    mappings[SWEEP // 2] = ConvMapping(T_R=layer.R + 1)

    scalar = AcceleratorController.run_conv_batch(controller, layer, mappings)
    batch = controller.run_conv_batch(layer, mappings)
    if _canon(scalar) != _canon(batch):
        print("FAIL: MAERI conv batch diverged from the scalar loop",
              file=sys.stderr)
        return 1
    if not isinstance(batch[7], Exception) or not isinstance(
        batch[SWEEP // 2], Exception
    ):
        print("FAIL: invalid mappings were not isolated as exceptions",
              file=sys.stderr)
        return 1

    psum_scalar = AcceleratorController.estimate_conv_psums_batch(
        controller, layer, mappings
    )
    psum_batch = controller.estimate_conv_psums_batch(layer, mappings)
    if _canon(psum_scalar) != _canon(psum_batch):
        print("FAIL: psum-proxy batch diverged from the scalar loop",
              file=sys.stderr)
        return 1

    mapper = MrnaMapper(maeri_config(ms_size=MS_SIZE))
    mrna_layer = ConvLayer("smoke_mrna", C=32, H=28, W=28, K=32, R=3, S=3)
    mrna_scalar = mapper._score_conv_scalar(mrna_layer)
    mrna_batch = mapper._score_conv_batch(mrna_layer)
    if (
        mrna_scalar.mapping != mrna_batch.mapping
        or mrna_scalar.estimated_cycles != mrna_batch.estimated_cycles
    ):
        print("FAIL: mRNA batch scorer diverged from the scalar scan",
              file=sys.stderr)
        return 1

    gemms = [
        GemmLayer(f"g{m}.{k}.{n}", M=m, K=k, N=n)
        for m in (1, 7, 64) for k in (1, 33, 256) for n in (5, 128)
    ]
    for config in (sigma_config(), tpu_config(), magma_config()):
        gemm_controller = make_controller(config)
        gemm_scalar = AcceleratorController.run_gemm_batch(
            gemm_controller, gemms
        )
        gemm_batch = gemm_controller.run_gemm_batch(gemms)
        if _canon(gemm_scalar) != _canon(gemm_batch):
            print(
                f"FAIL: {config.controller_type.value} GEMM batch diverged "
                f"from run_gemm",
                file=sys.stderr,
            )
            return 1

    scalar_s = _best_of(
        lambda: AcceleratorController.run_conv_batch(
            controller, layer, mappings
        )
    )
    batch_s = _best_of(lambda: controller.run_conv_batch(layer, mappings))
    speedup = scalar_s / batch_s
    if speedup < MIN_SPEEDUP:
        print(
            f"FAIL: batch kernels only {speedup:.2f}x over the scalar loop "
            f"({SWEEP} mappings; need >= {MIN_SPEEDUP:.0f}x)",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: batch kernels bit-identical across MAERI sweep "
        f"({SWEEP} mappings, 2 invalid isolated), psum proxy, mRNA scorer "
        f"and 3 GEMM controllers; {speedup:.1f}x over the scalar loop"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
