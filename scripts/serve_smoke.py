#!/usr/bin/env python
"""Sweep service smoke test: one daemon, many clients, one cache.

Starts a ``repro serve`` daemon on an ephemeral port, submits two
overlapping 2x2 sweep matrices from two separate ``repro submit``
client processes, and asserts the shared-cache dedup contract: the
daemon runs jobs sequentially against one session, so whichever job
lands second reports ``num_simulations == 0`` — every one of its
scenarios is a cache hit from the first — while both archive
bit-identical per-scenario results.

Then exercises the cancel/resume loop: a queued job is cancelled before
it runs, its plan is resubmitted with ``--resume`` pointing at the
first job's archive, and the finished report must show exactly the
config-hash-overlapping scenarios adopted (``resumed_scenarios``)
rather than re-run.  Finally SIGTERMs the daemon and requires a clean
exit 0 — the graceful-shutdown contract CI gates on.

Usage: PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile

MATRIX = ["--models", "mlp,lenet", "--axis", "ms_size=64,128"]
RESUME_MATRIX = ["--models", "mlp,lenet", "--axis", "ms_size=128,256"]


def _env() -> dict:
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [src, env.get("PYTHONPATH")])
    )
    return env


def _cli(env: dict, *argv: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env, timeout=timeout,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"repro {' '.join(argv)} failed ({result.returncode}):\n"
            f"{result.stdout}{result.stderr}"
        )
    return result.stdout


def _submit_process(env: dict, address: str, label: str, extra: list):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "submit",
         "--connect", address, "--label", label, "--watch", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )


def _job_id(output: str) -> str:
    match = re.search(r"submitted (job-\d+)", output)
    if not match:
        raise RuntimeError(f"no job id in client output:\n{output}")
    return match.group(1)


def _result(env: dict, address: str, job_id: str, path: str) -> dict:
    _cli(env, "result", job_id, "--connect", address,
         "--report-json", path)
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main() -> int:
    env = _env()
    tmp = tempfile.mkdtemp(prefix="serve-smoke-")
    archive_dir = os.path.join(tmp, "archive")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--listen", "127.0.0.1:0", "--archive-dir", archive_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        banner = daemon.stdout.readline()
        match = re.search(r"listening on ([\d.]+:\d+)", banner)
        if not match:
            raise RuntimeError(f"daemon failed to start: {banner!r}")
        address = match.group(1)
        print(f"daemon: {address} (archive: {archive_dir})")

        # --- leg 1: two client processes, overlapping matrices -------
        clients = [
            _submit_process(env, address, label, MATRIX)
            for label in ("one", "two")
        ]
        outputs = []
        for proc in clients:
            out, _ = proc.communicate(timeout=300)
            outputs.append(out)
            if proc.returncode != 0:
                raise RuntimeError(f"client failed:\n{out}")
        job_ids = [_job_id(out) for out in outputs]
        print(f"jobs: {', '.join(job_ids)}")

        reports = [
            _result(env, address, job_id,
                    os.path.join(tmp, f"{job_id}.json"))
            for job_id in job_ids
        ]
        sims = sorted(
            report["counters"]["num_simulations"] for report in reports
        )
        print(f"num_simulations: {sims}")
        if not (sims[0] == 0 and sims[1] > 0):
            print("FAIL: expected the second job to be served entirely "
                  f"from the shared cache, got {sims}", file=sys.stderr)
            return 1
        cells = [
            [s["report"]["layer_stats"] for s in report["scenarios"]]
            for report in reports
        ]
        if cells[0] != cells[1]:
            print("FAIL: cached job diverged from the simulated one",
                  file=sys.stderr)
            return 1
        print("OK: overlap deduped through the shared cache, "
              "bit-identical results")

        # --- leg 2: cancel a queued job, resume from the archive -----
        from repro.serve import ServeClient
        from repro.sweep import SweepPlan
        from repro.session import SessionConfig

        with ServeClient(address) as client:
            blocker = client.submit(
                SweepPlan.matrix(SessionConfig(), models=["mlp", "lenet"],
                                 axes={"ms_size": [32]}),
                label="blocker",
            )
            victim = client.submit(
                SweepPlan.matrix(SessionConfig(), models=["mlp", "lenet"],
                                 axes={"ms_size": [128, 256]}),
                label="victim",
            )
            client.cancel(victim["id"])
            state = client.wait(victim["id"], timeout=60)["state"]
            if state != "cancelled":
                print(f"FAIL: cancelled queued job is {state}",
                      file=sys.stderr)
                return 1
            client.wait(blocker["id"], timeout=300)
        print(f"cancelled {victim['id']} while queued")

        archive = os.path.join(archive_dir, f"{job_ids[0]}.json")
        resume_out = _cli(
            env, "submit", "--connect", address, "--watch",
            "--label", "resumed", "--resume", archive, *RESUME_MATRIX,
        )
        resumed_id = _job_id(resume_out)
        report = _result(env, address, resumed_id,
                         os.path.join(tmp, "resumed.json"))
        resumed = report["counters"].get("resumed_scenarios", 0)
        names = [s["name"] for s in report["scenarios"]]
        print(f"resumed job {resumed_id}: {resumed} adopted, "
              f"scenarios: {names}")
        if resumed != 2 or len(names) != 4:
            print("FAIL: expected exactly the 2 overlapping scenarios "
                  f"(ms_size=128) adopted out of 4, got {resumed} of "
                  f"{len(names)}", file=sys.stderr)
            return 1
        print("OK: resume adopted the config-hash overlap and re-ran "
              "only the missing scenarios")
    finally:
        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.wait(timeout=30)
        except subprocess.TimeoutExpired:
            daemon.kill()

    tail = daemon.stdout.read()
    if daemon.returncode != 0:
        print(f"FAIL: daemon exit code {daemon.returncode}:\n{tail}",
              file=sys.stderr)
        return 1
    if "sweep service stopped" not in tail:
        print(f"FAIL: no graceful shutdown message:\n{tail}",
              file=sys.stderr)
        return 1
    print("OK: daemon drained and exited 0 on SIGTERM")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
