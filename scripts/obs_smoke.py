#!/usr/bin/env python
"""Observability smoke test: spans for every local tier + cheap off-mode.

Runs a 2-scenario sweep over the process executor (2 workers, so the
pull scheduler engages) with tracing enabled and asserts:

* the trace file is valid Chrome trace-event JSON *and* carries the
  lossless ``reproTrace`` section;
* every local stack tier emitted at least one span — ``session``,
  ``sweep``, ``engine``, ``scheduler`` (on ``slot-*`` lanes) and
  ``cache`` — so an instrumentation point silently falling out of the
  code path fails CI, not a later debugging session;
* ``repro trace summary`` renders the span/self-time table;
* disabled tracing stays cheap at smoke scale: the no-op span cost
  (measured per call, times the number of events an enabled run
  records) is under 5% of the disabled run's wall time.  The full-scale
  <2% contract lives in ``benchmarks/bench_obs_overhead.py``; this is
  the fast CI proxy computed the same analytic way, which cannot flake
  on machine noise the way two racing wall-clock runs would.

Exits non-zero on any failure, so CI can gate on it.

Usage: PYTHONPATH=src python scripts/obs_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time

REQUIRED_TIERS = {"session", "sweep", "engine", "scheduler", "cache"}

SWEEP_ARGS = [
    "sweep", "--models", "mlp,lenet",
    "--executor", "process", "--max-workers", "2",
]


def _env() -> dict:
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [src, env.get("PYTHONPATH")])
    )
    return env


def _run_cli(args: list, env: dict) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli"] + args,
        capture_output=True, text=True, env=env, timeout=300,
    )
    if result.returncode != 0:
        print(result.stdout)
        print(result.stderr, file=sys.stderr)
        raise SystemExit(f"FAIL: repro {' '.join(args)} exited "
                         f"{result.returncode}")
    return result.stdout


def check_trace_coverage(env: dict, workdir: str) -> None:
    trace_path = os.path.join(workdir, "smoke_trace.json")
    out = _run_cli(
        SWEEP_ARGS + ["--trace", "--trace-path", trace_path, "--metrics"],
        env,
    )
    if "trace written to" not in out:
        raise SystemExit("FAIL: sweep did not report the trace path")
    with open(trace_path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc.get("traceEvents"), list) or not doc["traceEvents"]:
        raise SystemExit("FAIL: trace file has no Chrome traceEvents")
    spans = doc.get("reproTrace", {}).get("spans", [])
    categories = {span["cat"] for span in spans}
    missing = REQUIRED_TIERS - categories
    if missing:
        raise SystemExit(
            f"FAIL: no spans from tier(s) {sorted(missing)}; "
            f"got categories {sorted(categories)}"
        )
    slot_lanes = {
        span["lane"] for span in spans
        if span["cat"] == "scheduler" and span["lane"].startswith("slot-")
    }
    if len(slot_lanes) < 2:
        raise SystemExit(
            f"FAIL: expected >=2 scheduler slot lanes, got {slot_lanes}"
        )
    print(f"ok: {len(spans)} spans cover {sorted(categories)} "
          f"across {len(slot_lanes)} slot lanes")

    summary = _run_cli(["trace", "summary", trace_path], env)
    for needle in ("span", "self s", "slot utilization"):
        if needle not in summary:
            raise SystemExit(
                f"FAIL: trace summary is missing {needle!r}:\n{summary}"
            )
    print("ok: trace summary renders spans and slot utilization")


def check_disabled_overhead() -> None:
    from repro.obs import get_tracer
    from repro.session import Session
    from repro.sweep import SweepPlan

    tracer = get_tracer()

    # Cost of one disabled call site: enabled-check + cached null span.
    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        with tracer.span("noop", category="scheduler", lane="slot-0"):
            pass
    per_call_s = (time.perf_counter() - start) / calls

    # How many events a traced smoke run records, and how long the
    # untraced equivalent takes.
    with Session(executor="process", max_workers=2, trace=True) as session:
        session._trace_owner = False  # keep the file out of CI's cwd
        plan = SweepPlan.matrix(session.config, models=["mlp", "lenet"])
        session.sweep(plan)
        events = len(tracer.spans())
    tracer.disable()
    tracer.clear()

    start = time.perf_counter()
    with Session(executor="process", max_workers=2) as session:
        plan = SweepPlan.matrix(session.config, models=["mlp", "lenet"])
        session.sweep(plan)
    disabled_wall_s = time.perf_counter() - start

    overhead = (per_call_s * events) / disabled_wall_s
    print(f"ok: disabled tracing {per_call_s * 1e9:.0f} ns/span x "
          f"{events} events = {overhead:.3%} of {disabled_wall_s:.2f}s "
          f"(limit 5%)")
    if overhead >= 0.05:
        raise SystemExit(
            f"FAIL: disabled-mode overhead {overhead:.3%} >= 5% at "
            f"smoke scale"
        )


def main() -> int:
    env = _env()
    with tempfile.TemporaryDirectory() as workdir:
        check_trace_coverage(env, workdir)
    check_disabled_overhead()
    print("observability smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.path.insert(
        0,
        os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        ),
    )
    raise SystemExit(main())
