"""CI smoke test for the fuzz oracle (keeps `repro sweep --fuzz` honest).

Proves the harness's three properties end to end:

1. determinism: two invocations of `repro sweep --fuzz 8 --seed 7`
   produce identical stdout — same plan, same per-scenario digests,
   same plan digest;
2. cross-check: the fixed-seed batch is bit-identical across the
   serial, thread and process executors (exit 0), covering all four
   controllers plus the curated modern workloads (transformer,
   depthwise/dilated/grouped/NHWC conv);
3. shrink-on-failure: an artificially injected per-executor divergence
   is caught by the library-level cross-check, shrunk to a minimal
   reproducing layer stack, written as a repro TOML, and the reloaded
   repro file replays clean without the injection.

Run:  PYTHONPATH=src python scripts/fuzz_smoke.py
Exit: 0 on success, 1 on any mismatch.
"""

import os
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = str(ROOT / "src")
sys.path.insert(0, SRC)


def run_cli(*argv, expect=0):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env, cwd=str(ROOT),
    )
    if proc.returncode != expect:
        raise SystemExit(
            f"FAIL: repro {' '.join(argv)} exited {proc.returncode} "
            f"(expected {expect})\n{proc.stdout}{proc.stderr}"
        )
    return proc.stdout


def main() -> int:
    # 1 + 2. Fixed-seed batch: deterministic and bit-identical across
    # serial/thread/process (the CLI exits non-zero on any divergence).
    argv = ("sweep", "--fuzz", "8", "--seed", "7", "--max-workers", "2")
    first = run_cli(*argv)
    second = run_cli(*argv)
    assert first == second, (
        f"fuzz not deterministic across invocations:\n--- first\n{first}"
        f"--- second\n{second}"
    )
    assert "bit-identical across serial, thread, process" in first, first
    for model in ("transformer", "depthwise_sep", "dilated_conv",
                  "grouped_conv", "nhwc_conv"):
        assert model in first, f"curated model {model} missing:\n{first}"
    for arch in ("maeri", "sigma", "tpu", "magma"):
        assert f"/{arch}/" in first, f"controller {arch} missing:\n{first}"
    print("fuzz --fuzz 8 --seed 7: deterministic, bit-identical across "
          "serial/thread/process, all four controllers covered")

    # 3. Injected divergence: caught, shrunk, re-emitted, replayable.
    from repro import fuzz
    from repro.session.config import SessionConfig
    from repro.zoo import register_model, zoo_layers

    base = SessionConfig.resolve(env=False, max_workers=2)
    plan = fuzz.generate_plan(8, 11, base)
    victim = plan.scenarios[-1]
    layers = zoo_layers(victim.model)
    faulty_layer = layers[0].name

    def inject(executor, scenario_name, stats_dicts):
        # A deterministic "kernel bug" visible only on the thread
        # backend and only for one layer, so the shrinker can isolate
        # it out of whatever stack the scenario carries.
        if executor != "thread":
            return stats_dicts
        out = [dict(s) for s in stats_dicts]
        touched = False
        for stats in out:
            if stats["layer_name"] == faulty_layer:
                stats["cycles"] += 1
                touched = True
        return out if touched else stats_dicts

    executors = ("serial", "thread")
    result = fuzz.cross_check(plan, base=base, executors=executors,
                              inject=inject)
    assert victim.name in result.divergent, (
        f"injected divergence not caught: {result.divergent}"
    )
    print(f"injected divergence caught in {victim.name}")

    # Pad the victim's stack so the shrinker has something to remove.
    from repro.stonne.layer import FcLayer

    padded = list(layers) + [
        FcLayer("smoke.pad0", in_features=8, out_features=8),
        FcLayer("smoke.pad1", in_features=16, out_features=4),
    ]
    register_model(victim.model, lambda: list(padded), replace=True,
                   description="fuzz smoke padded victim", tags=("fuzz",))
    minimal = fuzz.shrink(victim, executors, inject=inject)
    names = [layer.name for layer in minimal]
    assert names == [faulty_layer], (
        f"shrink kept {names}, expected [{faulty_layer!r}]"
    )
    print(f"shrunk {len(padded)} layers -> 1 (the injected one)")

    with tempfile.TemporaryDirectory() as tmp:
        repro_path = Path(tmp) / "fuzz_repro.toml"
        fuzz.write_repro(str(repro_path), victim.config, minimal,
                         seed=11, note="fuzz smoke injected fault")
        # Without the injection the repro replays clean through the CLI.
        out = run_cli("sweep", "--fuzz-repro", str(repro_path),
                      "--max-workers", "2")
        assert "bit-identical" in out, out
    print("repro TOML round-trips and replays clean via --fuzz-repro")

    print("fuzz smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
