"""CI smoke test for the layered config path (keeps --config load-bearing).

Exercises the whole config surface end to end, in-process and over the
CLI:

1. ``repro config show --json`` round-trips through
   ``SessionConfig.from_dict`` (the acceptance criterion for the JSON
   form);
2. ``repro config show`` emits TOML that ``--config`` accepts — the
   snapshot-and-replay workflow;
3. ``repro run --config`` with a temp TOML produces the same stats as
   the equivalent explicit flags;
4. the file-driven example (``examples/session_quickstart.py``) runs
   end to end under that TOML.

Run:  PYTHONPATH=src python scripts/config_smoke.py
Exit: 0 on success, 1 on any mismatch.
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = str(ROOT / "src")
sys.path.insert(0, SRC)

from repro.session import SessionConfig, load_profiles  # noqa: E402

TOML = """\
[architecture]
arch = "maeri"
ms_size = 64

[engine]
executor = "serial"

[cache]
max_rows = 500

[tuning]
mapping = "mrna"

[profile.edge.architecture]
ms_size = 32

[profile.cloud.engine]
max_workers = 4
"""


def run_cli(*argv, env=None):
    merged = dict(os.environ)
    merged["PYTHONPATH"] = SRC + os.pathsep + merged.get("PYTHONPATH", "")
    if env:
        merged.update(env)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=merged, cwd=str(ROOT),
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"FAIL: repro {' '.join(argv)} exited {proc.returncode}\n"
            f"{proc.stdout}{proc.stderr}"
        )
    return proc.stdout


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        toml_path = Path(tmp) / "repro.toml"
        toml_path.write_text(TOML)

        # 1. config show --json round-trips through from_dict.
        shown = run_cli("config", "show", "--json", "--config", str(toml_path))
        config = SessionConfig.from_dict(json.loads(shown))
        assert config.architecture.ms_size == 64, config
        assert config.cache.max_rows == 500, config
        assert config.tuning.mapping == "mrna", config
        print("config show --json round-trips through SessionConfig.from_dict")

        # ... and the env layer loses to explicit flags but beats the file.
        env_shown = run_cli(
            "config", "show", "--json", "--config", str(toml_path),
            "--ms-size", "128", env={"REPRO_MS_SIZE": "32"},
        )
        assert json.loads(env_shown)["architecture"]["ms_size"] == 128
        env_only = run_cli(
            "config", "show", "--json", "--config", str(toml_path),
            env={"REPRO_MS_SIZE": "32"},
        )
        assert json.loads(env_only)["architecture"]["ms_size"] == 32
        print("precedence verified: CLI > env > file")

        # 2. The TOML form of config show is itself a valid --config file.
        snapshot = Path(tmp) / "snapshot.toml"
        snapshot.write_text(
            run_cli("config", "show", "--config", str(toml_path))
        )
        reshown = run_cli("config", "show", "--json", "--config", str(snapshot))
        assert SessionConfig.from_dict(json.loads(reshown)) == config
        print("config show TOML round-trips as a --config file")

        # ... and it preserves the [profile.X] sections: the snapshot's
        # profiles stay selectable and resolve identically to the
        # original file's.
        shown_text = snapshot.read_text()
        assert "[profile.edge.architecture]" in shown_text, shown_text
        assert load_profiles(snapshot) == load_profiles(toml_path)
        edge = run_cli("config", "show", "--json", "--config", str(snapshot),
                       "--profile", "edge")
        assert json.loads(edge)["architecture"]["ms_size"] == 32
        assert SessionConfig.from_file(snapshot, profile="cloud") == (
            SessionConfig.from_file(toml_path, profile="cloud")
        )
        print("config show renders [profile.X] TOML that round-trips")

        # 3. run --config == run with the equivalent explicit flags.
        from_file = run_cli("run", "lenet", "--config", str(toml_path))
        from_flags = run_cli(
            "run", "lenet", "--ms-size", "64", "--executor", "serial",
            "--mapping", "mrna",
        )
        assert from_file == from_flags, (
            f"run --config diverged from explicit flags:\n"
            f"--- file ---\n{from_file}\n--- flags ---\n{from_flags}"
        )
        print("run --config is bit-identical to explicit flags")

        # 4. The file-driven example runs end to end under the TOML.
        merged = dict(os.environ)
        merged["PYTHONPATH"] = SRC + os.pathsep + merged.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(ROOT / "examples" / "session_quickstart.py"),
             str(toml_path)],
            capture_output=True, text=True, env=merged, cwd=str(ROOT),
        )
        if proc.returncode != 0:
            raise SystemExit(
                f"FAIL: session_quickstart.py exited {proc.returncode}\n"
                f"{proc.stdout}{proc.stderr}"
            )
        assert "run report JSON round-trip verified" in proc.stdout
        print("examples/session_quickstart.py ran end to end under --config")

    print("config smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
