"""CI smoke test for the sweep surface (keeps `repro sweep` load-bearing).

Runs a 2-model x 2-profile matrix through the CLI with the process
executor, then proves the two sweep guarantees end to end:

1. cross-scenario dedup: the archived SweepReport's counters show
   strictly fewer simulations than evaluations (shared layers simulated
   once across the matrix);
2. diffability: `repro report diff` of the report against itself is a
   zero delta and exits 0 under `--fail-on-regression 0`, and a
   doctored regression trips the gate with exit 3.

Run:  PYTHONPATH=src python scripts/sweep_smoke.py
Exit: 0 on success, 1 on any mismatch.
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = str(ROOT / "src")
sys.path.insert(0, SRC)

TOML = """\
[architecture]
arch = "maeri"
ms_size = 128

[profile.edge.engine]
executor = "serial"

[profile.cloud.engine]
max_workers = 2
"""


def run_cli(*argv, expect=0):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env, cwd=str(ROOT),
    )
    if proc.returncode != expect:
        raise SystemExit(
            f"FAIL: repro {' '.join(argv)} exited {proc.returncode} "
            f"(expected {expect})\n{proc.stdout}{proc.stderr}"
        )
    return proc.stdout


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        toml_path = Path(tmp) / "matrix.toml"
        toml_path.write_text(TOML)
        report_path = Path(tmp) / "sweep.json"

        # 1. A 2x2 sweep on the process executor, archived as JSON.
        out = run_cli(
            "sweep", "--config", str(toml_path),
            "--profiles", "edge,cloud", "--models", "mlp,lenet",
            "--executor", "process", "--max-workers", "2",
            "--report-json", str(report_path),
        )
        assert "mlp/edge" in out and "lenet/cloud" in out, out
        report = json.loads(report_path.read_text())
        counters = report["counters"]
        assert counters["num_simulations"] < counters["num_evaluations"], (
            f"no cross-scenario dedup: {counters}"
        )
        print(
            f"2x2 sweep ran on --executor process: "
            f"{counters['num_simulations']} simulations for "
            f"{counters['num_evaluations']} evaluations (dedup worked)"
        )

        # 2. Self-diff is a zero delta and passes the tightest gate.
        out = run_cli(
            "report", "diff", str(report_path), str(report_path),
            "--fail-on-regression", "0",
        )
        assert "no differences" in out, out
        print("report diff vs itself: zero delta, exit 0")

        # 3. A doctored regression trips the gate with exit code 3.
        doctored = json.loads(report_path.read_text())
        doctored["scenarios"][0]["report"]["layer_stats"][0]["cycles"] *= 2
        worse_path = Path(tmp) / "worse.json"
        worse_path.write_text(json.dumps(doctored))
        run_cli(
            "report", "diff", str(report_path), str(worse_path),
            "--fail-on-regression", "5", expect=3,
        )
        print("doctored regression trips --fail-on-regression with exit 3")

    print("sweep smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
