#!/usr/bin/env python
"""Scheduler smoke test: work-stealing across unequal fleet workers.

Spawns two ``repro worker`` daemons with *unequal* advertised capacity
(1 vs 3 pull slots), tunes through ``--executor remote`` against them,
and asserts:

* the best cost is bit-identical to ``--executor serial`` — pull
  scheduling and stealing are execution details, never approximations;
* the fleet served the run with zero fallback batches;
* the pull scheduler actually engaged and slots stole work
  (``steals > 0`` in the scheduler counter line) — the capacity-3
  worker's extra slots drain chunks whose static home was elsewhere.

Exits non-zero on any divergence, so CI can gate on it.

Usage: PYTHONPATH=src python scripts/scheduler_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys

TUNE_ARGS = [
    "tune", "lenet", "conv1",
    "--objective", "cycles", "--tuner", "ga",
    "--trials", "40", "--seed", "0",
]

CAPACITIES = (1, 3)


def _env() -> dict:
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [src, env.get("PYTHONPATH")])
    )
    return env


def _spawn_worker(env: dict, capacity: int) -> tuple:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker",
            "--listen", "127.0.0.1:0",
            "--fleet-capacity", str(capacity),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    banner = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+:\d+)", banner)
    if not match:
        proc.kill()
        raise RuntimeError(f"worker failed to start: {banner!r}")
    if f"capacity: {capacity}" not in banner:
        proc.kill()
        raise RuntimeError(
            f"worker does not advertise capacity {capacity}: {banner!r}"
        )
    return proc, match.group(1)


def _tune(env: dict, extra: list) -> tuple:
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli"] + TUNE_ARGS + extra,
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"tune {extra} failed ({result.returncode}):\n"
            f"{result.stdout}{result.stderr}"
        )
    lines = result.stdout.splitlines()
    return (
        [line for line in lines if line.startswith("best ")],
        [line for line in lines if line.startswith("fleet:")],
        [line for line in lines if line.startswith("scheduler:")],
    )


def main() -> int:
    env = _env()
    workers = []
    try:
        workers = [
            _spawn_worker(env, capacity) for capacity in CAPACITIES
        ]
        addresses = ",".join(address for _, address in workers)
        print(f"workers: {addresses} (capacities {CAPACITIES})")
        serial, _, _ = _tune(env, ["--executor", "serial"])
        remote, fleet, scheduler = _tune(
            env, ["--executor", "remote", "--workers", addresses]
        )
    finally:
        for proc, _ in workers:
            proc.send_signal(signal.SIGINT)
        for proc, _ in workers:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
    print(f"serial: {serial}")
    print(f"remote: {remote}  {fleet}  {scheduler}")
    if not serial or serial != remote:
        print("FAIL: remote tuning diverged from serial", file=sys.stderr)
        return 1
    if fleet != ["fleet: 0 fallback batches, 0 retried shards"]:
        print(f"FAIL: fleet did not serve the run cleanly: {fleet}",
              file=sys.stderr)
        return 1
    # The scheduler line proves the pull path engaged; with 4 unequal
    # slots draining GA generations, some chunk must have been pulled
    # away from its static home slot.
    if not scheduler:
        print("FAIL: pull scheduler never engaged (no scheduler line)",
              file=sys.stderr)
        return 1
    match = re.search(r"scheduler: (\d+) chunks pulled, (\d+) steals",
                      scheduler[0])
    if not match:
        print(f"FAIL: unparseable scheduler line: {scheduler}",
              file=sys.stderr)
        return 1
    pulled, steals = int(match.group(1)), int(match.group(2))
    if pulled <= 0 or steals <= 0:
        print(f"FAIL: expected pulls and steals > 0, got {pulled} pulls, "
              f"{steals} steals", file=sys.stderr)
        return 1
    print(f"OK: unequal-capacity 2-worker tune is bit-identical to serial "
          f"({pulled} chunks pulled, {steals} steals, no fallback)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
