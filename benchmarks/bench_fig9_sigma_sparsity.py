"""Figure 9: AlexNet on SIGMA at 0% vs 50% sparsity.

Paper: with sparsity at 50%, the convolutional layers need on average 44%
fewer cycles (Fig. 9a) and the fully connected layers 54% fewer (Fig. 9b).
"""

from conftest import emit

from repro.models import alexnet_conv_layers, alexnet_fc_layers
from repro.stonne.config import sigma_config
from repro.stonne.sigma import SigmaController


def _sweep():
    dense = SigmaController(sigma_config(sparsity_ratio=0))
    sparse = SigmaController(sigma_config(sparsity_ratio=50))
    rows = []
    for layer in alexnet_conv_layers():
        rows.append(("conv", layer.name,
                     dense.run_conv(layer).cycles, sparse.run_conv(layer).cycles))
    for layer in alexnet_fc_layers():
        rows.append(("fc", layer.name,
                     dense.run_fc(layer).cycles, sparse.run_fc(layer).cycles))
    return rows


def _format(rows):
    lines = [f"{'layer':<8}{'cycles @0%':>16}{'cycles @50%':>16}{'saving':>10}"]
    for _, name, c0, c50 in rows:
        lines.append(f"{name:<8}{c0:>16,}{c50:>16,}{1 - c50 / c0:>10.1%}")
    conv = [(c0, c50) for kind, _, c0, c50 in rows if kind == "conv"]
    fc = [(c0, c50) for kind, _, c0, c50 in rows if kind == "fc"]
    conv_mean = sum(1 - c50 / c0 for c0, c50 in conv) / len(conv)
    fc_mean = sum(1 - c50 / c0 for c0, c50 in fc) / len(fc)
    lines.append(f"mean conv saving: {conv_mean:.1%}   (paper: 44%)")
    lines.append(f"mean fc saving:   {fc_mean:.1%}   (paper: 54%)")
    return "\n".join(lines), conv_mean, fc_mean


def test_fig9_sigma_sparsity(benchmark, results_dir):
    rows = benchmark(_sweep)
    text, conv_mean, fc_mean = _format(rows)
    emit(results_dir, "fig9_sigma_sparsity", text)

    assert 0.35 <= conv_mean <= 0.50
    assert 0.48 <= fc_mean <= 0.62
    assert fc_mean > conv_mean  # the figure's qualitative asymmetry
