"""Saturation scheduler benchmark: pull-based queue vs static fan-out.

A scenario-matrix sweep is *skewed* in practice: hardware configs differ
in simulation cost, a few layers dominate a model, and fleet workers run
at unequal speeds.  Under the historical static fan-out each engine
group barriers — every executor slot waits for the group's straggler
before the next group starts — so skew turns directly into idle slots.
The pull scheduler (:func:`repro.engine.scheduler.run_plan_groups`)
drains all groups through one work queue instead: slots pull the next
chunk as they finish, stragglers of every group run concurrently from
pull #1, and fast slots steal the tails.

This bench builds a multi-engine sweep (one engine per SIGMA size) whose
groups each contain one *straggler* layer — its simulation blocks for a
fixed latency, emulating the heavyweight-functional / slow-remote-worker
regime on any machine, including single-core CI — plus a tail of cheap
layers.  It times three arms over identical work:

* **serial** — one slot, no scheduling (also the bit-identity reference
  and the "total busy time" used for the utilization estimate);
* **static** — the legacy path: one ``backend.run`` fan-out per engine
  group, barriered, on a 4-worker process pool;
* **pull** — ``run_plan_groups`` over all groups on the same pool;
* **thread** — ``run_plan_groups`` on a 4-worker *thread* pool.  The
  historical claim that threads "help little" dated from the pure-Python
  cycle models holding the GIL; with blocking waits and numpy batch
  kernels releasing it, threads overlap too, and this arm keeps that
  claim measured instead of folklore.

Results must be bit-identical across all arms; the pull arm must beat
static by >= 1.5x wall-clock (the sum-of-stragglers vs
max-of-stragglers gap), and the thread arm must beat serial by >= 1.5x.
Emits ``BENCH_scheduler.json`` with the wall times, the utilization
estimates and the scheduler counters.

The straggler latency is injected by wrapping
``repro.engine.backends.simulate_layer`` *before* the process pool
forks, so the workers inherit it; the speedup band is asserted only
where that inheritance holds (fork start method, i.e. Linux).
"""

import json
import multiprocessing
import time

from conftest import SMOKE, emit, scaled

import repro.engine.backends as backends_mod
from repro.engine import EvalRequest, EvaluationEngine
from repro.engine.backends import ProcessBackend, ThreadBackend
from repro.engine.scheduler import run_plan_groups
from repro.stonne.config import sigma_config
from repro.stonne.layer import FcLayer

#: One engine group per SIGMA multiplier-switch size.
GROUP_SIZES = [16, 32, 64, 128][: scaled(4, 2)]
#: Cheap layers per group besides the straggler.
LIGHT_LAYERS = scaled(11, 3)
#: Injected straggler latency (seconds of blocking per slow layer).
SLOW_S = 0.5 if not SMOKE else 0.1
WORKERS = 4

_REAL_SIMULATE = backends_mod.simulate_layer


def _skewed_simulate(controller, layer, mapping, functional):
    """The real simulation, plus a blocking delay for straggler layers."""
    if layer.name.startswith("slow"):
        time.sleep(SLOW_S)
    return _REAL_SIMULATE(controller, layer, mapping, functional)


def _group_layers(group: int):
    """One straggler plus LIGHT_LAYERS cheap FC layers (distinct shapes)."""
    return [FcLayer(f"slow{group}", in_features=128, out_features=128)] + [
        FcLayer(f"light{group}.{i}", in_features=32 + i, out_features=32)
        for i in range(LIGHT_LAYERS)
    ]


def _engines(backend):
    """One engine per SIGMA size, all sharing ``backend``."""
    return [
        EvaluationEngine(
            sigma_config(ms_size=size),
            executor=backend,
            max_workers=WORKERS,
            chunk_size=1,
        )
        for size in GROUP_SIZES
    ]


def _stats_dicts(plans):
    return [s.to_dict() for plan in plans for s in plan.results]


def _serial_arm():
    """Single-slot reference: results + the workload's total busy time."""
    start = time.perf_counter()
    stats = []
    for group, size in enumerate(GROUP_SIZES):
        engine = EvaluationEngine(sigma_config(ms_size=size))
        for result in engine.evaluate_many(
            [EvalRequest(l) for l in _group_layers(group)]
        ):
            stats.append(result.to_dict())
    return time.perf_counter() - start, stats


def _static_arm(backend):
    """The legacy path: one barriered fan-out per engine group."""
    engines = _engines(backend)
    start = time.perf_counter()
    plans = []
    for group, engine in enumerate(engines):
        plan = engine.plan_many(
            [EvalRequest(l) for l in _group_layers(group)]
        )
        work, owners = engine._collect_pending([plan])
        run = backend.run(engine, work, max_workers=WORKERS)
        engine._merge_results(work, owners, run)
        plan._resolve_duplicates()
        plans.append(plan)
    return time.perf_counter() - start, _stats_dicts(plans)


def _pull_arm(backend):
    """All groups through one pull queue on the same pool."""
    engines = _engines(backend)
    start = time.perf_counter()
    groups = []
    plans = []
    for group, engine in enumerate(engines):
        plan = engine.plan_many(
            [EvalRequest(l) for l in _group_layers(group)]
        )
        plans.append(plan)
        groups.append((engine, [plan]))
    report = run_plan_groups(groups)
    return time.perf_counter() - start, _stats_dicts(plans), report


def _warm_pool(backend):
    """Fork the pool and build every worker's controllers before timing."""
    for engine in _engines(backend):
        items = [
            (None, EvalRequest(FcLayer(f"warm{i}", in_features=8 + i,
                                       out_features=8)))
            for i in range(2 * WORKERS)
        ]
        backend.run(engine, items, max_workers=WORKERS)


def _run():
    backends_mod.simulate_layer = _skewed_simulate
    backend = ProcessBackend(max_workers=WORKERS)
    thread_backend = ThreadBackend(max_workers=WORKERS)
    try:
        serial_s, serial_stats = _serial_arm()
        _warm_pool(backend)
        static_s, static_stats = _static_arm(backend)
        pull_s, pull_stats, report = _pull_arm(backend)
        thread_s, thread_stats, thread_report = _pull_arm(thread_backend)
    finally:
        backend.close()
        thread_backend.close()
        backends_mod.simulate_layer = _REAL_SIMULATE
    return {
        "serial_s": serial_s,
        "static_s": static_s,
        "pull_s": pull_s,
        "thread_s": thread_s,
        "serial_stats": serial_stats,
        "static_stats": static_stats,
        "pull_stats": pull_stats,
        "thread_stats": thread_stats,
        "report": report,
        "thread_report": thread_report,
    }


def test_scheduler_saturation(benchmark, results_dir):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = out["static_s"] / out["pull_s"]
    thread_speedup = out["serial_s"] / out["thread_s"]
    items = len(GROUP_SIZES) * (1 + LIGHT_LAYERS)
    # Utilization: busy time (the serial wall clock) over slot-seconds.
    util_static = out["serial_s"] / (WORKERS * out["static_s"])
    util_pull = out["serial_s"] / (WORKERS * out["pull_s"])
    util_thread = out["serial_s"] / (WORKERS * out["thread_s"])
    record = {
        "benchmark": "scheduler",
        "smoke": SMOKE,
        "groups": len(GROUP_SIZES),
        "items": items,
        "workers": WORKERS,
        "straggler_latency_s": SLOW_S,
        "serial_s": round(out["serial_s"], 4),
        "static_s": round(out["static_s"], 4),
        "pull_s": round(out["pull_s"], 4),
        "thread_s": round(out["thread_s"], 4),
        "speedup_vs_static": round(speedup, 3),
        "thread_speedup_vs_serial": round(thread_speedup, 3),
        "utilization_static": round(util_static, 4),
        "utilization_pull": round(util_pull, 4),
        "utilization_thread": round(util_thread, 4),
        "bit_identical": (
            out["pull_stats"] == out["serial_stats"]
            and out["static_stats"] == out["serial_stats"]
            and out["thread_stats"] == out["serial_stats"]
        ),
        "counters": {
            key: value
            for key, value in out["report"].items()
            if key != "mode"
        },
    }
    (results_dir / "BENCH_scheduler.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    lines = [
        f"{len(GROUP_SIZES)} engine groups x {1 + LIGHT_LAYERS} layers "
        f"({items} items), 1 straggler/group at {SLOW_S:.1f}s, "
        f"process pool x{WORKERS}",
        f"{'':<10}{'wall s':>10}{'utilization':>13}",
        f"{'serial':<10}{out['serial_s']:>10.3f}{'':>13}",
        f"{'static':<10}{out['static_s']:>10.3f}{util_static:>12.0%}",
        f"{'pull':<10}{out['pull_s']:>10.3f}{util_pull:>12.0%}",
        f"{'thread':<10}{out['thread_s']:>10.3f}{util_thread:>12.0%}",
        f"speedup vs static fan-out: {speedup:.2f}x   "
        f"thread vs serial: {thread_speedup:.2f}x   "
        f"counters: {out['report']['chunks_pulled']} pulls, "
        f"{out['report']['steals']} steals, "
        f"{out['report']['resplits']} re-splits",
    ]
    emit(results_dir, "scheduler", "\n".join(lines))

    # Correctness first: all four arms bit-identical.
    assert out["report"]["mode"] == "pull"
    assert out["thread_report"]["mode"] == "pull"
    assert out["static_stats"] == out["serial_stats"]
    assert out["pull_stats"] == out["serial_stats"]
    assert out["thread_stats"] == out["serial_stats"]
    # The straggler injection only reaches pool workers where the pool
    # forks (Linux); without it there is no skew to reclaim.
    if not SMOKE and multiprocessing.get_start_method() == "fork":
        assert speedup >= 1.5, f"pull speedup only {speedup:.2f}x"
        assert util_pull > util_static
    # Thread slots share the patched interpreter on every platform; the
    # straggler sleeps (and numpy batch kernels) release the GIL, so
    # threads must reclaim the skew too.
    if not SMOKE:
        assert thread_speedup >= 1.5, (
            f"thread speedup only {thread_speedup:.2f}x"
        )
