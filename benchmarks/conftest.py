"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation (see DESIGN.md §4 for the index).  Each bench:

* computes the paper's rows/series from the simulator,
* prints them (visible with ``pytest benchmarks/ --benchmark-only -s``),
* writes them to ``benchmarks/results/<name>.txt`` for EXPERIMENTS.md,
* asserts the *shape* bands recorded in EXPERIMENTS.md, and
* times the whole harness through the ``benchmark`` fixture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Smoke mode (BENCH_SMOKE=1): shrink iteration counts and skip
#: wall-clock assertion bands so CI can cheaply verify every benchmark
#: still *runs* without paying for statistically meaningful timings.
SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def scaled(full: int, smoke: int) -> int:
    """``full`` iterations normally, ``smoke`` under BENCH_SMOKE=1."""
    return smoke if SMOKE else full


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a reproduced table and persist it under results/."""
    print()
    print(f"=== {name} ===")
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
