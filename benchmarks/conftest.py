"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation (see DESIGN.md §4 for the index).  Each bench:

* computes the paper's rows/series from the simulator,
* prints them (visible with ``pytest benchmarks/ --benchmark-only -s``),
* writes them to ``benchmarks/results/<name>.txt`` for EXPERIMENTS.md,
* asserts the *shape* bands recorded in EXPERIMENTS.md, and
* times the whole harness through the ``benchmark`` fixture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a reproduced table and persist it under results/."""
    print()
    print(f"=== {name} ===")
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
