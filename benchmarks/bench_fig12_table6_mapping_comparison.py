"""Figure 12 + Table VI: default vs AutoTVM vs mRNA mappings on MAERI.

Figure 12 compares simulated cycles for AlexNet under the three mapping
sources; Table VI lists the FC mappings each source chose.

Paper shapes: mRNA needs ~20% fewer cycles than AutoTVM on the conv
layers and ~67% fewer on the FC layers; AutoTVM's FC mappings always
maximize T_S and minimize T_K/T_N (layer-invariant), while mRNA's are
balanced and vary per layer.
"""

from conftest import emit

from repro.bifrost.reporting import LayerComparison, comparison_table
from repro.models import alexnet_conv_layers, alexnet_fc_layers
from repro.mrna import MrnaMapper
from repro.stonne.config import maeri_config
from repro.stonne.layer import ConvLayer
from repro.stonne.maeri import MaeriController
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.tuner import GridSearchTuner, MaeriConvTask, MaeriFcTask

CONFIG = maeri_config()


def autotvm_mapping(layer):
    """Psum-optimal mapping over the knob space (exhaustive, so the bench
    is deterministic; the XGB tuner converges to the same optimum)."""
    if isinstance(layer, ConvLayer):
        task = MaeriConvTask(layer, CONFIG, objective="psums",
                             max_options_per_tile=5)
    else:
        task = MaeriFcTask(layer, CONFIG, objective="psums")
    result = GridSearchTuner(task).tune(n_trials=10 ** 9)
    return task.best_mapping(result.best_config)


def _run():
    controller = MaeriController(CONFIG)
    mapper = MrnaMapper(CONFIG)
    comparisons = []
    table6 = []
    for layer in alexnet_conv_layers() + alexnet_fc_layers():
        is_conv = isinstance(layer, ConvLayer)
        tuned = autotvm_mapping(layer)
        mrna = mapper.map_conv(layer) if is_conv else mapper.map_fc(layer)
        basic = ConvMapping.basic() if is_conv else FcMapping.basic()
        run = controller.run_conv if is_conv else controller.run_fc
        comparisons.append(
            LayerComparison(
                layer.name,
                {
                    "default": run(layer, basic).cycles,
                    "AutoTVM": run(layer, tuned).cycles,
                    "mRNA": run(layer, mrna).cycles,
                },
            )
        )
        if not is_conv:
            table6.append((layer.name, basic.as_tuple(), tuned.as_tuple(),
                           mrna.as_tuple()))
    return comparisons, table6


def test_fig12_and_table6(benchmark, results_dir):
    comparisons, table6 = benchmark.pedantic(_run, rounds=1, iterations=1)

    text = comparison_table(comparisons, ["default", "AutoTVM", "mRNA"])
    conv_rows = comparisons[:5]
    fc_rows = comparisons[5:]
    conv_saving = sum(
        1 - r.cycles["mRNA"] / r.cycles["AutoTVM"] for r in conv_rows
    ) / len(conv_rows)
    fc_saving = sum(
        1 - r.cycles["mRNA"] / r.cycles["AutoTVM"] for r in fc_rows
    ) / len(fc_rows)
    text += (
        f"\nmRNA vs AutoTVM: conv {conv_saving:.1%} fewer cycles "
        "(paper: 20%), "
        f"fc {fc_saving:.1%} fewer (paper: 67%)"
    )
    emit(results_dir, "fig12_mapping_comparison", text)

    lines = [f"{'mapping':<9}{'FC1':>16}{'FC2':>16}{'FC3':>16}"]
    for label, idx in (("Basic", 1), ("AutoTVM", 2), ("mRNA", 3)):
        cells = "".join(f"{str(row[idx]):>16}" for row in table6)
        lines.append(f"{label:<9}{cells}")
    emit(results_dir, "table6_fc_mappings", "\n".join(lines))

    # Figure 12 shapes.
    for row in comparisons:
        assert row.cycles["mRNA"] <= row.cycles["AutoTVM"] <= row.cycles["default"]
    # Paper: conv 20%, fc 67%.  Our mRNA stand-in optimizes the true cycle
    # model, so its margin over psum-guided tuning is wider than the
    # paper's (documented in EXPERIMENTS.md); the qualitative shape —
    # mRNA wins everywhere, and by far more on FC than conv — must hold.
    assert 0.05 <= conv_saving <= 0.60, f"conv saving {conv_saving:.2%}"
    assert 0.50 <= fc_saving <= 0.95, f"fc saving {fc_saving:.2%}"
    assert fc_saving > conv_saving

    # Table VI shapes: AutoTVM layer-invariant and skewed, mRNA varying.
    autotvm_tuples = {row[2] for row in table6}
    assert len(autotvm_tuples) == 1
    t_s, t_k, t_n = next(iter(autotvm_tuples))
    assert t_k == 1 and t_n == 1 and t_s == CONFIG.ms_size
    mrna_tuples = [row[3] for row in table6]
    assert all(t[1] > 1 for t in mrna_tuples), "mRNA balances T_K"
    assert len(set(mrna_tuples)) >= 2, "mRNA adapts per layer"
