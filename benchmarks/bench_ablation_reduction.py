"""Ablation: reduction network fabrics (ASNETWORK vs FENETWORK).

MAERI can be simulated with either the ART (``ASNETWORK``) or the
STIFT-style forwarding fabric (``FENETWORK``, paper §VI item 7).  Steady-
state throughput is port-bound and identical; the fabrics differ in
pipeline-fill latency, which only matters for small layers.  This bench
quantifies that on LeNet (small) and AlexNet (large) layers.
"""

from conftest import emit

from repro.models import alexnet_conv_layers, lenet_conv_layers
from repro.mrna import MrnaMapper
from repro.stonne.config import ReduceNetworkType, maeri_config
from repro.stonne.maeri import MaeriController


def _run():
    rows = []
    for layer in [*lenet_conv_layers(), *alexnet_conv_layers()[:2]]:
        base = maeri_config()
        mapping = MrnaMapper(base).map_conv(layer)
        cycles = {}
        for kind in (ReduceNetworkType.ASNETWORK, ReduceNetworkType.FENETWORK):
            config = maeri_config(reduce_network_type=kind)
            cycles[kind.value] = MaeriController(config).run_conv(
                layer, mapping
            ).cycles
        rows.append((layer.name, layer.macs, cycles))
    return rows


def test_ablation_reduction_network(benchmark, results_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [f"{'layer':<8}{'macs':>14}{'ASNETWORK':>14}{'FENETWORK':>14}{'delta':>8}"]
    for name, macs, cycles in rows:
        a, f = cycles["ASNETWORK"], cycles["FENETWORK"]
        lines.append(f"{name:<8}{macs:>14,}{a:>14,}{f:>14,}{f - a:>8,}")
    emit(results_dir, "ablation_reduction", "\n".join(lines))

    for name, macs, cycles in rows:
        a, f = cycles["ASNETWORK"], cycles["FENETWORK"]
        # Fill-latency differences only: tiny absolute delta either way.
        assert abs(f - a) <= 16, f"{name}: fabrics differ beyond fill latency"
        relative = abs(f - a) / a
        assert relative < 0.05, f"{name}: steady state must dominate"
