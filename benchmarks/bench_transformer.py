"""Transformer encoder block sweep throughput across the controllers.

The paper's evaluation stops at AlexNet-era CNNs; the workload zoo's
``transformer`` entry lowers one encoder block (QKV projections,
per-head attention score/value GEMMs, FFN pair) to dense FC scenarios
every controller can run.  This bench sweeps the block across
MAERI/SIGMA/TPU at two array sizes through the functional datapath and
records end-to-end sweep throughput (layer simulations per second).

Emits ``BENCH_transformer.json`` with wall time, per-architecture cycle
totals at the largest array, and a repeated-run determinism check —
the sweep tier's bit-identical contract extends to the zoo workloads.
"""

import json
import time

from conftest import SMOKE, emit, scaled

from repro.session import Session, SessionConfig
from repro.sweep import SweepPlan
from repro.zoo.modern import transformer_encoder_layers

D_MODEL = scaled(256, 64)
HEADS = scaled(8, 4)
SEQ_LEN = scaled(64, 16)
FFN_DIM = scaled(1024, 128)

ARCHES = ["maeri", "sigma", "tpu"]
MS_SIZES = [64, 128]


def _plan(config):
    return SweepPlan.matrix(
        config,
        models=["transformer"],
        axes={
            "architecture.arch": list(ARCHES),
            "architecture.ms_size": list(MS_SIZES),
        },
    )


def _sweep_once(config):
    with Session(config) as session:
        start = time.perf_counter()
        report = session.sweep(_plan(config))
        elapsed = time.perf_counter() - start
    return elapsed, report


def _canon(report):
    """A comparable digest of every scenario's full stats."""
    return {
        result.name: [s.to_dict() for s in result.report.layer_stats]
        for result in report
    }


def _run():
    config = SessionConfig.resolve(env=False)
    elapsed_a, report_a = _sweep_once(config)
    elapsed_b, report_b = _sweep_once(config)
    return elapsed_a, report_a, elapsed_b, report_b


def test_transformer_sweep_throughput(benchmark, results_dir):
    # Smoke shrinks the block itself, so re-register at bench scale.
    from repro.zoo import register_model

    layers = transformer_encoder_layers(
        d_model=D_MODEL, heads=HEADS, seq_len=SEQ_LEN, ffn_dim=FFN_DIM
    )
    register_model(
        "transformer", lambda: list(layers), replace=True,
        description="encoder block at bench scale", tags=("bench",),
    )

    elapsed_a, report_a, elapsed_b, report_b = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    n_scenarios = len(report_a)
    layer_sims = sum(len(r.report.layer_stats) for r in report_a)
    throughput = layer_sims / elapsed_a

    totals = {}
    for arch in ARCHES:
        (result,) = report_a.filter(arch=arch, ms_size=MS_SIZES[-1])
        totals[arch] = sum(s.cycles for s in result.report.layer_stats)

    record = {
        "benchmark": "transformer",
        "smoke": SMOKE,
        "d_model": D_MODEL,
        "heads": HEADS,
        "seq_len": SEQ_LEN,
        "ffn_dim": FFN_DIM,
        "arches": ARCHES,
        "ms_sizes": MS_SIZES,
        "scenarios": n_scenarios,
        "layers_per_scenario": len(layers),
        "layer_simulations": layer_sims,
        "sweep_wall_s": round(elapsed_a, 4),
        "layer_sims_per_s": round(throughput, 1),
        "repeat_wall_s": round(elapsed_b, 4),
        "deterministic": _canon(report_a) == _canon(report_b),
        "total_cycles_at_largest_array": totals,
    }
    (results_dir / "BENCH_transformer.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    lines = [
        f"encoder block d_model={D_MODEL} heads={HEADS} seq_len={SEQ_LEN} "
        f"ffn={FFN_DIM}: {n_scenarios} scenarios "
        f"({len(layers)} layers each), functional datapath",
        f"sweep wall: {elapsed_a:.3f}s  "
        f"throughput: {throughput:,.1f} layer sims/s",
        f"{'arch':<8}{f'cycles @ ms={MS_SIZES[-1]}':>20}",
        *(
            f"{arch:<8}{totals[arch]:>20,}"
            for arch in ARCHES
        ),
    ]
    emit(results_dir, "transformer_sweep", "\n".join(lines))

    # The block lowers to 4 projections + 2 GEMMs per head + the FFN pair.
    assert len(layers) == 6 + 2 * HEADS
    assert n_scenarios == len(ARCHES) * len(MS_SIZES)
    # Determinism is the oracle the fuzz tier depends on.
    assert record["deterministic"]
    # Larger arrays never cost more cycles than smaller ones.
    for arch in ARCHES:
        (small,) = report_a.filter(arch=arch, ms_size=MS_SIZES[0])
        small_total = sum(s.cycles for s in small.report.layer_stats)
        assert totals[arch] <= small_total, (
            f"{arch}: ms={MS_SIZES[-1]} slower than ms={MS_SIZES[0]}"
        )
