"""Satellite benchmark: vectorized im2col vs the seed's Python triple loop.

The im2col lowering runs inside every functional conv execution (§V's
step ii / the exact GEMM datapath), so its cost multiplies across every
offloaded layer.  This bench keeps the pre-vectorization loop as the
baseline oracle, asserts bit-identical output, and reports the speedup
of the stride-tricks implementation.
"""

import time

import numpy as np
from conftest import emit

from repro.stonne.layer import ConvLayer
from repro.stonne.simulator import _im2col

ROUNDS = 10

LAYERS = [
    ConvLayer("alexnet_conv2ish", C=64, H=27, W=27, K=192, R=5, S=5, pad_h=2, pad_w=2),
    ConvLayer("vgg_conv3ish", C=128, H=28, W=28, K=256, R=3, S=3, pad_h=1, pad_w=1),
    ConvLayer("strided", C=64, H=32, W=32, K=64, R=3, S=3, stride_h=2, stride_w=2),
]


def _im2col_loop(data: np.ndarray, layer: ConvLayer) -> np.ndarray:
    """The seed implementation (pre-vectorization), batch element 0."""
    padded = np.pad(
        data,
        ((0, 0), (0, 0), (layer.pad_h, layer.pad_h), (layer.pad_w, layer.pad_w)),
        mode="constant",
    )
    p, q = layer.P, layer.Q
    c = layer.C
    cols = np.empty((c * layer.R * layer.S, p * q), dtype=padded.dtype)
    idx = 0
    for ch in range(c):
        for r in range(layer.R):
            for s in range(layer.S):
                patch = padded[
                    0,
                    ch,
                    r : r + p * layer.stride_h : layer.stride_h,
                    s : s + q * layer.stride_w : layer.stride_w,
                ]
                cols[idx] = patch.reshape(-1)
                idx += 1
    return cols


def _time(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _run():
    rng = np.random.default_rng(0)
    rows = []
    for layer in LAYERS:
        data = rng.normal(size=(1, layer.C, layer.H, layer.W))
        loop_cols = _im2col_loop(data, layer)
        vec_cols = _im2col(data, layer)
        np.testing.assert_array_equal(vec_cols[0], loop_cols)
        t_loop = _time(lambda: _im2col_loop(data, layer))
        t_vec = _time(lambda: _im2col(data, layer))
        rows.append((layer.name, t_loop * 1e3, t_vec * 1e3, t_loop / t_vec))
    return rows


def test_bench_im2col(benchmark, results_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [f"{'layer':<18}{'loop ms':>10}{'vectorized ms':>15}{'speedup':>10}"]
    for name, t_loop, t_vec, speedup in rows:
        lines.append(f"{name:<18}{t_loop:>10.3f}{t_vec:>15.3f}{speedup:>9.1f}x")
    emit(results_dir, "im2col_vectorization", "\n".join(lines))

    for name, _, _, speedup in rows:
        assert speedup > 1.0, f"{name}: vectorized im2col slower than the loop"
