"""Table I: feature comparison of Bifrost against related systems."""

from conftest import emit

from repro.bifrost.reporting import FEATURE_MATRIX, feature_table


def test_table1_feature_matrix(benchmark, results_dir):
    table = benchmark(feature_table)
    emit(results_dir, "table1_features", table)

    # Paper claims: Bifrost is the only system with every feature.
    assert all(FEATURE_MATRIX["Bifrost"].values())
    for system, features in FEATURE_MATRIX.items():
        if system != "Bifrost":
            assert not all(features.values()), f"{system} should lack a feature"
