"""Extension bench: energy as a tuning objective (the paper's §IX).

The paper leaves energy-targeted tuning as future work; the energy-model
extension makes it runnable.  This bench compares, for AlexNet conv3 and
fc1 on MAERI-128, the mappings that minimize cycles vs the mappings that
minimize energy, and reports the cycle/energy cost of each choice — the
performance-vs-efficiency trade-off the paper's §VIII preamble motivates.
"""

from conftest import emit

from repro.models import alexnet_conv_layers, alexnet_fc_layers
from repro.stonne.config import maeri_config
from repro.stonne.energy import estimate_energy
from repro.stonne.layer import ConvLayer
from repro.stonne.maeri import MaeriController
from repro.tuner import GridSearchTuner, MaeriConvTask, MaeriFcTask

CONFIG = maeri_config()


def _optimum(layer, objective):
    if isinstance(layer, ConvLayer):
        task = MaeriConvTask(layer, CONFIG, objective=objective,
                             max_options_per_tile=4)
    else:
        task = MaeriFcTask(layer, CONFIG, objective=objective)
    result = GridSearchTuner(task).tune(n_trials=10 ** 9)
    return task.best_mapping(result.best_config)


def _run():
    controller = MaeriController(CONFIG)
    rows = []
    for layer in [alexnet_conv_layers()[2], alexnet_fc_layers()[0]]:
        is_conv = isinstance(layer, ConvLayer)
        run = controller.run_conv if is_conv else controller.run_fc
        for objective in ("cycles", "energy"):
            mapping = _optimum(layer, objective)
            stats = run(layer, mapping)
            rows.append(
                (
                    layer.name,
                    objective,
                    mapping.as_tuple(),
                    stats.cycles,
                    estimate_energy(stats).total,
                )
            )
    return rows


def test_ablation_energy_objective(benchmark, results_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        f"{'layer':<7}{'objective':<10}{'cycles':>14}{'energy (MAC-units)':>20}  mapping"
    ]
    for name, objective, mapping, cycles, energy in rows:
        lines.append(
            f"{name:<7}{objective:<10}{cycles:>14,}{energy:>20,.0f}  {mapping}"
        )
    emit(results_dir, "ablation_energy", "\n".join(lines))

    by_key = {(r[0], r[1]): r for r in rows}
    for layer_name in {r[0] for r in rows}:
        cyc = by_key[(layer_name, "cycles")]
        ene = by_key[(layer_name, "energy")]
        # Each objective is at least as good as the other on its own metric.
        assert cyc[3] <= ene[3], f"{layer_name}: cycle optimum not fastest"
        assert ene[4] <= cyc[4], f"{layer_name}: energy optimum not cheapest"
