"""Ablation: how well does the psum proxy track cycles? (§VII-B)

The paper argues psums are "merely loosely correlated with performance":
tuning on them is thousands of times cheaper but does not find the cycle
optimum.  This bench samples the conv3 and fc1 mapping spaces, computes
the Spearman rank correlation between psums and simulated cycles, and
compares the cycle cost of the psum-optimal against the cycle-optimal
mapping.
"""

import numpy as np
from conftest import emit
from scipy import stats as scipy_stats

from repro.models import alexnet_conv_layers, alexnet_fc_layers
from repro.stonne.config import maeri_config
from repro.tuner import GridSearchTuner, MaeriConvTask, MaeriFcTask


def _collect(task_cls, layer, **kwargs):
    config = maeri_config()
    psums_task = task_cls(layer, config, objective="psums", **kwargs)
    cycles_task = task_cls(layer, config, objective="cycles", **kwargs)
    pairs = []
    for index in psums_task.space.valid_indices():
        cfg = psums_task.space.config_at(index)
        pairs.append(
            (psums_task.evaluate(cfg), cycles_task.evaluate(cfg))
        )
    psums = np.array([p for p, _ in pairs])
    cycles = np.array([c for _, c in pairs])
    rho = scipy_stats.spearmanr(psums, cycles).statistic
    psum_opt_cycles = cycles[int(np.argmin(psums))]
    cycle_opt = cycles.min()
    return rho, psum_opt_cycles, cycle_opt, len(pairs)


def _run():
    conv = _collect(MaeriConvTask, alexnet_conv_layers()[2],
                    max_options_per_tile=4)
    fc = _collect(MaeriFcTask, alexnet_fc_layers()[0])
    return {"conv3": conv, "fc1": fc}


def test_ablation_psum_proxy(benchmark, results_dir):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        f"{'layer':<7}{'spearman':>10}{'psum-opt cycles':>18}"
        f"{'cycle-opt cycles':>18}{'penalty':>9}{'configs':>9}"
    ]
    for name, (rho, psum_opt, cycle_opt, n) in data.items():
        lines.append(
            f"{name:<7}{rho:>10.3f}{int(psum_opt):>18,}"
            f"{int(cycle_opt):>18,}{psum_opt / cycle_opt:>8.1f}x{n:>9}"
        )
    lines.append(
        "psums track cycles well on conv (high rank correlation, small "
        "penalty) but mislead on FC — the paper's 'works reasonably well "
        "for convolutional layers but not for fully connected layers'."
    )
    emit(results_dir, "ablation_psum_proxy", "\n".join(lines))

    conv_rho = data["conv3"][0]
    fc_rho = data["fc1"][0]
    assert conv_rho > 0.5, "conv psums should be a usable proxy"
    assert fc_rho < conv_rho, "the FC proxy must be markedly worse"
    for name, (rho, psum_opt, cycle_opt, _) in data.items():
        assert psum_opt >= cycle_opt
    # FC is where the proxy misleads most (Table VI's story).
    fc_penalty = data["fc1"][1] / data["fc1"][2]
    conv_penalty = data["conv3"][1] / data["conv3"][2]
    assert fc_penalty > conv_penalty
