"""Ablation: distribution/reduction bandwidth sweep (DESIGN.md §3).

The cycle model's central claim is that skewed mappings are bandwidth-
bound while balanced mappings are compute-bound.  This bench sweeps
``dn_bw`` and ``rn_bw`` on AlexNet conv3 and fc1 under mRNA mappings and
checks monotonicity plus eventual saturation.
"""

from conftest import emit

from repro.mrna import MrnaMapper
from repro.stonne.config import maeri_config
from repro.stonne.maeri import MaeriController
from repro.models import alexnet_conv_layers, alexnet_fc_layers

BANDWIDTHS = [8, 16, 32, 64, 128]


def _sweep():
    conv = alexnet_conv_layers()[2]
    fc = alexnet_fc_layers()[0]
    base = maeri_config()
    mapper = MrnaMapper(base)
    conv_mapping = mapper.map_conv(conv)
    fc_mapping = mapper.map_fc(fc)

    rows = []
    for dn in BANDWIDTHS:
        for rn in BANDWIDTHS:
            config = maeri_config(dn_bw=dn, rn_bw=rn)
            controller = MaeriController(config)
            rows.append(
                (
                    dn,
                    rn,
                    controller.run_conv(conv, conv_mapping).cycles,
                    controller.run_fc(fc, fc_mapping).cycles,
                )
            )
    return rows


def test_ablation_bandwidth(benchmark, results_dir):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [f"{'dn_bw':>6}{'rn_bw':>7}{'conv3 cycles':>16}{'fc1 cycles':>16}"]
    for dn, rn, conv_c, fc_c in rows:
        lines.append(f"{dn:>6}{rn:>7}{conv_c:>16,}{fc_c:>16,}")
    emit(results_dir, "ablation_bandwidth", "\n".join(lines))

    # Monotone: widening either bandwidth never increases cycles.
    by_key = {(dn, rn): (c, f) for dn, rn, c, f in rows}
    for dn, rn, conv_c, fc_c in rows:
        if (dn * 2, rn) in by_key:
            assert by_key[(dn * 2, rn)][0] <= conv_c
            assert by_key[(dn * 2, rn)][1] <= fc_c
        if (dn, rn * 2) in by_key:
            assert by_key[(dn, rn * 2)][0] <= conv_c

    # Saturation: at some point extra bandwidth stops helping (compute or
    # hazard bound), so the widest two settings coincide.
    assert by_key[(64, 128)] == by_key[(128, 128)] or (
        by_key[(64, 128)][0] >= by_key[(128, 128)][0]
    )
