"""Observability overhead benchmark: disabled tracing must stay <2%.

The tracer's contract (see ``repro.obs.trace``) is that a disabled
call site costs one attribute check plus a cached no-op context
manager — nothing else.  This bench holds that contract against
``bench_kernels``-scale work, the same analytic way the smoke gate
does (``scripts/obs_smoke.py``, 5% at smoke scale):

* measure the per-call cost of a disabled span directly (best-of-N
  over a tight loop — the only thing instrumentation adds to an
  untraced run);
* run a traced multi-scenario sweep to count how many events that
  workload actually records (spans + instants, the number of call
  sites crossed);
* run the identical sweep untraced and take its wall time.

``overhead = per_call_s * events / untraced_wall_s`` is the fraction
of the untraced run spent in no-op tracer calls.  Computing it
analytically instead of diffing two wall-clock runs keeps the gate
deterministic: two racing A/B runs of a scheduler workload differ by
more than 2% from machine noise alone, which would make the gate
flake in both directions.  Emits ``BENCH_obs.json``.
"""

import json
import time

from conftest import SMOKE, emit, scaled

from repro.obs import get_tracer
from repro.session import Session
from repro.sweep import SweepPlan

#: Disabled-span timing loop (per-call cost is ~hundreds of ns, so the
#: loop needs millions of iterations for a stable figure).
NOOP_CALLS = scaled(2_000_000, 200_000)

#: Scenario matrix: models x ms_size axis, the bench_kernels-scale
#: sweep workload (full scale simulates every conv layer of three zoo
#: models twice over the process pool).
MODELS = scaled(["mlp", "lenet", "alexnet"], ["mlp", "lenet"])
AXIS_VALUES = scaled(["64", "128"], ["64"])

OVERHEAD_LIMIT = 0.02


def _measure_noop_span_s(tracer) -> float:
    """Best-of-3 per-call cost of a disabled span call site."""
    assert not tracer.enabled
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(NOOP_CALLS):
            with tracer.span("noop", category="scheduler", lane="slot-0"):
                pass
        best = min(best, time.perf_counter() - start)
    return best / NOOP_CALLS


def _plan(session):
    return SweepPlan.matrix(
        session.config,
        models=list(MODELS),
        axes={"architecture.ms_size": list(AXIS_VALUES)},
    )


def _count_traced_events(tracer) -> int:
    """Events a traced run of the workload records (call sites hit)."""
    with Session(executor="process", max_workers=2, trace=True) as session:
        session._trace_owner = False  # count events; skip the file write
        session.sweep(_plan(session))
        events = len(tracer.spans())
    tracer.disable()
    tracer.clear()
    return events


def _untraced_wall_s() -> float:
    start = time.perf_counter()
    with Session(executor="process", max_workers=2) as session:
        session.sweep(_plan(session))
    return time.perf_counter() - start


def _run():
    tracer = get_tracer()
    per_call_s = _measure_noop_span_s(tracer)
    events = _count_traced_events(tracer)
    wall_s = _untraced_wall_s()
    return {
        "per_call_s": per_call_s,
        "events": events,
        "untraced_wall_s": wall_s,
        "overhead": (per_call_s * events) / wall_s,
    }


def test_obs_overhead(benchmark, results_dir):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    record = {
        "benchmark": "obs_overhead",
        "smoke": SMOKE,
        "noop_span_ns": round(out["per_call_s"] * 1e9, 1),
        "traced_events": out["events"],
        "untraced_wall_s": round(out["untraced_wall_s"], 4),
        "overhead_pct": round(out["overhead"] * 100, 4),
        "limit_pct": OVERHEAD_LIMIT * 100,
    }
    (results_dir / "BENCH_obs.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    lines = [
        f"disabled span: {record['noop_span_ns']:.0f} ns/call "
        f"(best of 3 x {NOOP_CALLS:,} calls)",
        f"traced sweep: {out['events']} events over "
        f"{len(MODELS)}x{len(AXIS_VALUES)} scenarios",
        f"untraced wall: {out['untraced_wall_s']:.3f} s",
        f"disabled-tracing overhead: {out['overhead']:.4%} "
        f"(limit {OVERHEAD_LIMIT:.0%})",
    ]
    emit(results_dir, "obs_overhead", "\n".join(lines))
    assert out["overhead"] < OVERHEAD_LIMIT, (
        f"disabled tracing costs {out['overhead']:.4%} of an untraced "
        f"run, above the {OVERHEAD_LIMIT:.0%} contract"
    )
