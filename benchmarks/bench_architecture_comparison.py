"""Extension bench: MAERI (mRNA-mapped) vs SIGMA vs TPU on AlexNet.

Not a paper figure, but the comparison Bifrost exists to make easy: the
same network across all three simulated architectures at equal PE count
(128), reporting per-layer and total cycles.
"""

from conftest import emit

from repro.models import alexnet_conv_layers, alexnet_fc_layers
from repro.mrna import MrnaMapper
from repro.stonne.config import maeri_config, sigma_config, tpu_config
from repro.stonne.layer import ConvLayer
from repro.stonne.maeri import MaeriController
from repro.stonne.sigma import SigmaController
from repro.stonne.tpu import TpuController


def _run():
    maeri_cfg = maeri_config()
    maeri = MaeriController(maeri_cfg)
    mapper = MrnaMapper(maeri_cfg)
    sigma = SigmaController(sigma_config())
    tpu = TpuController(tpu_config(ms_rows=16, ms_cols=8))  # 128 PEs

    rows = []
    for layer in alexnet_conv_layers() + alexnet_fc_layers():
        if isinstance(layer, ConvLayer):
            maeri_cycles = maeri.run_conv(layer, mapper.map_conv(layer)).cycles
            sigma_cycles = sigma.run_conv(layer).cycles
            tpu_cycles = tpu.run_conv(layer).cycles
        else:
            maeri_cycles = maeri.run_fc(layer, mapper.map_fc(layer)).cycles
            sigma_cycles = sigma.run_fc(layer).cycles
            tpu_cycles = tpu.run_fc(layer).cycles
        rows.append((layer.name, maeri_cycles, sigma_cycles, tpu_cycles))
    return rows


def test_architecture_comparison(benchmark, results_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [f"{'layer':<8}{'MAERI+mRNA':>14}{'SIGMA':>14}{'TPU 16x8':>14}"]
    totals = [0, 0, 0]
    for name, m, s, t in rows:
        lines.append(f"{name:<8}{m:>14,}{s:>14,}{t:>14,}")
        totals[0] += m
        totals[1] += s
        totals[2] += t
    lines.append(f"{'total':<8}{totals[0]:>14,}{totals[1]:>14,}{totals[2]:>14,}")
    emit(results_dir, "architecture_comparison", "\n".join(lines))

    # Every architecture processes every layer with nonzero cost, and at
    # equal PE count no architecture is pathologically slow (>100x).
    for name, m, s, t in rows:
        assert min(m, s, t) > 0
        assert max(m, s, t) / min(m, s, t) < 100
