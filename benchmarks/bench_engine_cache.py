"""Tentpole benchmark: the evaluation engine's stats cache under GA tuning.

The paper's exact tuning objective requires "a full simulation for every
trial" (§VII-B) — in real STONNE that includes executing the layer's
datapath, which is why cycles-objective tuning is expensive.  This bench
re-tunes a sequence of structurally identical conv layers (networks
repeat shapes constantly: VGG/AlexNet stack same-shape blocks) with the
GA tuner and the cycles objective, through engines whose simulations run
the exact im2col-GEMM datapath (``functional=True``), and compares:

* **cache disabled** — every trial of every re-tuning simulates;
* **cache enabled** — the first tuning run populates the cache; every
  subsequent run is served from it (keys are structural, so distinct
  layer names share entries).

Best-found cost must be identical — caching is an optimization, not an
approximation — and the cache-aware ``num_measurements`` vs
``num_simulations`` counters show the real simulation savings.
"""

import time

from conftest import emit

from repro.engine import EvaluationEngine, StatsCache
from repro.stonne.config import maeri_config
from repro.stonne.layer import ConvLayer
from repro.tuner.measure import MaeriConvTask
from repro.tuner.tuners.ga import GATuner

#: Re-tunings of the same layer shape (distinct names, like real networks).
REPEATS = 12
TRIALS = 400
SEED = 0

CONFIG = maeri_config()


def _layer(i: int) -> ConvLayer:
    return ConvLayer(
        f"block{i}.conv", C=64, H=28, W=28, K=96, R=3, S=3, pad_h=1, pad_w=1
    )


def _tune_sequence(cache_enabled: bool):
    """GA-tune REPEATS same-shape layers through one shared engine."""
    engine = EvaluationEngine(
        CONFIG,
        cache=StatsCache(),
        cache_enabled=cache_enabled,
        functional=True,
    )
    best_costs = []
    measurements = simulations = 0
    start = time.perf_counter()
    for i in range(REPEATS):
        task = MaeriConvTask(
            _layer(i), CONFIG, objective="cycles", engine=engine
        )
        result = GATuner(task, seed=SEED).tune(n_trials=TRIALS)
        best_costs.append(result.best_cost)
        measurements += task.num_measurements
        simulations += task.num_simulations
    elapsed = time.perf_counter() - start
    return {
        "elapsed": elapsed,
        "best_costs": best_costs,
        "measurements": measurements,
        "simulations": simulations,
        "hit_rate": engine.cache.hit_rate,
    }


def _run():
    disabled = _tune_sequence(cache_enabled=False)
    enabled = _tune_sequence(cache_enabled=True)
    return disabled, enabled


def test_engine_cache_speedup(benchmark, results_dir):
    disabled, enabled = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = disabled["elapsed"] / enabled["elapsed"]
    lines = [
        f"GA tuning, cycles objective, {REPEATS} same-shape layers x "
        f"{TRIALS} trials (seed {SEED})",
        f"{'':<16}{'wall s':>10}{'measurements':>14}{'simulations':>13}",
        f"{'cache disabled':<16}{disabled['elapsed']:>10.3f}"
        f"{disabled['measurements']:>14,}{disabled['simulations']:>13,}",
        f"{'cache enabled':<16}{enabled['elapsed']:>10.3f}"
        f"{enabled['measurements']:>14,}{enabled['simulations']:>13,}",
        f"speedup: {speedup:.1f}x   cache hit rate: {enabled['hit_rate']:.1%}",
        f"best cycles (identical both arms): {int(enabled['best_costs'][0]):,}",
    ]
    emit(results_dir, "engine_cache", "\n".join(lines))

    # Correctness: caching never changes what the tuner finds.
    assert enabled["best_costs"] == disabled["best_costs"]
    assert len(set(enabled["best_costs"])) == 1  # deterministic re-tunings
    # The cache eliminates every re-simulation after the first run...
    assert enabled["simulations"] == disabled["simulations"] // REPEATS
    # ...which is the acceptance bar: >= 5x wall-time reduction.
    assert speedup >= 5.0, f"cache speedup only {speedup:.2f}x"
