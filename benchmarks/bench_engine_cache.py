"""Tentpole benchmark: the evaluation engine's stats cache under GA tuning.

The paper's exact tuning objective requires "a full simulation for every
trial" (§VII-B) — in real STONNE that includes executing the layer's
datapath, which is why cycles-objective tuning is expensive.  This bench
re-tunes a sequence of structurally identical conv layers (networks
repeat shapes constantly: VGG/AlexNet stack same-shape blocks) with the
GA tuner and the cycles objective, through engines whose simulations run
the exact im2col-GEMM datapath (``functional=True``), and compares:

* **cache disabled** — every trial of every re-tuning simulates;
* **cache enabled** — the first tuning run populates the cache; every
  subsequent run is served from it (keys are structural, so distinct
  layer names share entries).

Best-found cost must be identical — caching is an optimization, not an
approximation — and the cache-aware ``num_measurements`` vs
``num_simulations`` counters show the real simulation savings.
"""

import os
import tempfile
import time

from conftest import SMOKE, emit, scaled

from repro.engine import EvaluationEngine, PersistentStatsCache, StatsCache
from repro.stonne.config import maeri_config
from repro.stonne.layer import ConvLayer
from repro.tuner.measure import MaeriConvTask
from repro.tuner.tuners.ga import GATuner

#: Re-tunings of the same layer shape (distinct names, like real networks).
REPEATS = scaled(12, 3)
TRIALS = scaled(400, 60)
SEED = 0

CONFIG = maeri_config()


def _layer(i: int) -> ConvLayer:
    return ConvLayer(
        f"block{i}.conv", C=64, H=28, W=28, K=96, R=3, S=3, pad_h=1, pad_w=1
    )


def _tune_sequence(cache_enabled: bool):
    """GA-tune REPEATS same-shape layers through one shared engine."""
    engine = EvaluationEngine(
        CONFIG,
        cache=StatsCache(),
        cache_enabled=cache_enabled,
        functional=True,
    )
    best_costs = []
    measurements = simulations = 0
    start = time.perf_counter()
    for i in range(REPEATS):
        task = MaeriConvTask(
            _layer(i), CONFIG, objective="cycles", engine=engine
        )
        result = GATuner(task, seed=SEED).tune(n_trials=TRIALS)
        best_costs.append(result.best_cost)
        measurements += task.num_measurements
        simulations += task.num_simulations
    elapsed = time.perf_counter() - start
    return {
        "elapsed": elapsed,
        "best_costs": best_costs,
        "measurements": measurements,
        "simulations": simulations,
        "hit_rate": engine.cache.hit_rate,
    }


def _run():
    disabled = _tune_sequence(cache_enabled=False)
    enabled = _tune_sequence(cache_enabled=True)
    return disabled, enabled


def test_engine_cache_speedup(benchmark, results_dir):
    disabled, enabled = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = disabled["elapsed"] / enabled["elapsed"]
    lines = [
        f"GA tuning, cycles objective, {REPEATS} same-shape layers x "
        f"{TRIALS} trials (seed {SEED})",
        f"{'':<16}{'wall s':>10}{'measurements':>14}{'simulations':>13}",
        f"{'cache disabled':<16}{disabled['elapsed']:>10.3f}"
        f"{disabled['measurements']:>14,}{disabled['simulations']:>13,}",
        f"{'cache enabled':<16}{enabled['elapsed']:>10.3f}"
        f"{enabled['measurements']:>14,}{enabled['simulations']:>13,}",
        f"speedup: {speedup:.1f}x   cache hit rate: {enabled['hit_rate']:.1%}",
        f"best cycles (identical both arms): {int(enabled['best_costs'][0]):,}",
    ]
    emit(results_dir, "engine_cache", "\n".join(lines))

    # Correctness: caching never changes what the tuner finds.
    assert enabled["best_costs"] == disabled["best_costs"]
    assert len(set(enabled["best_costs"])) == 1  # deterministic re-tunings
    # The cache eliminates every re-simulation after the first run...
    assert enabled["simulations"] == disabled["simulations"] // REPEATS
    # ...which is the acceptance bar: >= 5x wall-time reduction.
    if not SMOKE:
        assert speedup >= 5.0, f"cache speedup only {speedup:.2f}x"


# ----------------------------------------------------------------------
# executor backends: a cold multi-layer GA sweep, serial vs process
# ----------------------------------------------------------------------
#: Distinct layer shapes for the cold sweep (no cross-layer cache help).
#: Large enough spatially that one simulation's exact datapath costs
#: milliseconds — the regime where process fan-out pays for its IPC.
SWEEP_LAYERS = [
    ConvLayer(f"sweep{i}.conv", C=32 + 16 * i, H=56, W=56, K=64 + 16 * i,
              R=3, S=3, pad_h=1, pad_w=1)
    for i in range(scaled(4, 2))
]
SWEEP_TRIALS = scaled(200, 40)


def _ga_sweep(executor: str, cache=None):
    """GA-tune every sweep layer (cycles objective, exact datapath)
    through one engine on the named executor backend."""
    engine = EvaluationEngine(
        CONFIG,
        cache=cache if cache is not None else StatsCache(),
        functional=True,
        executor=executor,
        max_workers=min(4, os.cpu_count() or 1),
    )
    best_costs = []
    start = time.perf_counter()
    for layer in SWEEP_LAYERS:
        task = MaeriConvTask(layer, CONFIG, objective="cycles", engine=engine)
        best_costs.append(GATuner(task, seed=SEED).tune(SWEEP_TRIALS).best_cost)
    elapsed = time.perf_counter() - start
    engine.close()
    return {
        "elapsed": elapsed,
        "best_costs": best_costs,
        "simulations": engine.num_simulations,
        "hit_rate": engine.cache.hit_rate,
    }


def test_backend_sweep_process_vs_serial(benchmark, results_dir):
    """ProcessBackend must beat SerialBackend on a cold CPU-heavy sweep
    (the GIL serializes the pure-Python cycle models, so threads can't)."""

    def _run():
        return _ga_sweep("serial"), _ga_sweep("process")

    serial, process = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = serial["elapsed"] / process["elapsed"]
    cores = os.cpu_count() or 1
    lines = [
        f"cold GA sweep, cycles objective + exact datapath, "
        f"{len(SWEEP_LAYERS)} distinct layers x {SWEEP_TRIALS} trials "
        f"({cores} cores)",
        f"{'':<16}{'wall s':>10}{'simulations':>13}",
        f"{'serial':<16}{serial['elapsed']:>10.3f}{serial['simulations']:>13,}",
        f"{'process':<16}{process['elapsed']:>10.3f}{process['simulations']:>13,}",
        f"process speedup: {speedup:.2f}x",
    ]
    emit(results_dir, "engine_backends", "\n".join(lines))

    # Backends are an execution detail: identical results, identical work.
    assert process["best_costs"] == serial["best_costs"]
    assert process["simulations"] == serial["simulations"]
    # The acceptance bar needs real parallel hardware; a single core
    # cannot make a process pool beat inline execution.
    if cores >= 2 and not SMOKE:
        assert speedup > 1.0, f"process backend slower ({speedup:.2f}x)"


def test_persistent_cache_warm_start(benchmark, results_dir):
    """A second engine pointed at the same cache path resumes warm:
    >= 90% cache hits on the identical sweep, zero new simulations."""

    def _run():
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "stats-cache.jsonl")
            cold_cache = PersistentStatsCache(path)
            cold = _ga_sweep("serial", cache=cold_cache)
            cold_cache.close()
            warm_cache = PersistentStatsCache(path)
            warm = _ga_sweep("serial", cache=warm_cache)
            warm["warm_entries"] = warm_cache.warm_entries
            warm_cache.close()
        return cold, warm

    cold, warm = benchmark.pedantic(_run, rounds=1, iterations=1)
    speedup = cold["elapsed"] / warm["elapsed"]
    lines = [
        f"identical GA sweep twice, second engine instance reopens the "
        f"JSONL spill ({warm['warm_entries']} warm records)",
        f"{'':<16}{'wall s':>10}{'simulations':>13}{'hit rate':>10}",
        f"{'cold':<16}{cold['elapsed']:>10.3f}{cold['simulations']:>13,}"
        f"{cold['hit_rate']:>10.1%}",
        f"{'warm':<16}{warm['elapsed']:>10.3f}{warm['simulations']:>13,}"
        f"{warm['hit_rate']:>10.1%}",
        f"warm-start speedup: {speedup:.1f}x",
    ]
    emit(results_dir, "engine_warm_start", "\n".join(lines))

    assert warm["best_costs"] == cold["best_costs"]
    assert warm["simulations"] == 0  # everything served from disk
    assert warm["hit_rate"] >= 0.90, f"warm hit rate {warm['hit_rate']:.1%}"


# ----------------------------------------------------------------------
# fleet tier: generation-sized batches sharded across two localhost workers
# ----------------------------------------------------------------------
#: Valid mappings per sweep layer (one "generation" of measurements).
FLEET_BATCH = scaled(48, 12)


def _fleet_generation(layer):
    """The first FLEET_BATCH valid mappings of ``layer``'s tuning space —
    a deterministic stand-in for one tuner generation of cache misses."""
    task = MaeriConvTask(layer, CONFIG, objective="cycles")
    mappings = []
    for index in task.space.valid_indices():
        mappings.append(task.best_mapping(task.space.config_at(index)))
        if len(mappings) == FLEET_BATCH:
            break
    return mappings


def _fleet_sweep(executor):
    """Evaluate every layer's generation through one engine (exact
    datapath per simulation, the paper's expensive-objective regime)."""
    from repro.engine import EvalRequest

    engine = EvaluationEngine(
        CONFIG, cache=StatsCache(), functional=True, executor=executor
    )
    all_stats = []
    start = time.perf_counter()
    for layer in SWEEP_LAYERS:
        requests = [
            EvalRequest(layer, mapping) for mapping in _fleet_generation(layer)
        ]
        all_stats.extend(s.to_dict() for s in engine.evaluate_many(requests))
    elapsed = time.perf_counter() - start
    simulations = engine.num_simulations
    engine.close()
    return {"elapsed": elapsed, "stats": all_stats, "simulations": simulations}


def test_backend_remote_two_workers_vs_serial(benchmark, results_dir):
    """The remote backend is an execution detail: generation-sized
    batches sharded across two localhost worker daemons must produce
    bit-identical stats to inline serial execution, with both workers
    participating and no silent fallback."""
    from repro.fleet import start_worker
    from repro.fleet.remote_backend import RemoteBackend

    def _run():
        workers = [start_worker() for _ in range(2)]
        backend = RemoteBackend(workers=[w.address for w, _ in workers])
        try:
            serial = _fleet_sweep("serial")
            remote = _fleet_sweep(backend)
            remote["fallback_batches"] = backend.fallback_batches
        finally:
            for w, _ in workers:
                w.close()
        return serial, remote, [w.items_served for w, _ in workers]

    serial, remote, served = benchmark.pedantic(_run, rounds=1, iterations=1)
    ratio = serial["elapsed"] / remote["elapsed"]
    lines = [
        f"cold measurement batches, exact datapath per simulation, "
        f"{len(SWEEP_LAYERS)} layers x {FLEET_BATCH} mappings, "
        f"2 localhost fleet workers (wire-protocol overhead included)",
        f"{'':<16}{'wall s':>10}{'simulations':>13}",
        f"{'serial':<16}{serial['elapsed']:>10.3f}{serial['simulations']:>13,}",
        f"{'remote x2':<16}{remote['elapsed']:>10.3f}{remote['simulations']:>13,}",
        f"serial/remote wall ratio: {ratio:.2f}x   "
        f"items per worker: {served}",
    ]
    emit(results_dir, "engine_remote_fleet", "\n".join(lines))

    # Identical stats, identical work, both workers used, no fallback.
    assert remote["stats"] == serial["stats"]
    assert remote["simulations"] == serial["simulations"]
    assert remote["fallback_batches"] == 0
    assert all(count > 0 for count in served)
    assert sum(served) == remote["simulations"]
