"""Figure 10: optimal vs suboptimal mappings across multiplier counts.

A small NCHW convolution (1x2x10x10 input; K=8, R=S=3 — the paper omits
the filter shape) is simulated on MAERI with 8..128 multipliers.  For
every multiplier setting the whole (sub-sampled) mapping space is searched
exhaustively with the grid tuner and the globally optimal and suboptimal
mappings are reported, exactly the Figure 10 procedure.

Paper shapes: at few multipliers optimal and suboptimal differ by a small
factor (~4x); at 128 multipliers by a large one (~76x); the optimal
mapping at 8 multipliers needs ~12x the cycles of the optimal at 128.
"""

from conftest import emit

from repro.stonne.config import maeri_config
from repro.stonne.maeri import MaeriController
from repro.tuner import GridSearchTuner, MaeriConvTask
from repro.tuner.space import config_to_conv_mapping
from repro.workloads import fig10_conv, multiplier_sweep


def _search(ms_size: int):
    """Exhaustively grid-search the mapping space at one array size."""
    layer = fig10_conv()
    config = maeri_config(ms_size=ms_size)
    task = MaeriConvTask(layer, config, objective="cycles",
                         max_options_per_tile=5)
    result = GridSearchTuner(task).tune(n_trials=10 ** 9)
    best = result.best_cost
    worst = max(t.cost for t in result.records.trials if t.valid)
    return int(best), int(worst), result.num_trials


def _sweep():
    return {ms: _search(ms) for ms in multiplier_sweep()}


def test_fig10_mapping_space(benchmark, results_dir):
    data = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [
        f"{'ms_size':>8}{'optimal':>12}{'suboptimal':>12}{'gap':>8}{'configs':>9}"
    ]
    for ms, (best, worst, trials) in data.items():
        lines.append(f"{ms:>8}{best:>12,}{worst:>12,}{worst / best:>8.1f}{trials:>9}")
    b8, w8, _ = data[8]
    b128, w128, _ = data[128]
    lines.append(
        f"gap growth 8->128 multipliers: {w8 / b8:.1f}x -> {w128 / b128:.1f}x "
        "(paper: ~4x -> ~76x)"
    )
    lines.append(
        f"optimal 8 vs 128 multipliers: {b8 / b128:.1f}x (paper: ~12x)"
    )
    emit(results_dir, "fig10_mapping_space", "\n".join(lines))

    # Shape assertions.
    gaps = [data[ms][1] / data[ms][0] for ms in multiplier_sweep()]
    assert gaps == sorted(gaps), "gap must grow monotonically with array size"
    assert w128 / b128 > 4 * (w8 / b8)
    optima = [data[ms][0] for ms in multiplier_sweep()]
    assert optima == sorted(optima, reverse=True)
    assert 6 <= b8 / b128 <= 20
