"""Extension bench: MAGMA (sparse-dense GEMM) vs SIGMA across sparsity.

The paper's §IX extension made measurable: both sparse architectures run
the AlexNet FC stack across pruning levels.  SIGMA's position-tiled
controller keeps psum traffic flat while MAGMA's row packing shrinks it,
so MAGMA overtakes SIGMA as sparsity rises — the crossover this bench
reports.
"""

from conftest import emit

from repro.models import alexnet_fc_layers
from repro.stonne.config import magma_config, sigma_config
from repro.stonne.magma import MagmaController
from repro.stonne.sigma import SigmaController

SPARSITIES = [0, 25, 50, 75, 90]


def _run():
    layers = alexnet_fc_layers()
    rows = []
    for sparsity in SPARSITIES:
        sigma = SigmaController(sigma_config(sparsity_ratio=sparsity))
        magma = MagmaController(magma_config(sparsity_ratio=sparsity))
        sigma_total = sum(sigma.run_fc(l).cycles for l in layers)
        magma_total = sum(magma.run_fc(l).cycles for l in layers)
        rows.append((sparsity, sigma_total, magma_total))
    return rows


def test_extension_magma_vs_sigma(benchmark, results_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [f"{'sparsity':>9}{'SIGMA cycles':>16}{'MAGMA cycles':>16}{'ratio':>8}"]
    for sparsity, sigma_c, magma_c in rows:
        lines.append(
            f"{sparsity:>8}%{sigma_c:>16,}{magma_c:>16,}"
            f"{sigma_c / magma_c:>8.2f}"
        )
    emit(results_dir, "extension_magma", "\n".join(lines))

    # Both monotone decreasing with sparsity.
    for series in (1, 2):
        values = [row[series] for row in rows]
        assert values == sorted(values, reverse=True)
    # MAGMA's advantage grows with sparsity (its psums shrink, SIGMA's don't).
    ratios = [sigma_c / magma_c for _, sigma_c, magma_c in rows]
    assert ratios[-1] > ratios[0]
