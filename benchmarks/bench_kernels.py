"""Batch-kernel benchmark: one numpy pass vs the scalar loop.

PR "vectorized batch kernels" turned the per-mapping Python cycle
models into array programs: a chunk of mappings is packed into an
``(N, k)`` int64 tile matrix and the whole profile/II/fill/steady/psum
arithmetic runs as numpy ops, bit-identical to the scalar path (see
``tests/test_batch_kernels.py`` for the parity suite).  This bench
measures what that buys on the two hot paths:

* **sweep** — a 4096-mapping MAERI tuning sweep over one conv layer:
  ``run_conv_batch`` vs the scalar ``run_conv`` loop (the default
  base-class batch method), plus the tuner's closed-form psum proxy
  (``estimate_conv_psums_batch`` vs its loop);
* **mrna** — the mRNA mapper's full divisor-grid enumeration and
  scoring: the vectorized grid + ``conv_cycles_batch`` argmin vs the
  original candidate-object loop.

Every arm is compared for bit-identity before it is timed as a
speedup.  At full scale the sweep batch kernel must beat the scalar
loop by >= 5x per-simulation throughput (the PR's acceptance band);
``scripts/kernels_smoke.py`` gates the same contract at smoke scale in
CI.  Emits ``BENCH_kernels.json``.
"""

import itertools
import json
import time

from conftest import SMOKE, emit, scaled

from repro.mrna.mapper import MrnaMapper
from repro.stonne.config import maeri_config
from repro.stonne.controller import AcceleratorController
from repro.stonne.layer import ConvLayer
from repro.stonne.maeri import MaeriController
from repro.stonne.mapping import enumerate_conv_mappings

MS_SIZE = 128
#: Mappings in the tuning-sweep arm (the paper-scale generation count).
SWEEP = scaled(4096, 256)

SWEEP_LAYER = ConvLayer("bench_conv", C=64, H=16, W=16, K=64, R=3, S=3)
MRNA_LAYER = ConvLayer(
    "bench_mrna", C=scaled(128, 32), H=28, W=28, K=scaled(128, 32), R=3, S=3
)


def _sweep_mappings():
    mappings = list(
        itertools.islice(
            enumerate_conv_mappings(SWEEP_LAYER, MS_SIZE),
            SWEEP,
        )
    )
    assert len(mappings) == SWEEP, f"sweep space too small: {len(mappings)}"
    return mappings


def _canon(results):
    """Payloads as comparable values (stats dict or exception identity)."""
    return [
        (type(r).__name__, str(r)) if isinstance(r, Exception) else r.to_dict()
        for r in results
    ]


def _timed(fn, repeats=3):
    """Best-of-``repeats`` wall time (single-shot timing is too noisy
    around the 5x gate) and the first call's result."""
    best = float("inf")
    out = None
    for attempt in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
        if attempt == 0:
            out = result
    return best, out


def _run():
    controller = MaeriController(maeri_config(ms_size=MS_SIZE))
    mappings = _sweep_mappings()
    # Warm both paths (numpy ufunc setup, controller state) off the clock.
    controller.run_conv_batch(SWEEP_LAYER, mappings[:8])
    AcceleratorController.run_conv_batch(controller, SWEEP_LAYER, mappings[:8])

    # Scalar reference = the base-class default batch methods, which are
    # exactly the per-item scalar loop with per-item error capture.
    scalar_s, scalar_stats = _timed(
        lambda: AcceleratorController.run_conv_batch(
            controller, SWEEP_LAYER, mappings
        )
    )
    batch_s, batch_stats = _timed(
        lambda: controller.run_conv_batch(SWEEP_LAYER, mappings)
    )
    psum_scalar_s, psum_scalar = _timed(
        lambda: AcceleratorController.estimate_conv_psums_batch(
            controller, SWEEP_LAYER, mappings
        )
    )
    psum_batch_s, psum_batch = _timed(
        lambda: controller.estimate_conv_psums_batch(SWEEP_LAYER, mappings)
    )

    mapper = MrnaMapper(maeri_config(ms_size=MS_SIZE))
    mrna_scalar_s, mrna_scalar = _timed(
        lambda: mapper._score_conv_scalar(MRNA_LAYER)
    )
    mrna_batch_s, mrna_batch = _timed(
        lambda: mapper._score_conv_batch(MRNA_LAYER)
    )

    return {
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "sweep_identical": _canon(scalar_stats) == _canon(batch_stats),
        "psum_scalar_s": psum_scalar_s,
        "psum_batch_s": psum_batch_s,
        "psum_identical": psum_scalar == psum_batch,
        "mrna_scalar_s": mrna_scalar_s,
        "mrna_batch_s": mrna_batch_s,
        "mrna_identical": (
            mrna_scalar.mapping == mrna_batch.mapping
            and mrna_scalar.estimated_cycles == mrna_batch.estimated_cycles
        ),
    }


def test_batch_kernels(benchmark, results_dir):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    sweep_speedup = out["scalar_s"] / out["batch_s"]
    psum_speedup = out["psum_scalar_s"] / out["psum_batch_s"]
    mrna_speedup = out["mrna_scalar_s"] / out["mrna_batch_s"]
    record = {
        "benchmark": "kernels",
        "smoke": SMOKE,
        "sweep_mappings": SWEEP,
        "ms_size": MS_SIZE,
        "sweep_scalar_s": round(out["scalar_s"], 4),
        "sweep_batch_s": round(out["batch_s"], 4),
        "sweep_speedup": round(sweep_speedup, 2),
        "sweep_scalar_sims_per_s": round(SWEEP / out["scalar_s"]),
        "sweep_batch_sims_per_s": round(SWEEP / out["batch_s"]),
        "psum_scalar_s": round(out["psum_scalar_s"], 4),
        "psum_batch_s": round(out["psum_batch_s"], 4),
        "psum_speedup": round(psum_speedup, 2),
        "mrna_scalar_s": round(out["mrna_scalar_s"], 4),
        "mrna_batch_s": round(out["mrna_batch_s"], 4),
        "mrna_speedup": round(mrna_speedup, 2),
        "bit_identical": (
            out["sweep_identical"]
            and out["psum_identical"]
            and out["mrna_identical"]
        ),
    }
    (results_dir / "BENCH_kernels.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    lines = [
        f"MAERI ms_size={MS_SIZE}, {SWEEP}-mapping conv sweep "
        f"+ full mRNA enumeration ({MRNA_LAYER.C}x{MRNA_LAYER.K})",
        f"{'arm':<12}{'scalar s':>10}{'batch s':>10}{'speedup':>9}",
        f"{'run_conv':<12}{out['scalar_s']:>10.3f}{out['batch_s']:>10.3f}"
        f"{sweep_speedup:>8.1f}x",
        f"{'psum proxy':<12}{out['psum_scalar_s']:>10.3f}"
        f"{out['psum_batch_s']:>10.3f}{psum_speedup:>8.1f}x",
        f"{'mrna score':<12}{out['mrna_scalar_s']:>10.3f}"
        f"{out['mrna_batch_s']:>10.3f}{mrna_speedup:>8.1f}x",
        f"per-simulation throughput: {SWEEP / out['scalar_s']:,.0f}/s scalar "
        f"-> {SWEEP / out['batch_s']:,.0f}/s batch",
    ]
    emit(results_dir, "kernels", "\n".join(lines))

    # Correctness first: every arm bit-identical to its scalar loop.
    assert out["sweep_identical"]
    assert out["psum_identical"]
    assert out["mrna_identical"]
    if not SMOKE:
        assert sweep_speedup >= 5.0, f"sweep speedup only {sweep_speedup:.2f}x"
        assert mrna_speedup >= 2.0, f"mrna speedup only {mrna_speedup:.2f}x"
