"""Ablation: tuner comparison (grid vs random vs GA vs GBT surrogate).

Bifrost "leverages the tuners available in TVM such as grid search,
GATuner and XGBoost" (§VII); this bench compares their sample efficiency
on the AlexNet conv3 mapping space with cycles as the objective and a
fixed trial budget, reporting best-found cycles and the gap to the
exhaustive optimum.
"""

from conftest import emit

from repro.models import alexnet_conv_layers
from repro.stonne.config import maeri_config
from repro.tuner import (
    GATuner,
    GridSearchTuner,
    MaeriConvTask,
    RandomTuner,
    XGBTuner,
)

BUDGET = 160


def _make_task():
    return MaeriConvTask(
        alexnet_conv_layers()[2], maeri_config(), objective="cycles",
        max_options_per_tile=5,
    )


def _run():
    optimum = GridSearchTuner(_make_task()).tune(n_trials=10 ** 9).best_cost

    results = {}
    for name, make in [
        ("random", lambda t: RandomTuner(t, seed=7)),
        ("ga", lambda t: GATuner(t, seed=7)),
        ("xgb", lambda t: XGBTuner(t, seed=7, warmup=32, pool_size=256)),
    ]:
        best = make(_make_task()).tune(n_trials=BUDGET).best_cost
        results[name] = best
    return optimum, results


def test_ablation_tuners(benchmark, results_dir):
    optimum, results = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [f"exhaustive optimum: {int(optimum):,} cycles",
             f"{'tuner':<8}{'best cycles':>14}{'vs optimum':>12}  (budget {BUDGET})"]
    for name, best in results.items():
        lines.append(f"{name:<8}{int(best):>14,}{best / optimum:>11.2f}x")
    emit(results_dir, "ablation_tuners", "\n".join(lines))

    for name, best in results.items():
        assert best >= optimum, f"{name} beat the exhaustive optimum?!"
        assert best <= 40 * optimum, f"{name} found nothing useful"
    # The surrogate tuner should be competitive with random search.
    assert results["xgb"] <= results["random"] * 2.0
