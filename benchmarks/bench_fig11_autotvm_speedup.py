"""Figure 11: speedup of AutoTVM-tuned mappings over Bifrost's default.

The paper tunes every AlexNet layer on MAERI-128 with the XGBoost tuner,
psums as the objective, and early stopping; the tuned mappings are then
*simulated* and compared against the default (all-ones) mapping.

Paper shapes: conv layers average ~51x speedup (max 77x); FC layers ~11x.
"""

from conftest import emit

from repro.models import alexnet_conv_layers, alexnet_fc_layers
from repro.stonne.config import maeri_config
from repro.stonne.layer import ConvLayer
from repro.stonne.maeri import MaeriController
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.tuner import MaeriConvTask, MaeriFcTask, XGBTuner

CONFIG = maeri_config()


def tune_layer(layer):
    """AutoTVM module: GBT tuner on psums with early stopping (§VIII-B)."""
    if isinstance(layer, ConvLayer):
        task = MaeriConvTask(layer, CONFIG, objective="psums")
    else:
        task = MaeriFcTask(layer, CONFIG, objective="psums")
    tuner = XGBTuner(
        task, seed=0, warmup=32, pool_size=256,
        model_kwargs={"n_estimators": 20},
    )
    tuner.batch_size = 32
    result = tuner.tune(n_trials=400, early_stopping=120)
    return task.best_mapping(result.best_config)


def _run():
    controller = MaeriController(CONFIG)
    rows = []
    for layer in alexnet_conv_layers():
        tuned = tune_layer(layer)
        basic_cycles = controller.run_conv(layer, ConvMapping.basic()).cycles
        tuned_cycles = controller.run_conv(layer, tuned).cycles
        rows.append(("conv", layer.name, basic_cycles, tuned_cycles, tuned))
    for layer in alexnet_fc_layers():
        tuned = tune_layer(layer)
        basic_cycles = controller.run_fc(layer, FcMapping.basic()).cycles
        tuned_cycles = controller.run_fc(layer, tuned).cycles
        rows.append(("fc", layer.name, basic_cycles, tuned_cycles, tuned))
    return rows


def test_fig11_autotvm_speedup(benchmark, results_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [f"{'layer':<8}{'default':>16}{'tuned':>14}{'speedup':>9}  mapping"]
    for _, name, basic, tuned, mapping in rows:
        lines.append(
            f"{name:<8}{basic:>16,}{tuned:>14,}{basic / tuned:>8.1f}x  "
            f"{mapping.as_tuple()}"
        )
    conv = [(b, t) for kind, _, b, t, _ in rows if kind == "conv"]
    fc = [(b, t) for kind, _, b, t, _ in rows if kind == "fc"]
    conv_mean = sum(b / t for b, t in conv) / len(conv)
    conv_max = max(b / t for b, t in conv)
    fc_mean = sum(b / t for b, t in fc) / len(fc)
    lines.append(f"mean conv speedup: {conv_mean:.1f}x, max {conv_max:.1f}x "
                 "(paper: 51x mean, 77x max)")
    lines.append(f"mean fc speedup:   {fc_mean:.1f}x (paper: 11x)")
    emit(results_dir, "fig11_autotvm_speedup", "\n".join(lines))

    assert 25 <= conv_mean <= 90
    assert 7 <= fc_mean <= 16
    assert conv_mean > fc_mean  # the figure's qualitative ordering
