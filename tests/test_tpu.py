"""Behavioural tests for the TPU (output-stationary mesh) model."""

import pytest

from repro.errors import ConfigError
from repro.stonne.config import sigma_config, tpu_config
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer, ceil_div
from repro.stonne.params import DEFAULT_PARAMS
from repro.stonne.tpu import TpuController


class TestConstruction:
    def test_rejects_non_tpu_config(self):
        with pytest.raises(ConfigError, match="TPU"):
            TpuController(sigma_config())


class TestSystolicSchedule:
    def test_single_tile_formula(self):
        controller = TpuController(tpu_config(ms_rows=4, ms_cols=4))
        gemm = GemmLayer("g", M=4, K=32, N=4)
        stats = controller.run_gemm(gemm)
        per_tile = 32 + (4 + 4 - 2) + 1
        assert stats.cycles == DEFAULT_PARAMS.config_cycles + per_tile
        assert stats.iterations == 1

    def test_tiling_counts(self):
        controller = TpuController(tpu_config(ms_rows=8, ms_cols=8))
        gemm = GemmLayer("g", M=20, K=16, N=17)
        stats = controller.run_gemm(gemm)
        assert stats.iterations == ceil_div(20, 8) * ceil_div(17, 8)

    def test_bigger_mesh_fewer_cycles(self):
        gemm = GemmLayer("g", M=256, K=64, N=256)
        small = TpuController(tpu_config(4, 4)).run_gemm(gemm).cycles
        large = TpuController(tpu_config(16, 16)).run_gemm(gemm).cycles
        assert large < small

    def test_psums_are_temporal(self):
        controller = TpuController(tpu_config(4, 4))
        gemm = GemmLayer("g", M=4, K=32, N=4)
        assert controller.run_gemm(gemm).psums == 16 * 32


class TestLoweredLayers:
    def test_conv_lowered_to_gemm(self):
        controller = TpuController(tpu_config(8, 8))
        conv = ConvLayer("c", C=8, H=10, W=10, K=16, R=3, S=3)
        stats = controller.run_conv(conv)
        assert stats.layer_name == "c"
        assert stats.macs == conv.macs

    def test_fc_lowered_to_gemm(self):
        controller = TpuController(tpu_config(8, 8))
        fc = FcLayer("f", in_features=128, out_features=64)
        stats = controller.run_fc(fc)
        assert stats.macs == fc.macs

    def test_fixed_dataflow_ignores_mapping_knobs(self):
        """The TPU has no mapping: same layer, same cycles, always."""
        controller = TpuController(tpu_config(8, 8))
        fc = FcLayer("f", in_features=128, out_features=64)
        assert controller.run_fc(fc).cycles == controller.run_fc(fc).cycles
