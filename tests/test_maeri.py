"""Behavioural tests for the MAERI cycle model.

These encode the *qualitative* properties the paper's evaluation depends
on: mapping quality dominates performance, parallelism helps under good
mappings, bandwidth binds skewed mappings, and the psum counters have the
workload-specific structure §VIII-B observes.
"""

import pytest

from repro.errors import ConfigError, MappingError
from repro.stonne.config import maeri_config, sigma_config
from repro.stonne.layer import ConvLayer, FcLayer
from repro.stonne.maeri import MaeriController
from repro.stonne.mapping import ConvMapping, FcMapping


@pytest.fixture
def controller(maeri128):
    return MaeriController(maeri128)


@pytest.fixture
def conv():
    return ConvLayer("c", C=16, H=12, W=12, K=32, R=3, S=3, pad_h=1, pad_w=1)


@pytest.fixture
def fc():
    return FcLayer("f", in_features=512, out_features=256)


class TestConstruction:
    def test_rejects_non_maeri_config(self):
        with pytest.raises(ConfigError, match="MAERI"):
            MaeriController(sigma_config())


class TestConvCycles:
    def test_deterministic(self, controller, conv):
        mapping = ConvMapping(T_R=3, T_S=3, T_C=8)
        a = controller.run_conv(conv, mapping).cycles
        b = controller.run_conv(conv, mapping).cycles
        assert a == b

    def test_basic_mapping_is_much_slower(self, controller, conv):
        basic = controller.run_conv(conv, ConvMapping.basic()).cycles
        good = controller.run_conv(conv, ConvMapping(T_R=3, T_S=3, T_C=8)).cycles
        assert basic > 10 * good

    def test_basic_mapping_cycles_track_macs(self, controller, conv):
        """All-ones mapping issues one MAC per iteration, hazard-stalled."""
        stats = controller.run_conv(conv, ConvMapping.basic())
        assert stats.iterations == conv.macs
        assert stats.cycles >= conv.macs

    def test_more_multipliers_help_with_good_mappings(self, conv):
        small = MaeriController(maeri_config(ms_size=32))
        large = MaeriController(maeri_config(ms_size=128))
        cycles_small = small.run_conv(conv, ConvMapping(T_R=3, T_S=3, T_C=3)).cycles
        cycles_large = large.run_conv(conv, ConvMapping(T_R=3, T_S=3, T_C=8)).cycles
        assert cycles_large < cycles_small

    def test_mapping_must_fit(self, controller, conv):
        with pytest.raises(MappingError):
            controller.run_conv(conv, ConvMapping(T_R=3, T_S=3, T_C=16))

    def test_utilization_bounded(self, controller, conv):
        stats = controller.run_conv(conv, ConvMapping(T_R=3, T_S=3, T_C=8))
        assert 0.0 < stats.utilization <= 1.0

    def test_stats_traffic_nonzero(self, controller, conv):
        stats = controller.run_conv(conv, ConvMapping(T_R=3, T_S=3, T_C=4))
        assert stats.traffic.weights_distributed > 0
        assert stats.traffic.inputs_distributed > 0
        assert stats.traffic.outputs_written == conv.output_elements

    def test_halo_reuse_cheaper_than_disjoint_windows(self, controller):
        """Stride-1 output tiling shares input halos; the per-iteration
        input count must reflect the union window, not tiles x window."""
        layer = ConvLayer("h", C=1, H=16, W=16, K=1, R=3, S=3)
        mapping = ConvMapping(T_R=3, T_S=3, T_X=2, T_Y=2)
        profile = controller._conv_profile(layer, mapping)
        # union window is 4x4=16, not 4 disjoint windows x 9 = 36
        assert profile.unique_inputs == 16


class TestFcCycles:
    def test_bandwidth_binds_wide_output_mappings(self, controller, fc):
        """T_S=128,T_K=1 saturates the reduction port (occupancy 3)."""
        wide = controller.run_fc(fc, FcMapping(T_S=128, T_K=1))
        balanced = controller.run_fc(fc, FcMapping(T_S=16, T_K=8))
        assert balanced.cycles < wide.cycles

    def test_basic_fc_cycles(self, controller, fc):
        stats = controller.run_fc(fc, FcMapping.basic())
        assert stats.iterations == fc.macs

    def test_full_spatial_reduction_no_hazard(self, controller):
        """When T_K covers the whole reduction there are no partials."""
        layer = FcLayer("g", in_features=64, out_features=8)
        stats = controller.run_fc(layer, FcMapping(T_S=2, T_K=64))
        assert stats.phase_cycles["steady"] == stats.iterations * max(
            1, -(-(2 * 64 + 64) // controller.config.dn_bw)
        )


class TestPsumCounters:
    def test_conv_psums_count_accumulation_writebacks(self, controller, conv):
        """conv psums = outputs x temporal folds + per-iteration flushes."""
        mapping = ConvMapping(T_R=3, T_S=3, T_C=4)  # C folds = 4
        psums = controller.estimate_conv_psums(conv, mapping)
        assert psums == conv.output_elements * 4 + mapping.iterations(conv)

    def test_conv_psums_minimized_by_spatial_reduction(self, controller, conv):
        spatial = controller.estimate_conv_psums(conv, ConvMapping(T_R=3, T_S=3, T_C=8))
        parallel = controller.estimate_conv_psums(conv, ConvMapping(T_K=8, T_X=4, T_Y=4))
        assert spatial < parallel

    def test_fc_psums_minimized_by_tk_one(self, controller, fc):
        """The Table VI structure: psums push T_K down and T_S up."""
        tk1 = controller.estimate_fc_psums(fc, FcMapping(T_S=128, T_K=1))
        tk8 = controller.estimate_fc_psums(fc, FcMapping(T_S=16, T_K=8))
        tk128 = controller.estimate_fc_psums(fc, FcMapping(T_S=1, T_K=128))
        assert tk1 < tk8 < tk128

    def test_fc_psums_decrease_with_ts(self, controller, fc):
        narrow = controller.estimate_fc_psums(fc, FcMapping(T_S=8, T_K=1))
        wide = controller.estimate_fc_psums(fc, FcMapping(T_S=128, T_K=1))
        assert wide < narrow

    def test_psum_estimate_matches_simulation(self, controller, conv, fc):
        conv_mapping = ConvMapping(T_R=3, T_S=3, T_C=2)
        fc_mapping = FcMapping(T_S=8, T_K=8)
        assert (
            controller.estimate_conv_psums(conv, conv_mapping)
            == controller.run_conv(conv, conv_mapping).psums
        )
        assert (
            controller.estimate_fc_psums(fc, fc_mapping)
            == controller.run_fc(fc, fc_mapping).psums
        )


class TestBandwidthSensitivity:
    def test_wider_dn_never_hurts(self, conv):
        mapping = ConvMapping(T_R=3, T_S=3, T_C=8)
        narrow = MaeriController(maeri_config(dn_bw=8)).run_conv(conv, mapping)
        wide = MaeriController(maeri_config(dn_bw=64)).run_conv(conv, mapping)
        assert wide.cycles <= narrow.cycles

    def test_wider_rn_never_hurts(self, fc):
        mapping = FcMapping(T_S=64, T_K=2)
        narrow = MaeriController(maeri_config(rn_bw=8)).run_fc(fc, mapping)
        wide = MaeriController(maeri_config(rn_bw=64)).run_fc(fc, mapping)
        assert wide.cycles <= narrow.cycles
