"""Tests for the workload zoo registry and its modern entries."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.session import Session, SessionConfig
from repro.stonne.layer import ConvLayer, FcLayer
from repro.sweep import SweepPlan
from repro.zoo import (
    register_model,
    unregister_model,
    zoo_entry,
    zoo_layers,
    zoo_models,
)
from repro.zoo.modern import transformer_encoder_layers

MODERN = ("transformer", "depthwise_sep", "grouped_conv", "dilated_conv",
          "nhwc_conv")


@pytest.fixture
def scratch_model():
    """A registration slot cleaned up after the test."""
    name = "test_zoo/scratch"
    yield name
    unregister_model(name)


class TestRegistry:
    def test_classics_and_moderns_are_registered(self):
        names = zoo_models()
        for name in ("alexnet", "lenet", "vgg_small", "mlp") + MODERN:
            assert name in names

    def test_classics_come_first(self):
        assert zoo_models()[:4] == ("alexnet", "lenet", "vgg_small", "mlp")

    def test_tag_filter(self):
        assert set(zoo_models(tag="classic")) == {
            "alexnet", "lenet", "vgg_small", "mlp"
        }
        assert set(MODERN) <= set(zoo_models(tag="modern"))

    def test_unknown_name_lists_the_zoo(self):
        with pytest.raises(ReproError, match="unknown model 'nope'"):
            zoo_layers("nope")

    def test_register_direct_and_decorator(self, scratch_model):
        register_model(scratch_model, lambda: [FcLayer("l", 4, 4)])
        assert scratch_model in zoo_models()
        unregister_model(scratch_model)

        @register_model(scratch_model, description="via decorator")
        def factory():
            return [FcLayer("l", 4, 4)]

        assert zoo_entry(scratch_model).description == "via decorator"

    def test_duplicate_requires_replace(self, scratch_model):
        register_model(scratch_model, lambda: [FcLayer("a", 4, 4)])
        with pytest.raises(ReproError, match="already registered"):
            register_model(scratch_model, lambda: [FcLayer("b", 4, 4)])
        register_model(
            scratch_model, lambda: [FcLayer("b", 4, 4)], replace=True
        )
        assert zoo_layers(scratch_model)[0].name == "b"

    def test_empty_factory_raises(self, scratch_model):
        register_model(scratch_model, lambda: [])
        with pytest.raises(ReproError, match="no layers"):
            zoo_layers(scratch_model)

    def test_factories_return_fresh_lists(self):
        first = zoo_layers("mlp")
        second = zoo_layers("mlp")
        assert first is not second

    def test_bad_name_rejected(self):
        with pytest.raises(ReproError, match="non-empty string"):
            register_model("", lambda: [FcLayer("l", 4, 4)])


class TestModernEntries:
    def test_transformer_block_structure(self):
        layers = transformer_encoder_layers(
            d_model=64, heads=4, seq_len=16, ffn_dim=256
        )
        # QKV + output projections, 2 GEMMs per head, FFN pair.
        assert len(layers) == 4 + 2 * 4 + 2
        assert all(isinstance(layer, FcLayer) for layer in layers)
        by_name = {layer.name: layer for layer in layers}
        assert by_name["enc.q_proj"].in_features == 64
        assert by_name["enc.h0.score"].out_features == 16  # seq_len
        assert by_name["enc.h0.score"].in_features == 16  # d_head
        assert by_name["enc.h0.value"].in_features == 16  # seq_len
        assert by_name["enc.ffn1"].out_features == 256
        assert all(layer.batch == 16 for layer in layers)

    def test_transformer_rejects_indivisible_heads(self):
        with pytest.raises(ValueError, match="heads"):
            transformer_encoder_layers(d_model=64, heads=5)

    def test_conv_variant_entries_carry_their_knobs(self):
        depthwise = zoo_layers("depthwise_sep")
        assert depthwise[0].G == depthwise[0].C  # one group per channel
        assert depthwise[1].R == 1 and depthwise[1].S == 1  # pointwise

        grouped = zoo_layers("grouped_conv")
        assert any(layer.G > 1 for layer in grouped
                   if isinstance(layer, ConvLayer))

        dilated = zoo_layers("dilated_conv")
        assert any(layer.dil_h > 1 for layer in dilated
                   if isinstance(layer, ConvLayer))

        nhwc = zoo_layers("nhwc_conv")
        assert any(layer.layout == "NHWC" for layer in nhwc
                   if isinstance(layer, ConvLayer))


class TestZooRunsEverywhere:
    @pytest.mark.parametrize("arch", ["maeri", "sigma", "tpu", "magma"])
    def test_every_model_runs_on_every_controller(self, arch):
        """The zoo contract: every built-in name is runnable, with
        finite positive cycle counts, on all four controllers.  (Scoped
        by tag: other tests may leave fuzz-generated registrations
        behind, and those can carry raw GEMMs MAERI refuses by design.)"""
        builtin = zoo_models(tag="classic") + zoo_models(tag="modern")
        config = SessionConfig.resolve(env=False, arch=arch)
        with Session(config) as session:
            for model in builtin:
                report = session.run(model)
                assert report.total_cycles > 0, f"{model} on {arch}"
                assert len(report.layer_stats) == len(zoo_layers(model))

    def test_modern_models_sweep_like_classics(self):
        config = SessionConfig.resolve(env=False)
        plan = SweepPlan.matrix(
            config,
            models=["transformer", "dilated_conv"],
            axes={"architecture.arch": ["sigma", "tpu"]},
        )
        with Session(config) as session:
            report = session.sweep(plan)
        assert len(report) == 4
        assert all(result.metric("total_cycles") > 0 for result in report)

    def test_plan_matrix_rejects_unknown_models(self):
        config = SessionConfig.resolve(env=False)
        with pytest.raises(Exception, match="nope"):
            SweepPlan.matrix(config, models=["nope"])

    def test_late_registration_is_sweepable(self, scratch_model):
        register_model(scratch_model, lambda: [FcLayer("l", 8, 8)])
        config = SessionConfig.resolve(env=False)
        plan = SweepPlan.matrix(config, models=[scratch_model])
        with Session(config) as session:
            report = session.sweep(plan)
        assert len(report) == 1

    def test_functional_run_matches_numpy_reference(self, rng):
        """The functional datapath executes the zoo's modern conv
        variants for real: Session.run with engine.functional must
        succeed on every modern entry (parity itself is pinned
        per-variant in test_conv_variants.py)."""
        config = SessionConfig.resolve(env=False, functional=True)
        with Session(config) as session:
            for model in MODERN:
                report = session.run(model)
                assert report.total_cycles > 0
