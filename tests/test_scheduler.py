"""Saturation scheduler tests.

Three layers of guarantees:

* :class:`~repro.engine.scheduler.WorkQueue` unit tests pin the steal /
  re-split / speculation counters *exactly* under an injectable fake
  clock — no timing assumptions;
* :func:`~repro.engine.scheduler.run_plan_groups` integration tests
  prove the pull path bit-identical to ``--executor serial`` on the
  thread and process backends, including under injected slow workers
  and straggler re-splits;
* tuner-level tests prove speculative GA evaluation can never perturb
  the search trajectory (RNG snapshot) or the chosen best config.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro.engine.backends as backends_mod
from repro.engine import EvalRequest, EvaluationEngine, evaluation_key
from repro.engine.backends import ThreadBackend
from repro.engine.scheduler import (
    Chunk,
    WorkQueue,
    _auto_chunk_size,
    _interleave,
    backend_counters,
    run_plan_groups,
    zero_counters,
)
from repro.errors import SimulationError
from repro.stonne.config import sigma_config
from repro.stonne.layer import FcLayer
from repro.tuner import CallableTask, GATuner, MaeriFcTask
from repro.tuner.space import ConfigSpace


class FakeClock:
    """A manually-advanced monotonic clock for exact counter tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _chunk(slots, items, home=None, priority=0, group=0):
    return Chunk(
        engine=None, group=group, slots=slots, items=items,
        home=home, priority=priority,
    )


def _layers(count, width=8):
    """``count`` distinct FC layers (distinct shapes -> distinct keys)."""
    return [
        FcLayer(f"fc{i}", in_features=width + i, out_features=width)
        for i in range(count)
    ]


class TestWorkQueue:
    def test_steal_counting_is_exact(self):
        queue = WorkQueue(1, [3], clock=FakeClock())
        chunks = [
            _chunk([i], [(f"k{i}", None)], home=i % 2) for i in range(3)
        ]
        for chunk in chunks:
            queue.add(chunk)
        # Slot 1 pulls chunk 0 (home 0): a steal.  Slot 0 pulls chunk 1
        # (home 1): a steal.  Slot 0 pulls chunk 2 (home 0): not one.
        assert queue.pull(1) is chunks[0]
        assert queue.counters["steals"] == 1
        assert queue.pull(0) is chunks[1]
        assert queue.counters["steals"] == 2
        assert queue.pull(0) is chunks[2]
        assert queue.counters["steals"] == 2
        assert queue.counters["chunks_pulled"] == 3
        for i, chunk in enumerate(chunks):
            queue.complete(chunk, [(f"k{i}", f"r{i}")])
        assert queue.pull(0) is None
        assert queue.pull(1) is None
        assert queue.results[0] == [("k0", "r0"), ("k1", "r1"), ("k2", "r2")]
        assert queue.counters["resplits"] == 0
        assert queue.counters["idle_time_s"] == 0

    def test_straggler_resplit_first_writer_wins(self):
        clock = FakeClock()
        queue = WorkQueue(1, [4], clock=clock, steal_deadline=5.0)
        big = _chunk([0, 1, 2], [("a", 1), ("b", 2), ("c", 3)], home=0)
        small = _chunk([3], [("d", 4)], home=1)
        queue.add(big)
        queue.add(small)
        assert queue.pull(0) is big
        assert queue.pull(1) is small
        queue.complete(small, [("d", "rd")])
        # Under the deadline nothing is re-split; past it, the idle slot
        # clones the straggler's unfilled items.
        assert queue._make_resplit(1) is None
        clock.advance(6.0)
        duplicate = queue.pull(1)
        assert duplicate.resplit_of is big
        assert duplicate.slots == [0, 1, 2]
        assert [key for key, _ in duplicate.items] == ["a", "b", "c"]
        assert queue.counters["resplits"] == 1
        # Each original re-splits at most once, and duplicates never do.
        assert big.resplit_issued
        assert queue._make_resplit(2) is None
        # The duplicate finishes first; the straggler's late (identical
        # in production, marked here) results must not overwrite.
        queue.complete(duplicate, [("a", "ra"), ("b", "rb"), ("c", "rc")])
        queue.complete(big, [("a", "XX"), ("b", "XX"), ("c", "XX")])
        assert queue.results[0] == [
            ("a", "ra"), ("b", "rb"), ("c", "rc"), ("d", "rd"),
        ]
        assert queue.pull(0) is None

    def test_resplit_skips_already_filled_items(self):
        clock = FakeClock()
        queue = WorkQueue(1, [3], clock=clock, steal_deadline=5.0)
        big = _chunk([0, 1, 2], [("a", 1), ("b", 2), ("c", 3)], home=0)
        queue.add(big)
        assert queue.pull(0) is big
        # Simulate position 1 having been served already (by a racing
        # duplicate in production): the re-split must exclude it.
        queue._filled[0][1] = True
        queue._pending_slots -= 1
        clock.advance(6.0)
        duplicate = queue.pull(1)
        assert duplicate.slots == [0, 2]
        assert [key for key, _ in duplicate.items] == ["a", "c"]

    def test_speculative_lane_and_accounting(self):
        queue = WorkQueue(1, [1], clock=FakeClock())
        normal = _chunk([0], [("k", None)], home=0)
        spec = _chunk(None, [("s", None)], priority=1, group=None)
        queue.add(spec)
        queue.add(normal)
        # Normal work is preferred even though speculation queued first.
        assert queue.pull(0) is normal
        # An idle slot with no normal work takes the speculative chunk.
        assert queue.pull(1) is spec
        assert queue.counters["speculative_pulled"] == 1
        queue.complete(spec, [("s", "sres")])
        assert queue.spec_results == [("s", "sres")]
        assert queue.results[0] == [None]  # spec never touches plans
        queue.complete(normal, [("k", "r")])
        assert queue.pull(0) is None

    def test_speculation_cancelled_when_normal_work_finishes(self):
        queue = WorkQueue(1, [1], clock=FakeClock())
        normal = _chunk([0], [("k", None)], home=0)
        spec = _chunk(None, [("s", None)], priority=1, group=None)
        queue.add(normal)
        queue.add(spec)
        assert queue.pull(0) is normal
        queue.complete(normal, [("k", "r")])
        assert queue.pull(0) is None
        assert queue.counters["speculative_cancelled"] == 1
        assert queue.counters["speculative_pulled"] == 0
        assert queue.spec_results == []

    def test_idle_time_is_exact_under_fake_clock(self):
        clock = FakeClock()
        queue = WorkQueue(1, [1], clock=clock)
        pulled = []
        puller = threading.Thread(target=lambda: pulled.append(queue.pull(0)))
        puller.start()
        # Wait until the puller is actually parked in the queue's wait
        # loop (its idle timestamp is taken at clock 0.0), then advance.
        for _ in range(1000):
            if queue._cond._waiters:
                break
            time.sleep(0.005)
        clock.advance(1.5)
        chunk = _chunk([0], [("k", None)], home=0)
        queue.add(chunk)
        puller.join(timeout=10)
        assert pulled == [chunk]
        assert queue.counters["idle_time_s"] == 1.5

    def test_zero_counters_shape(self):
        counters = zero_counters()
        assert counters["idle_time_s"] == 0.0
        assert set(counters) == {
            "chunks_pulled", "steals", "resplits", "speculative_pulled",
            "speculative_cancelled", "speculative_simulations",
            "idle_time_s",
        }


class TestChunking:
    def test_auto_chunk_size_targets_chunks_per_slot(self):
        assert _auto_chunk_size(12, 4) == 1     # fewer items than target
        assert _auto_chunk_size(256, 2) == 32   # 256 / (2*4) = 32
        assert _auto_chunk_size(10_000, 2) == 32  # capped
        assert _auto_chunk_size(1, 8) == 1

    def test_interleave_round_robins_groups(self):
        a = [_chunk([i], [(f"a{i}", None)]) for i in range(3)]
        b = [_chunk([0], [("b0", None)], group=1)]
        assert _interleave([a, b]) == [a[0], b[0], a[1], a[2]]


class TestRunPlanGroups:
    def _serial_reference(self, config, layers):
        engine = EvaluationEngine(config)
        stats = engine.evaluate_many([EvalRequest(l) for l in layers])
        return [s.to_dict() for s in stats]

    def test_thread_pull_bit_identical_to_serial(self):
        layers = _layers(10)
        config = sigma_config()
        expected = self._serial_reference(config, layers)
        engine = EvaluationEngine(config, executor="thread", max_workers=4)
        plan = engine.plan_many([EvalRequest(l) for l in layers])
        report = run_plan_groups([(engine, [plan])])
        assert report["mode"] == "pull"
        assert [s.to_dict() for s in plan.results] == expected
        # 10 distinct items, auto chunk size 1 -> 10 normal pulls (plus
        # any re-splits, which the 5 s default deadline rules out here).
        assert report["chunks_pulled"] == 10
        assert report["resplits"] == 0
        assert engine.num_simulations == 10
        # The backend accumulated this run's counters.
        assert backend_counters(engine.backend)["chunks_pulled"] == 10

    def test_process_pull_bit_identical_to_serial(self):
        layers = _layers(6)
        config = sigma_config()
        expected = self._serial_reference(config, layers)
        engine = EvaluationEngine(config, executor="process", max_workers=2)
        try:
            plan = engine.plan_many([EvalRequest(l) for l in layers])
            report = run_plan_groups([(engine, [plan])])
            assert report["mode"] == "pull"
            assert [s.to_dict() for s in plan.results] == expected
        finally:
            engine.backend.close()

    def test_engine_groups_share_one_queue(self):
        backend = ThreadBackend(max_workers=4)
        config_a = sigma_config()
        config_b = sigma_config(ms_size=64)
        layers_a = _layers(5)
        layers_b = _layers(4, width=16)
        expected_a = self._serial_reference(config_a, layers_a)
        expected_b = self._serial_reference(config_b, layers_b)
        try:
            engine_a = EvaluationEngine(
                config_a, executor=backend, max_workers=4
            )
            engine_b = EvaluationEngine(
                config_b, executor=backend, max_workers=4
            )
            plan_a = engine_a.plan_many([EvalRequest(l) for l in layers_a])
            plan_b = engine_b.plan_many([EvalRequest(l) for l in layers_b])
            report = run_plan_groups(
                [(engine_a, [plan_a]), (engine_b, [plan_b])]
            )
            assert report["mode"] == "pull"
            assert [s.to_dict() for s in plan_a.results] == expected_a
            assert [s.to_dict() for s in plan_b.results] == expected_b
            assert report["chunks_pulled"] == 9
        finally:
            backend.close()

    def test_foreign_plan_rejected(self):
        engine_a = EvaluationEngine(sigma_config())
        engine_b = EvaluationEngine(sigma_config())
        plan = engine_a.plan_many([EvalRequest(_layers(1)[0])])
        with pytest.raises(SimulationError):
            run_plan_groups([(engine_b, [plan])])

    def test_serial_backend_stays_static(self):
        layers = _layers(4)
        config = sigma_config()
        expected = self._serial_reference(config, layers)
        engine = EvaluationEngine(config, executor="serial")
        plan = engine.plan_many([EvalRequest(l) for l in layers])
        report = run_plan_groups([(engine, [plan])])
        assert report["mode"] == "static"
        assert report["chunks_pulled"] == 0
        assert [s.to_dict() for s in plan.results] == expected

    def test_slow_worker_gets_its_tail_stolen(self, monkeypatch):
        real = backends_mod.simulate_layer

        def slow_fc0(controller, layer, mapping, functional):
            if layer.name == "fc0":
                time.sleep(0.3)
            return real(controller, layer, mapping, functional)

        layers = _layers(8)
        config = sigma_config()
        expected = self._serial_reference(config, layers)
        monkeypatch.setattr(backends_mod, "simulate_layer", slow_fc0)
        engine = EvaluationEngine(
            config, executor="thread", max_workers=2, chunk_size=1
        )
        plan = engine.plan_many([EvalRequest(l) for l in layers])
        report = run_plan_groups([(engine, [plan])])
        # While one slot holds fc0 for 0.3 s the other drains the rest,
        # including chunks whose static home was the busy slot.
        assert report["mode"] == "pull"
        assert report["steals"] >= 1
        assert [s.to_dict() for s in plan.results] == expected

    def test_straggler_resplit_end_to_end(self, monkeypatch):
        real = backends_mod.simulate_layer

        def slow_fc0(controller, layer, mapping, functional):
            if layer.name == "fc0":
                time.sleep(0.5)
            return real(controller, layer, mapping, functional)

        layers = _layers(8)
        config = sigma_config()
        expected = self._serial_reference(config, layers)
        monkeypatch.setattr(backends_mod, "simulate_layer", slow_fc0)
        engine = EvaluationEngine(
            config, executor="thread", max_workers=2,
            chunk_size=2, steal_deadline=0.05,
        )
        plan = engine.plan_many([EvalRequest(l) for l in layers])
        report = run_plan_groups([(engine, [plan])])
        # The idle slot re-splits the straggler chunk [fc0, fc1] and
        # races it; duplicated items must not double-count simulations.
        assert report["resplits"] >= 1
        assert [s.to_dict() for s in plan.results] == expected
        assert engine.num_simulations == 8

    def test_error_isolation_matches_run_plans(self, monkeypatch):
        real = backends_mod.simulate_layer

        def failing_fc3(controller, layer, mapping, functional):
            if layer.name == "fc3":
                raise ValueError("injected failure")
            return real(controller, layer, mapping, functional)

        layers = _layers(6)
        monkeypatch.setattr(backends_mod, "simulate_layer", failing_fc3)
        engine = EvaluationEngine(
            sigma_config(), executor="thread", max_workers=2
        )
        plan = engine.plan_many([EvalRequest(l) for l in layers])
        report = run_plan_groups([(engine, [plan])], return_errors=True)
        assert report["mode"] == "pull"
        assert isinstance(plan.results[3], ValueError)
        assert all(
            not isinstance(result, Exception)
            for i, result in enumerate(plan.results) if i != 3
        )
        # Without return_errors the first error propagates.
        engine_b = EvaluationEngine(
            sigma_config(), executor="thread", max_workers=2
        )
        plan_b = engine_b.plan_many([EvalRequest(l) for l in layers])
        with pytest.raises(ValueError, match="injected failure"):
            run_plan_groups([(engine_b, [plan_b])])


class TestSpeculativeExecution:
    def test_speculation_warms_cache_without_counting(self, monkeypatch):
        real = backends_mod.simulate_layer

        def slow_fc0(controller, layer, mapping, functional):
            if layer.name == "fc0":
                time.sleep(0.3)
            return real(controller, layer, mapping, functional)

        monkeypatch.setattr(backends_mod, "simulate_layer", slow_fc0)
        layers = _layers(8)
        spec_layers = [
            FcLayer(f"spec{i}", in_features=32 + i, out_features=32)
            for i in range(2)
        ]
        engine = EvaluationEngine(
            sigma_config(), executor="thread", max_workers=2, chunk_size=1
        )
        plan = engine.plan_many([EvalRequest(l) for l in layers])
        report = run_plan_groups(
            [(engine, [plan])],
            speculative=[EvalRequest(l) for l in spec_layers],
        )
        # While fc0 blocks one slot, the other runs out of normal work
        # and takes the speculative chunk.
        assert report["speculative_pulled"] >= 1
        assert report["speculative_simulations"] == 2
        # Speculative results warm the cache but never count as engine
        # simulations ...
        assert engine.num_simulations == 8
        before = engine.num_simulations
        for layer in spec_layers:
            engine.evaluate(layer)
        # ... so evaluating the speculated layers is all cache hits.
        assert engine.num_simulations == before

    def test_speculation_always_resolves_pulled_or_cancelled(self):
        layers = _layers(2)
        engine = EvaluationEngine(
            sigma_config(), executor="thread", max_workers=2, chunk_size=1
        )
        plan = engine.plan_many([EvalRequest(l) for l in layers])
        report = run_plan_groups(
            [(engine, [plan])],
            speculative=[EvalRequest(_layers(1, width=32)[0])],
        )
        # With as many items as slots the single speculative chunk is
        # either pulled by a slot that finished early or cancelled when
        # normal work completes — never lost.
        assert (
            report["speculative_pulled"] + report["speculative_cancelled"]
            == 1
        )

    def test_speculative_duplicates_of_pending_work_are_dropped(self):
        layers = _layers(4)
        engine = EvaluationEngine(
            sigma_config(), executor="thread", max_workers=2
        )
        plan = engine.plan_many([EvalRequest(l) for l in layers])
        report = run_plan_groups(
            [(engine, [plan])],
            # Same keys as the pending work: nothing to speculate.
            speculative=[EvalRequest(l) for l in layers],
        )
        assert report["speculative_pulled"] == 0
        assert report["speculative_simulations"] == 0


def _toy_task():
    space = ConfigSpace()
    space.define_knob("a", list(range(8)))
    space.define_knob("b", list(range(8)))
    return CallableTask(space, lambda c: abs(c["a"] * 8 + c["b"] - 37))


class TestGaSpeculation:
    def test_speculate_never_advances_the_rng(self):
        a, b = GATuner(_toy_task(), seed=7), GATuner(_toy_task(), seed=7)
        for _ in range(3):
            pa, pb = a.propose(8), b.propose(8)
            assert pa == pb
            costs = [float(i) for i in range(len(pa))]
            a._seen.update(pa)
            b._seen.update(pb)
            a.update(pa, costs)
            b.update(pb, costs)
            # Only tuner ``a`` speculates; its trajectory must not move.
            assert a.speculate(8) == a.speculate(8)

    def test_speculate_empty_before_first_generation(self):
        tuner = GATuner(_toy_task(), seed=1)
        assert tuner.speculate(8) == []

    def test_speculation_cannot_change_the_best_config(self):
        baseline = GATuner(_toy_task(), seed=11).tune(n_trials=48)
        speculating = GATuner(_toy_task(), seed=11)
        speculating.speculation = True
        result = speculating.tune(n_trials=48)
        assert result.best_cost == baseline.best_cost
        assert result.best_config == baseline.best_config
        assert [t.index for t in result.records.trials] == [
            t.index for t in baseline.records.trials
        ]

    def test_engine_backed_speculation_is_bit_identical(self, small_fc):
        config = sigma_config()
        serial_engine = EvaluationEngine(config)
        serial_task = MaeriFcTask(
            small_fc, config, objective="cycles", engine=serial_engine
        )
        baseline = GATuner(serial_task, seed=3).tune(n_trials=32)

        pull_engine = EvaluationEngine(
            config, executor="thread", max_workers=2
        )
        pull_task = MaeriFcTask(
            small_fc, config, objective="cycles", engine=pull_engine
        )
        tuner = GATuner(pull_task, seed=3)
        tuner.speculation = True
        result = tuner.tune(n_trials=32)
        assert result.best_cost == baseline.best_cost
        assert result.best_config == baseline.best_config
        assert [t.cost for t in result.records.trials] == [
            t.cost for t in baseline.records.trials
        ]


class _DuckCache:
    """A minimal cache that returns its *stored* records (no copies) —
    the sharing-hostile shape the engine must tolerate."""

    def __init__(self) -> None:
        self.store = {}
        self.hits = 0
        self.misses = 0

    def get(self, key):
        record = self.store.get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def put(self, key, stats) -> None:
        self.store[key] = stats

    def __contains__(self, key) -> bool:
        return key in self.store


class TestPlanManyAliasing:
    def test_plan_hit_never_renames_the_stored_record(self):
        cache = _DuckCache()
        engine = EvaluationEngine(sigma_config(), cache=cache)
        first = FcLayer("first", in_features=16, out_features=8)
        engine.evaluate(first)
        key = evaluation_key(engine.fingerprint, first, None)
        assert cache.store[key].layer_name == "first"
        # A cache hit under another name must be attributed on a copy,
        # not by renaming the cache's own record in place.
        renamed = FcLayer("renamed", in_features=16, out_features=8)
        plan = engine.plan_many([EvalRequest(renamed)])
        assert plan.num_pending == 0
        assert plan.results[0].layer_name == "renamed"
        assert cache.store[key].layer_name == "first"

    def test_evaluate_hit_never_renames_the_stored_record(self):
        cache = _DuckCache()
        engine = EvaluationEngine(sigma_config(), cache=cache)
        first = FcLayer("first", in_features=16, out_features=8)
        engine.evaluate(first)
        key = evaluation_key(engine.fingerprint, first, None)
        hit = engine.evaluate(FcLayer("renamed", in_features=16, out_features=8))
        assert hit.layer_name == "renamed"
        assert cache.store[key].layer_name == "first"
