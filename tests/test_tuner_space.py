"""Tests for tuning config spaces and knobs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TuningError
from repro.stonne.layer import ConvLayer, FcLayer
from repro.tuner import (
    ConfigSpace,
    config_to_conv_mapping,
    config_to_fc_mapping,
    conv_mapping_space,
    fc_mapping_space,
    hardware_space,
)


class TestConfigSpace:
    def test_define_and_size(self):
        space = ConfigSpace()
        space.define_knob("a", [1, 2, 3])
        space.define_knob("b", ["x", "y"])
        assert space.raw_size == 6

    def test_duplicate_knob_rejected(self):
        space = ConfigSpace()
        space.define_knob("a", [1])
        with pytest.raises(TuningError, match="already defined"):
            space.define_knob("a", [2])

    def test_empty_values_rejected(self):
        with pytest.raises(TuningError, match="at least one"):
            ConfigSpace().define_knob("a", [])

    def test_index_roundtrip_exhaustive(self):
        space = ConfigSpace()
        space.define_knob("a", [1, 2, 3])
        space.define_knob("b", [10, 20])
        space.define_knob("c", ["p", "q"])
        for index in range(space.raw_size):
            assert space.index_of(space.config_at(index)) == index

    def test_out_of_range_index(self):
        space = ConfigSpace()
        space.define_knob("a", [1, 2])
        with pytest.raises(TuningError, match="out of range"):
            space.config_at(2)

    def test_index_of_unknown_config(self):
        space = ConfigSpace()
        space.define_knob("a", [1, 2])
        with pytest.raises(TuningError, match="not addressable"):
            space.index_of({"a": 5})

    def test_constraints_filter_valid_indices(self):
        space = ConfigSpace()
        space.define_knob("a", [1, 2, 3, 4])
        space.add_constraint(lambda cfg: cfg["a"] % 2 == 0)
        valid = [space.config_at(i)["a"] for i in space.valid_indices()]
        assert valid == [2, 4]
        assert space.valid_size() == 2


class TestMappingSpaces:
    @pytest.fixture
    def conv(self):
        return ConvLayer("c", C=16, H=12, W=12, K=32, R=3, S=3)

    @pytest.fixture
    def fc(self):
        return FcLayer("f", in_features=256, out_features=128)

    def test_conv_space_knobs(self, conv):
        space = conv_mapping_space(conv, ms_size=128)
        assert set(space.knobs) == {"T_R", "T_S", "T_C", "T_K", "T_X", "T_Y"}
        # All valid configs respect the capacity constraint.
        for index in list(space.valid_indices())[:200]:
            mapping = config_to_conv_mapping(space.config_at(index))
            assert mapping.multipliers_used <= 128

    def test_conv_space_subsampling(self, conv):
        small = conv_mapping_space(conv, 128, max_options_per_tile=3)
        large = conv_mapping_space(conv, 128, max_options_per_tile=10)
        assert small.raw_size < large.raw_size
        # bounds always present so full-coverage mappings stay reachable
        assert conv.R in small.knobs["T_R"]
        assert 1 in small.knobs["T_C"]

    def test_fc_space_contains_paper_mappings(self, fc):
        space = fc_mapping_space(fc, ms_size=128)
        for t_s, t_k in [(128, 1), (16, 8), (1, 128)]:
            index = space.index_of({"T_S": t_s, "T_K": t_k, "T_N": 1})
            assert space.is_valid(space.config_at(index))

    def test_fc_capacity_constraint(self, fc):
        space = fc_mapping_space(fc, ms_size=64)
        assert not space.is_valid({"T_S": 64, "T_K": 2, "T_N": 1})
        assert space.is_valid({"T_S": 32, "T_K": 2, "T_N": 1})

    def test_config_to_mapping_types(self, fc):
        mapping = config_to_fc_mapping({"T_S": 8, "T_K": 4, "T_N": 1})
        assert mapping.multipliers_used == 32


class TestHardwareSpace:
    def test_knobs(self):
        space = hardware_space()
        assert set(space.knobs) == {"ms_size", "dn_bw", "rn_bw"}
        assert space.raw_size == 6 * 4 * 4

    @given(index=st.integers(0, 95))
    @settings(max_examples=20)
    def test_all_configs_power_of_two(self, index):
        from repro.stonne.layer import is_power_of_two

        config = hardware_space().config_at(index)
        assert is_power_of_two(config["ms_size"])
        assert is_power_of_two(config["dn_bw"])
