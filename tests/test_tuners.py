"""Tests for the tuners: grid, random, GA, GBT-surrogate; records."""

import pytest

from repro.errors import TuningError
from repro.stonne.config import maeri_config
from repro.stonne.layer import ConvLayer, FcLayer
from repro.tuner import (
    CallableTask,
    ConfigSpace,
    GATuner,
    GridSearchTuner,
    INVALID_COST,
    MaeriConvTask,
    MaeriFcTask,
    RandomTuner,
    TuningRecords,
    XGBTuner,
)


def quadratic_space():
    """A 2-D space with known optimum at (a=7, b=5)."""
    space = ConfigSpace()
    space.define_knob("a", list(range(16)))
    space.define_knob("b", list(range(16)))

    def cost(config):
        return (config["a"] - 7) ** 2 + (config["b"] - 5) ** 2

    return CallableTask(space, cost)


class TestGridSearch:
    def test_finds_global_optimum(self):
        task = quadratic_space()
        result = GridSearchTuner(task).tune(n_trials=256)
        assert result.best_cost == 0
        assert result.best_config == {"a": 7, "b": 5}
        assert result.num_trials == 256

    def test_respects_constraints(self):
        space = ConfigSpace()
        space.define_knob("a", [1, 2, 3, 4])
        space.add_constraint(lambda c: c["a"] != 2)
        task = CallableTask(space, lambda c: c["a"])
        result = GridSearchTuner(task).tune(n_trials=10)
        visited = {t.config["a"] for t in result.records.trials}
        assert 2 not in visited
        assert result.best_config == {"a": 1}

    def test_stops_when_space_exhausted(self):
        task = quadratic_space()
        result = GridSearchTuner(task).tune(n_trials=10_000)
        assert result.num_trials == 256


class TestRandomTuner:
    def test_never_repeats_configs(self):
        task = quadratic_space()
        result = RandomTuner(task, seed=3).tune(n_trials=200)
        indices = [t.index for t in result.records.trials]
        assert len(indices) == len(set(indices))

    def test_deterministic_given_seed(self):
        costs1 = RandomTuner(quadratic_space(), seed=5).tune(50).best_cost
        costs2 = RandomTuner(quadratic_space(), seed=5).tune(50).best_cost
        assert costs1 == costs2

    def test_covers_space_eventually(self):
        result = RandomTuner(quadratic_space(), seed=1).tune(n_trials=256)
        assert result.best_cost == 0


class TestGATuner:
    def test_converges_near_optimum(self):
        result = GATuner(quadratic_space(), seed=2).tune(n_trials=150)
        assert result.best_cost <= 2

    def test_survives_invalid_regions(self):
        space = ConfigSpace()
        space.define_knob("a", list(range(32)))
        space.add_constraint(lambda c: c["a"] % 3 == 0)
        task = CallableTask(space, lambda c: abs(c["a"] - 12))
        result = GATuner(task, seed=0).tune(n_trials=40)
        assert result.best_config is not None
        assert result.best_config["a"] % 3 == 0


class TestXGBTuner:
    def test_beats_random_sample_efficiency(self):
        """With the same tiny budget the surrogate should do no worse."""
        budget = 60
        xgb_cost = XGBTuner(quadratic_space(), seed=4, warmup=20).tune(budget).best_cost
        random_cost = RandomTuner(quadratic_space(), seed=4).tune(budget).best_cost
        assert xgb_cost <= random_cost + 4  # allow slack, must be competitive

    def test_invalid_costs_not_trained_on(self):
        space = ConfigSpace()
        space.define_knob("a", list(range(8)))
        space.add_constraint(lambda c: c["a"] < 6)
        task = CallableTask(space, lambda c: c["a"])
        result = XGBTuner(task, seed=0, warmup=4).tune(n_trials=8)
        assert result.best_config == {"a": 0}


class TestEarlyStopping:
    def test_stops_after_patience(self):
        task = quadratic_space()
        result = GridSearchTuner(task).tune(n_trials=256, early_stopping=12)
        assert result.stopped_early
        assert result.num_trials < 256

    def test_bad_trial_count_rejected(self):
        with pytest.raises(TuningError):
            GridSearchTuner(quadratic_space()).tune(n_trials=0)


class TestMaeriTasks:
    def test_fc_task_psums_objective(self, maeri128):
        layer = FcLayer("f", in_features=256, out_features=128)
        task = MaeriFcTask(layer, maeri128, objective="psums")
        result = GridSearchTuner(task).tune(n_trials=5000)
        best = task.best_mapping(result.best_config)
        # Table VI structure: psum tuning drives T_K to 1 and maximizes T_S.
        assert best.T_K == 1
        assert best.T_S == 128

    def test_fc_task_cycles_objective_prefers_balance(self, maeri128):
        layer = FcLayer("f", in_features=256, out_features=128)
        task = MaeriFcTask(layer, maeri128, objective="cycles")
        result = GridSearchTuner(task).tune(n_trials=5000)
        best = task.best_mapping(result.best_config)
        assert best.T_K > 1  # cycle tuning uses spatial reduction

    def test_conv_task_valid_best(self, maeri128):
        layer = ConvLayer("c", C=8, H=10, W=10, K=16, R=3, S=3)
        task = MaeriConvTask(layer, maeri128, objective="psums",
                             max_options_per_tile=4)
        result = XGBTuner(task, seed=0).tune(n_trials=80)
        mapping = task.best_mapping(result.best_config)
        mapping.validate_for(layer, maeri128.ms_size)

    def test_invalid_objective_rejected(self, maeri128):
        with pytest.raises(TuningError, match="objective"):
            MaeriFcTask(
                FcLayer("f", in_features=8, out_features=8),
                maeri128,
                objective="latency",
            )


class TestRecords:
    def test_best_tracking(self):
        records = TuningRecords()
        records.add(0, {"a": 1}, 10.0)
        records.add(1, {"a": 2}, INVALID_COST)
        records.add(2, {"a": 3}, 5.0)
        assert records.best.cost == 5.0
        assert records.num_valid == 2
        assert records.best_cost_curve() == [10.0, 10.0, 5.0]

    def test_jsonl_roundtrip(self, tmp_path):
        records = TuningRecords(objective="psums")
        records.add(0, {"a": 1}, 10.0)
        records.add(1, {"a": 2}, INVALID_COST)
        path = tmp_path / "log.jsonl"
        records.save_jsonl(path)
        restored = TuningRecords.load_jsonl(path)
        assert restored.objective == "psums"
        assert len(restored.trials) == 2
        assert restored.trials[1].cost == INVALID_COST

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TuningError, match="invalid record"):
            TuningRecords.load_jsonl(path)
