"""Functional-datapath parity for the conv variants the zoo opened up.

Every (stride, dilation, padding, groups, layout) combination must
produce outputs bit-matching the naive direct-loop reference — the
im2col-GEMM lowering, the grouped per-block GEMMs and the NHWC
layout-emulation transposes are optimizations, never approximations.
"""

import itertools

import numpy as np
import pytest

from repro.errors import LayerError
from repro.stonne.layer import ConvLayer
from repro.stonne.simulator import Stonne, _conv_via_gemm
from repro.topi import conv2d_direct_nchw
from repro.topi.layout import (
    nchw_to_nhwc,
    nhwc_to_nchw,
    rsck_to_kcrs,
)

# The satellite matrix: stride x dilation x padding, crossed with
# groups and layout below.  Padding >= dilation keeps every cell's
# output non-empty at H=W=10 with a 3x3 filter.
MATRIX = [
    pytest.param(stride, dil, pad, id=f"s{stride}-d{dil}-p{pad}")
    for stride, dil, pad in itertools.product((1, 2), (1, 2), (1, 2))
]


def _layer(stride, dil, pad, groups=1, layout="NCHW"):
    return ConvLayer(
        "v", C=4, H=10, W=10, K=8, R=3, S=3, G=groups,
        stride_h=stride, stride_w=stride, pad_h=pad, pad_w=pad,
        dil_h=dil, dil_w=dil, layout=layout,
    )


class TestDilationGeometry:
    def test_effective_filter_and_output_shape(self):
        layer = _layer(stride=1, dil=2, pad=2)
        assert layer.eff_R == 5 and layer.eff_S == 5
        # (10 + 2*2 - 5) // 1 + 1
        assert layer.P == 10 and layer.Q == 10

    def test_dilation_shrinks_output_like_a_bigger_filter(self):
        plain = _layer(stride=1, dil=1, pad=0)
        dilated = _layer(stride=1, dil=2, pad=0)
        assert dilated.P < plain.P

    def test_rejects_dilated_filter_larger_than_padded_input(self):
        with pytest.raises(LayerError, match="dilat"):
            ConvLayer("bad", C=1, H=4, W=4, K=1, R=3, S=3, dil_h=4, dil_w=4)

    def test_rejects_nonpositive_dilation_and_bad_layout(self):
        with pytest.raises(LayerError):
            ConvLayer("bad", C=1, H=8, W=8, K=1, R=3, S=3, dil_h=0)
        with pytest.raises(LayerError, match="layout"):
            ConvLayer("bad", C=1, H=8, W=8, K=1, R=3, S=3, layout="CHWN")

    def test_describe_mentions_the_variant_knobs(self):
        text = _layer(stride=1, dil=2, pad=1, groups=2, layout="NHWC").describe()
        assert "dil=(2,2)" in text and "G=2" in text and "layout=NHWC" in text


class TestFunctionalParity:
    @pytest.mark.parametrize("stride,dil,pad", MATRIX)
    @pytest.mark.parametrize("groups", [1, 2], ids=["g1", "g2"])
    def test_nchw_matches_direct_reference(self, rng, stride, dil, pad, groups):
        layer = _layer(stride, dil, pad, groups=groups)
        data = rng.normal(size=(1, layer.C, layer.H, layer.W))
        weights = rng.normal(size=(layer.K, layer.C // groups, 3, 3))
        got = _conv_via_gemm(data, weights, layer)
        want = conv2d_direct_nchw(
            data, weights, strides=(stride, stride), padding=(pad, pad),
            dilation=(dil, dil), groups=groups,
        )
        np.testing.assert_allclose(got, want, rtol=1e-9)

    @pytest.mark.parametrize("stride,dil,pad", MATRIX)
    def test_nhwc_emulation_matches_direct_reference(self, rng, stride, dil, pad):
        """NHWC activations + RSCK kernels, transposed around the NCHW
        core — the exact sequence the functional engine runs."""
        layer = _layer(stride, dil, pad, layout="NHWC")
        data_nhwc = rng.normal(size=(1, layer.H, layer.W, layer.C))
        weights_rsck = rng.normal(size=(3, 3, layer.C, layer.K))
        out_nchw = _conv_via_gemm(
            nhwc_to_nchw(data_nhwc), rsck_to_kcrs(weights_rsck), layer
        )
        got = nchw_to_nhwc(out_nchw)
        want_nchw = conv2d_direct_nchw(
            nhwc_to_nchw(data_nhwc), rsck_to_kcrs(weights_rsck),
            strides=(stride, stride), padding=(pad, pad), dilation=(dil, dil),
        )
        np.testing.assert_allclose(got, nchw_to_nhwc(want_nchw), rtol=1e-9)
        assert got.shape == (1, layer.P, layer.Q, layer.K)

    def test_simulator_runs_dilated_layer_end_to_end(self, rng, maeri128):
        layer = _layer(stride=2, dil=2, pad=2)
        data = rng.normal(size=(1, layer.C, layer.H, layer.W))
        weights = rng.normal(size=(layer.K, layer.C, 3, 3))
        result = Stonne(maeri128).run_conv2d(layer, data=data, weights=weights)
        want = conv2d_direct_nchw(
            data, weights, strides=(2, 2), padding=(2, 2), dilation=(2, 2)
        )
        np.testing.assert_allclose(result.output, want, rtol=1e-9)
        assert result.stats.cycles > 0


class TestCycleModelsSeeDilation:
    @pytest.mark.parametrize("fixture", ["maeri128", "sigma128", "tpu16"])
    def test_dilation_changes_stats_through_output_shape(self, request, fixture):
        """The cycle models consume P/Q, so dilation (without padding to
        compensate) must change the simulated work, not just the output."""
        config = request.getfixturevalue(fixture)
        plain = Stonne(config).run_conv2d(_layer(1, 1, 0)).stats
        dilated = Stonne(config).run_conv2d(_layer(1, 2, 0)).stats
        assert dilated.cycles != plain.cycles
        assert dilated.psums < plain.psums  # fewer output pixels

    def test_padding_compensated_dilation_matches_same_shape_work(self, maeri128):
        """pad == dilation keeps P/Q equal to the plain 3x3 case, and the
        cycle model (which never reads the taps' positions) agrees."""
        plain = Stonne(maeri128).run_conv2d(_layer(1, 1, 1)).stats
        dilated = Stonne(maeri128).run_conv2d(_layer(1, 2, 2)).stats
        assert dilated.cycles == plain.cycles

    def test_layout_never_changes_stats(self, sigma128):
        """Layout is a functional-datapath concern; the simulated loop
        nest is identical, so stats must be too."""
        nchw = Stonne(sigma128).run_conv2d(_layer(2, 2, 1)).stats
        nhwc = Stonne(sigma128).run_conv2d(_layer(2, 2, 1, layout="NHWC")).stats
        assert nchw.to_dict() == nhwc.to_dict()
