"""Tests for the model zoo and the reporting helpers."""

import numpy as np
import pytest

from repro.bifrost.reporting import (
    FEATURE_MATRIX,
    LayerComparison,
    comparison_table,
    feature_table,
    stats_table,
    stats_to_json,
)
from repro.models import (
    alexnet_conv_layers,
    alexnet_fc_layers,
    alexnet_graph,
    alexnet_layers,
    lenet_conv_layers,
    lenet_fc_layers,
    lenet_graph,
    mlp_fc_layers,
    mlp_graph,
    vgg_small_conv_layers,
    vgg_small_fc_layers,
    vgg_small_graph,
)
from repro.runtime import compile_graph
from repro.stonne.config import maeri_config
from repro.stonne.maeri import MaeriController
from repro.stonne.mapping import ConvMapping


class TestAlexNet:
    def test_conv_descriptors_match_paper_dimensions(self):
        convs = alexnet_conv_layers()
        assert [c.name for c in convs] == [f"conv{i}" for i in range(1, 6)]
        conv1 = convs[0]
        assert (conv1.P, conv1.Q) == (55, 55)
        # conv chain is spatially consistent: 55 -> pool 27 -> conv2 27, etc.
        assert convs[1].H == 27 and convs[2].H == 13

    def test_fc_descriptors_match_paper(self):
        fcs = alexnet_fc_layers()
        assert [(f.in_features, f.out_features) for f in fcs] == [
            (9216, 4096), (4096, 4096), (4096, 1000),
        ]

    def test_layers_order(self):
        layers = alexnet_layers()
        assert len(layers) == 8
        assert layers[0].name == "conv1" and layers[-1].name == "fc3"

    def test_graph_shapes_consistent_with_descriptors(self):
        graph = alexnet_graph()
        conv_nodes = graph.op_nodes("conv2d")
        assert len(conv_nodes) == 5
        fc_nodes = graph.op_nodes("dense")
        assert len(fc_nodes) == 3
        out = graph.nodes[graph.output_ids[0]]
        assert out.ttype.shape == (1, 1000)

    @pytest.mark.slow
    def test_graph_executes(self, rng):
        out = compile_graph(alexnet_graph(), apply_passes=False)(
            rng.normal(size=(1, 3, 224, 224))
        )
        assert out.shape == (1, 1000)
        assert np.isfinite(out).all()


class TestOtherModels:
    def test_lenet_descriptors_and_graph(self, rng):
        graph = lenet_graph()
        out = compile_graph(graph, apply_passes=False)(rng.normal(size=(1, 1, 28, 28)))
        assert out.shape == (1, 10)
        assert len(lenet_conv_layers()) == 2
        assert lenet_fc_layers()[0].in_features == 400

    def test_vgg_small_descriptors_consistent(self):
        graph = vgg_small_graph()
        assert len(graph.op_nodes("conv2d")) == len(vgg_small_conv_layers())
        assert len(graph.op_nodes("dense")) == len(vgg_small_fc_layers())

    def test_vgg_small_executes_with_bn_folding(self, rng):
        graph = vgg_small_graph(num_classes=10)
        data = rng.normal(size=(1, 3, 64, 64))
        raw = compile_graph(vgg_small_graph(num_classes=10), apply_passes=False)(data)
        optimized = compile_graph(graph)(data)
        assert not graph.op_nodes("batch_norm")
        np.testing.assert_allclose(optimized, raw, rtol=1e-8)

    def test_mlp(self, rng):
        graph = mlp_graph(16, (8, 4), 3)
        out = compile_graph(graph, apply_passes=False)(rng.normal(size=(1, 16)))
        assert out.shape == (1, 3)
        layers = mlp_fc_layers(16, (8, 4), 3)
        assert [(l.in_features, l.out_features) for l in layers] == [
            (16, 8), (8, 4), (4, 3),
        ]


class TestReporting:
    def test_feature_table_matches_paper_claims(self):
        assert all(FEATURE_MATRIX["Bifrost"].values())
        assert not FEATURE_MATRIX["STONNE"]["model_support"]
        assert not FEATURE_MATRIX["VTA"]["cycle_accurate"]
        table = feature_table()
        assert "Bifrost" in table and "Cycle-accurate" in table

    def test_comparison_table_renders(self):
        rows = [
            LayerComparison("fc1", {"basic": 100, "tuned": 10}),
            LayerComparison("fc2", {"basic": 200, "tuned": 40}),
        ]
        text = comparison_table(rows, ["basic", "tuned"])
        assert "fc1" in text and "100" in text
        assert rows[0].speedup("basic", "tuned") == 10.0

    def test_stats_table_and_json(self):
        controller = MaeriController(maeri_config())
        from repro.stonne.layer import ConvLayer

        stats = controller.run_conv(
            ConvLayer("c", C=4, H=8, W=8, K=8, R=3, S=3),
            ConvMapping(T_R=3, T_S=3, T_C=4),
        )
        table = stats_table([stats])
        assert "total" in table and "c" in table
        blob = stats_to_json([stats])
        assert '"cycles"' in blob
