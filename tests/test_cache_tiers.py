"""Tests for the persistent cache tiers: SQLite sharing and JSONL compaction.

The headline property of the SQLite tier is *mid-sweep* sharing: two
processes pointed at one ``.sqlite`` file observe each other's inserts
while both are still running — which the JSONL spill (read once at
open) cannot do.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.engine import (
    EvaluationEngine,
    PersistentStatsCache,
    SqliteStatsCache,
    StatsCache,
    make_stats_cache,
)
from repro.stonne.config import maeri_config
from repro.stonne.layer import ConvLayer
from repro.stonne.mapping import ConvMapping
from repro.stonne.stats import SimulationStats

CONFIG = maeri_config()


def _stats(cycles=100, name="layer"):
    return SimulationStats(
        layer_name=name,
        controller="maeri",
        cycles=cycles,
        psums=10,
        macs=1000,
        iterations=4,
        multipliers_used=8,
        array_size=128,
        phase_cycles={"fill": 2, "steady": cycles - 2},
    )


KEY = ("fp", "ConvLayer", (1, 2, (3, 4)), "ConvMapping", (1, 1, 1, 1))


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
class TestDispatch:
    @pytest.mark.parametrize("name", ["c.sqlite", "c.sqlite3", "c.db"])
    def test_sqlite_suffixes(self, tmp_path, name):
        cache = make_stats_cache(tmp_path / name)
        assert isinstance(cache, SqliteStatsCache)
        cache.close()

    @pytest.mark.parametrize("name", ["c.jsonl", "c.cache", "plain"])
    def test_everything_else_is_jsonl(self, tmp_path, name):
        cache = make_stats_cache(tmp_path / name)
        assert isinstance(cache, PersistentStatsCache)
        assert not isinstance(cache, SqliteStatsCache)
        cache.close()


# ----------------------------------------------------------------------
# sqlite tier
# ----------------------------------------------------------------------
class TestSqliteStatsCache:
    def test_round_trip_and_copy_isolation(self, tmp_path):
        with SqliteStatsCache(tmp_path / "c.sqlite") as cache:
            cache.put(KEY, _stats())
            got = cache.get(KEY)
            assert got.to_dict() == _stats().to_dict()
            got.cycles = 1  # mutating the copy must not corrupt the cache
            assert cache.get(KEY).cycles == 100

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "c.sqlite"
        with SqliteStatsCache(path) as first:
            first.put(KEY, _stats())
        with SqliteStatsCache(path) as second:
            assert second.get(KEY).cycles == 100
            assert second.disk_entries() == 1

    def test_concurrent_instances_see_each_others_inserts(self, tmp_path):
        """Two live caches on one file: an insert through one is a hit
        through the other, with no reopen — the mid-sweep property."""
        path = tmp_path / "c.sqlite"
        with SqliteStatsCache(path) as a, SqliteStatsCache(path) as b:
            a.put(("from-a",), _stats(cycles=7))
            b.put(("from-b",), _stats(cycles=9))
            assert b.get(("from-a",)).cycles == 7
            assert a.get(("from-b",)).cycles == 9

    def test_l1_miss_falls_through_and_counts(self, tmp_path):
        path = tmp_path / "c.sqlite"
        with SqliteStatsCache(path) as writer:
            writer.put(KEY, _stats())
        with SqliteStatsCache(path) as reader:
            assert reader.get(("absent",)) is None
            assert reader.get(KEY) is not None
            assert (reader.hits, reader.misses) == (1, 1)

    def test_l1_bound_does_not_lose_disk_records(self, tmp_path):
        with SqliteStatsCache(tmp_path / "c.sqlite", max_entries=2) as cache:
            for i in range(5):
                cache.put((i,), _stats(cycles=i + 1))
            assert len(cache) <= 2  # in-memory L1 respects the bound
            assert cache.disk_entries() == 5
            for i in range(5):  # every record still served (from disk)
                assert cache.get((i,)).cycles == i + 1

    def test_clear_drops_both_tiers(self, tmp_path):
        with SqliteStatsCache(tmp_path / "c.sqlite") as cache:
            cache.put(KEY, _stats())
            cache.clear()
            assert cache.get(KEY) is None
            assert cache.disk_entries() == 0

    def test_compact_reports_live_records(self, tmp_path):
        with SqliteStatsCache(tmp_path / "c.sqlite") as cache:
            cache.put(KEY, _stats())
            cache.put(("other",), _stats())
            assert cache.compact() == (2, 0)

    def test_engine_integration(self, tmp_path):
        """An engine over the sqlite tier: second engine starts warm."""
        path = tmp_path / "c.sqlite"
        layer = ConvLayer("c", C=8, H=12, W=12, K=8, R=3, S=3)
        mapping = ConvMapping(T_R=3, T_S=3)
        cold_cache = SqliteStatsCache(path)
        cold = EvaluationEngine(CONFIG, cache=cold_cache)
        first = cold.evaluate(layer, mapping)
        assert cold.num_simulations == 1
        cold_cache.close()

        warm_cache = SqliteStatsCache(path)
        warm = EvaluationEngine(CONFIG, cache=warm_cache)
        second = warm.evaluate(layer, mapping)
        assert warm.num_simulations == 0  # served from the shared tier
        assert second.to_dict() == first.to_dict()
        warm_cache.close()


_WRITER_SCRIPT = textwrap.dedent(
    """
    import json, sys, time
    from repro.engine import SqliteStatsCache
    from repro.stonne.stats import SimulationStats

    path, mine, theirs, count = sys.argv[1:5]
    count = int(count)
    stats = SimulationStats(
        layer_name="l", controller="maeri", cycles=1, psums=1, macs=1,
        iterations=1, multipliers_used=1, array_size=128,
    )
    cache = SqliteStatsCache(path)
    for i in range(count):
        cache.put((mine, i), stats)
    # Wait (bounded) until every record of the *other* process is
    # visible through this live cache instance: mid-sweep sharing.
    deadline = time.monotonic() + 30
    seen = 0
    while time.monotonic() < deadline:
        seen = sum(
            1 for i in range(count) if cache.get((theirs, i)) is not None
        )
        if seen == count:
            break
        time.sleep(0.05)
    cache.close()
    print(json.dumps({"seen": seen}))
    sys.exit(0 if seen == count else 1)
    """
)


def test_two_processes_share_one_sqlite_cache(tmp_path):
    """Acceptance criterion: two concurrent *processes* sharing one
    SqliteStatsCache each observe the other's inserts within the same
    sweep (neither reopens the file)."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    path = str(tmp_path / "shared.sqlite")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [src_dir, env.get("PYTHONPATH")])
    )
    count = "25"
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _WRITER_SCRIPT, path, mine, theirs, count],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        for mine, theirs in (("alpha", "beta"), ("beta", "alpha"))
    ]
    for proc in procs:
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, f"writer failed: {err}\n{out}"
        assert json.loads(out)["seen"] == int(count)


# ----------------------------------------------------------------------
# JSONL compaction
# ----------------------------------------------------------------------
class TestCompact:
    def test_dedup_last_write_wins(self, tmp_path):
        path = tmp_path / "spill.jsonl"
        with PersistentStatsCache(path) as cache:
            cache.put(KEY, _stats(cycles=100))
        # A second process appending a newer record for the same key.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"key": KEY, "stats": _stats(cycles=777).to_dict()})
                + "\n"
            )
        with PersistentStatsCache(path) as cache:
            assert cache.compact() == (1, 1)
            assert cache.get(KEY).cycles == 777  # the *last* record survived
        assert len(path.read_text().strip().splitlines()) == 1

    def test_drops_corrupt_lines(self, tmp_path):
        path = tmp_path / "spill.jsonl"
        with PersistentStatsCache(path) as cache:
            cache.put(KEY, _stats())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": [1], "stats"')  # crashed mid-append
        with PersistentStatsCache(path) as cache:
            assert cache.compact() == (1, 1)

    def test_appends_keep_working_after_compact(self, tmp_path):
        path = tmp_path / "spill.jsonl"
        with PersistentStatsCache(path) as cache:
            cache.put(KEY, _stats())
            cache.compact()
            cache.put(("post-compact",), _stats(cycles=5))
        with PersistentStatsCache(path) as reopened:
            assert reopened.warm_entries == 2
            assert reopened.get(("post-compact",)).cycles == 5

    def test_compact_empty_cache(self, tmp_path):
        with PersistentStatsCache(tmp_path / "spill.jsonl") as cache:
            assert cache.compact() == (0, 0)

    def test_cli_compact_command(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "spill.jsonl"
        with PersistentStatsCache(path) as cache:
            cache.put(KEY, _stats())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage\n")
        assert main(["cache", "compact", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 live" in out and "1 superseded" in out

    def test_cli_compact_missing_path_errors(self, tmp_path, capsys):
        """A typo'd path must error, not create an empty cache file."""
        from repro.cli import main

        missing = tmp_path / "nope.jsonl"
        assert main(["cache", "compact", str(missing)]) == 2
        assert "no cache file" in capsys.readouterr().err
        assert not missing.exists()

    def test_cli_compact_sqlite(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "c.sqlite"
        with SqliteStatsCache(path) as cache:
            cache.put(KEY, _stats())
        assert main(["cache", "compact", str(path)]) == 0
        assert "1 live" in capsys.readouterr().out


# ----------------------------------------------------------------------
# sqlite LRU eviction (row-count cap)
# ----------------------------------------------------------------------
def _key(i):
    return ("fp", "ConvLayer", (i,), None, None)


class TestSqliteEviction:
    def test_unbounded_by_default(self, tmp_path):
        cache = SqliteStatsCache(tmp_path / "e.sqlite")
        for i in range(50):
            cache.put(_key(i), _stats(cycles=i + 1))
        assert cache.disk_entries() == 50
        assert cache.evictions == 0
        cache.close()

    def test_cap_evicts_least_recently_accessed(self, tmp_path):
        # L1 of 1 forces every get through the database tier, so the
        # shared tier's accessed_at stamps track real access order.
        cache = SqliteStatsCache(tmp_path / "e.sqlite", max_entries=1,
                                 max_rows=3)
        for i in range(3):
            cache.put(_key(i), _stats(cycles=i + 1))
        assert cache.get(_key(0)) is not None  # refresh key 0
        cache.put(_key(3), _stats(cycles=4))   # evicts key 1 (oldest)
        assert cache.disk_entries() == 3
        assert cache.evictions == 1
        db = SqliteStatsCache(tmp_path / "e.sqlite", max_entries=1)
        assert db.get(_key(1)) is None
        assert db.get(_key(0)) is not None
        assert db.get(_key(2)) is not None
        assert db.get(_key(3)) is not None
        db.close()
        cache.close()

    def test_fresh_write_never_evicts_itself(self, tmp_path):
        cache = SqliteStatsCache(tmp_path / "e.sqlite", max_entries=1,
                                 max_rows=1)
        for i in range(5):
            cache.put(_key(i), _stats(cycles=i + 1))
        assert cache.disk_entries() == 1
        db = SqliteStatsCache(tmp_path / "e.sqlite", max_entries=1)
        assert db.get(_key(4)) is not None
        db.close()
        cache.close()

    def test_pre_eviction_database_migrates(self, tmp_path):
        # A database created before the accessed_at column existed must
        # open, gain the column, and participate in eviction.
        import sqlite3

        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(str(path))
        conn.execute(
            "CREATE TABLE stats (key TEXT PRIMARY KEY, stats TEXT NOT NULL)"
        )
        conn.execute(
            "INSERT INTO stats (key, stats) VALUES (?, ?)",
            (json.dumps(list(_key(0)), default=str),
             json.dumps(_stats(cycles=7).to_dict())),
        )
        conn.commit()
        conn.close()

        cache = SqliteStatsCache(path, max_entries=1, max_rows=2)
        assert cache.get(_key(0)).cycles == 7  # old record readable
        cache.put(_key(1), _stats(cycles=8))
        cache.put(_key(2), _stats(cycles=9))
        # Access order was 0, 1, 2 — the cap of 2 evicts key 0.
        assert cache.disk_entries() == 2
        db = SqliteStatsCache(path, max_entries=1)
        assert db.get(_key(0)) is None
        assert db.get(_key(2)) is not None
        db.close()
        cache.close()

    def test_invalid_max_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_rows"):
            SqliteStatsCache(tmp_path / "e.sqlite", max_rows=0)

    def test_make_stats_cache_passes_cap(self, tmp_path):
        cache = make_stats_cache(tmp_path / "cap.sqlite", max_rows=2)
        assert cache.max_rows == 2
        for i in range(4):
            cache.put(_key(i), _stats(cycles=i + 1))
        assert cache.disk_entries() == 2
        cache.close()
        # The JSONL tier has no row cap (append-only history); the
        # argument must not break its construction.
        jsonl = make_stats_cache(tmp_path / "cap.jsonl", max_rows=2)
        assert not hasattr(jsonl, "max_rows")
        jsonl.close()

    def test_engine_sweep_respects_cap(self, tmp_path):
        cache = make_stats_cache(tmp_path / "sweep.sqlite", max_rows=2)
        engine = EvaluationEngine(CONFIG, cache=cache)
        layers = [
            ConvLayer(name=f"c{i}", C=1, H=4 + i, W=4 + i, K=1, R=2, S=2)
            for i in range(4)
        ]
        for layer in layers:
            engine.evaluate(layer, ConvMapping.basic())
        assert cache.disk_entries() == 2
        engine.close()
        cache.close()

    def test_uncapped_gets_are_read_only(self, tmp_path):
        # Without a row cap, gets must not write: no writer lock, no WAL
        # growth, and eviction never consults the stamp anyway.
        import sqlite3

        path = tmp_path / "ro.sqlite"
        writer = SqliteStatsCache(path)
        writer.put(_key(0), _stats(cycles=5))
        writer.close()

        reader = SqliteStatsCache(path, max_entries=1)
        assert reader.get(_key(0)) is not None
        reader.close()
        conn = sqlite3.connect(str(path))
        stamp_after_put, = conn.execute(
            "SELECT accessed_at FROM stats").fetchone()
        conn.close()
        assert stamp_after_put == 1  # the put's stamp; the get added none

    def test_l1_hits_refresh_shared_stamp_when_capped(self, tmp_path):
        # A key hot in one process's L1 must still look hot to the
        # shared tier, or other processes' eviction would drop it.
        cache = SqliteStatsCache(tmp_path / "hot.sqlite", max_rows=8)
        cache.put(_key(0), _stats(cycles=1))
        cache.put(_key(1), _stats(cycles=2))
        for _ in range(3):
            assert cache.get(_key(0)) is not None  # L1 hits after first
        stamps = dict(cache._conn.execute(
            "SELECT key, accessed_at FROM stats"))
        cache.close()
        assert stamps[json.dumps(list(_key(0)))] > stamps[
            json.dumps(list(_key(1)))]
