"""Tests for pruning and bitmap compression (SIGMA's data path)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import SimulationError
from repro.stonne.sparsity import (
    BitmapTensor,
    measured_sparsity,
    prune_to_sparsity,
)


class TestPruning:
    def test_exact_ratio(self, rng):
        weights = rng.normal(size=(40, 50))
        pruned = prune_to_sparsity(weights, 50)
        assert measured_sparsity(pruned) == pytest.approx(0.5, abs=0.001)

    def test_zero_ratio_is_identity(self, rng):
        weights = rng.normal(size=(10, 10))
        np.testing.assert_array_equal(prune_to_sparsity(weights, 0), weights)

    def test_full_ratio_zeroes_everything(self, rng):
        pruned = prune_to_sparsity(rng.normal(size=(10, 10)), 100)
        assert np.count_nonzero(pruned) == 0

    def test_magnitude_order_preserved(self, rng):
        """Surviving weights are never smaller in magnitude than pruned ones."""
        weights = rng.normal(size=200)
        pruned = prune_to_sparsity(weights, 30)
        kept = np.abs(weights[pruned != 0])
        removed = np.abs(weights[pruned == 0])
        assert removed.max() <= kept.min() + 1e-12

    def test_input_not_modified(self, rng):
        weights = rng.normal(size=(10, 10))
        original = weights.copy()
        prune_to_sparsity(weights, 50)
        np.testing.assert_array_equal(weights, original)

    def test_rejects_out_of_range(self, rng):
        with pytest.raises(SimulationError):
            prune_to_sparsity(rng.normal(size=4), 101)

    @given(ratio=st.integers(0, 100))
    @settings(max_examples=25)
    def test_measured_tracks_requested(self, ratio):
        weights = np.random.default_rng(7).normal(size=1000)
        pruned = prune_to_sparsity(weights, ratio)
        assert abs(measured_sparsity(pruned) - ratio / 100) < 0.01


class TestBitmap:
    @given(
        dense=hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=8),
            elements=st.floats(-10, 10, allow_nan=False).map(
                lambda x: 0.0 if abs(x) < 1 else x
            ),
        )
    )
    @settings(max_examples=50)
    def test_roundtrip_property(self, dense):
        tensor = BitmapTensor.compress(dense)
        np.testing.assert_array_equal(tensor.decompress(), dense)

    def test_nnz_and_density(self):
        dense = np.array([[1.0, 0.0], [0.0, 2.0]])
        tensor = BitmapTensor.compress(dense)
        assert tensor.nnz == 2
        assert tensor.density == 0.5

    def test_compressed_elements_include_bitmap_overhead(self):
        dense = np.zeros(64)
        dense[0] = 1.0
        tensor = BitmapTensor.compress(dense)
        assert tensor.compressed_elements == 1 + 2  # 1 nnz + 64/32 bitmap words

    def test_measured_sparsity_rejects_empty(self):
        with pytest.raises(SimulationError):
            measured_sparsity(np.array([]))
