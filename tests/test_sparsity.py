"""Tests for pruning and bitmap compression (SIGMA's data path),
plus the sparsity-ratio sweep axis layered on top of it."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigError, SimulationError
from repro.session import Session, SessionConfig
from repro.stonne.sparsity import (
    BitmapTensor,
    measured_sparsity,
    prune_to_sparsity,
)
from repro.sweep import SweepPlan


class TestPruning:
    def test_exact_ratio(self, rng):
        weights = rng.normal(size=(40, 50))
        pruned = prune_to_sparsity(weights, 50)
        assert measured_sparsity(pruned) == pytest.approx(0.5, abs=0.001)

    def test_zero_ratio_is_identity(self, rng):
        weights = rng.normal(size=(10, 10))
        np.testing.assert_array_equal(prune_to_sparsity(weights, 0), weights)

    def test_full_ratio_zeroes_everything(self, rng):
        pruned = prune_to_sparsity(rng.normal(size=(10, 10)), 100)
        assert np.count_nonzero(pruned) == 0

    def test_magnitude_order_preserved(self, rng):
        """Surviving weights are never smaller in magnitude than pruned ones."""
        weights = rng.normal(size=200)
        pruned = prune_to_sparsity(weights, 30)
        kept = np.abs(weights[pruned != 0])
        removed = np.abs(weights[pruned == 0])
        assert removed.max() <= kept.min() + 1e-12

    def test_input_not_modified(self, rng):
        weights = rng.normal(size=(10, 10))
        original = weights.copy()
        prune_to_sparsity(weights, 50)
        np.testing.assert_array_equal(weights, original)

    def test_rejects_out_of_range(self, rng):
        with pytest.raises(SimulationError):
            prune_to_sparsity(rng.normal(size=4), 101)

    @given(ratio=st.integers(0, 100))
    @settings(max_examples=25)
    def test_measured_tracks_requested(self, ratio):
        weights = np.random.default_rng(7).normal(size=1000)
        pruned = prune_to_sparsity(weights, ratio)
        assert abs(measured_sparsity(pruned) - ratio / 100) < 0.01


class TestBitmap:
    @given(
        dense=hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=8),
            elements=st.floats(-10, 10, allow_nan=False).map(
                lambda x: 0.0 if abs(x) < 1 else x
            ),
        )
    )
    @settings(max_examples=50)
    def test_roundtrip_property(self, dense):
        tensor = BitmapTensor.compress(dense)
        np.testing.assert_array_equal(tensor.decompress(), dense)

    def test_nnz_and_density(self):
        dense = np.array([[1.0, 0.0], [0.0, 2.0]])
        tensor = BitmapTensor.compress(dense)
        assert tensor.nnz == 2
        assert tensor.density == 0.5

    def test_compressed_elements_include_bitmap_overhead(self):
        dense = np.zeros(64)
        dense[0] = 1.0
        tensor = BitmapTensor.compress(dense)
        assert tensor.compressed_elements == 1 + 2  # 1 nnz + 64/32 bitmap words

    def test_measured_sparsity_rejects_empty(self):
        with pytest.raises(SimulationError):
            measured_sparsity(np.array([]))


class TestSparsityRatioAxis:
    """``architecture.sparsity_ratio`` as a first-class sweep axis."""

    def test_config_validates_the_ratio_range(self):
        SessionConfig.resolve(env=False, sparsity_ratio=0.9)  # fine
        with pytest.raises(ConfigError, match="sparsity_ratio"):
            SessionConfig.resolve(env=False, sparsity_ratio=1.0)
        with pytest.raises(ConfigError, match="sparsity_ratio"):
            SessionConfig.resolve(env=False, sparsity_ratio=-0.1)

    def test_ratio_maps_onto_the_controllers_percent_knob(self):
        config = SessionConfig.resolve(
            env=False, arch="sigma", sparsity_ratio=0.5
        )
        sim_config, _ = config.build_simulator_config()
        assert sim_config.sparsity_ratio == 50

    def test_zero_ratio_defers_to_the_legacy_percent_field(self):
        config = SessionConfig.resolve(
            env=False, arch="sigma", sparsity=30, sparsity_ratio=0.0
        )
        sim_config, _ = config.build_simulator_config()
        assert sim_config.sparsity_ratio == 30

    def test_axis_coerces_through_config_rules(self):
        config = SessionConfig.resolve(env=False, arch="sigma")
        plan = SweepPlan.matrix(
            config,
            models=["mlp"],
            axes={"architecture.sparsity_ratio": ["0.0", "0.5", "0.9"]},
        )
        ratios = [s.config.architecture.sparsity_ratio for s in plan.scenarios]
        assert ratios == [0.0, 0.5, 0.9]  # strings coerced to floats
        with pytest.raises(ConfigError):
            SweepPlan.matrix(
                config,
                models=["mlp"],
                axes={"architecture.sparsity_ratio": [1.5]},
            )

    def test_fig9_style_sweep_shape_and_filter(self):
        """One sweep reproduces Fig. 9's qualitative shape: AlexNet on
        SIGMA needs monotonically fewer cycles as sparsity rises, and
        each cell is reachable via ``filter(sparsity_ratio=...)``."""
        config = SessionConfig.resolve(env=False, arch="sigma")
        plan = SweepPlan.matrix(
            config,
            models=["alexnet"],
            axes={"architecture.sparsity_ratio": [0.0, 0.5, 0.9]},
        )
        with Session(config) as session:
            report = session.sweep(plan)
        assert len(report) == 3
        cycles = {}
        for ratio in (0.0, 0.5, 0.9):
            (result,) = report.filter(sparsity_ratio=ratio)
            cycles[ratio] = result.metric("total_cycles")
        assert cycles[0.0] > cycles[0.5] > cycles[0.9]
        # Fig. 9's quantitative band at 50%: fewer cycles overall, with
        # the whole-network saving between the paper's conv/fc means.
        saving = 1 - cycles[0.5] / cycles[0.0]
        assert 0.35 <= saving <= 0.62
