"""Unit tests for :mod:`repro.obs` — the span tracer and the metrics
registry.

The tracer tests run against *local* ``Tracer`` instances so they can
never leak enabled-state into the process-global ``TRACER`` other
tests (and the <2% overhead contract) depend on; the few tests that
need the global go through an enable/disable fixture.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    CATEGORIES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TRACE_VERSION,
    Tracer,
    chrome_events,
    read_trace,
    spans_from_document,
    summarize_spans,
    trace_document,
    write_trace,
)
from repro.obs.trace import _NULL_SPAN


# ----------------------------------------------------------------------
# tracer: disabled fast path
# ----------------------------------------------------------------------
class TestDisabledTracer:
    def test_span_returns_cached_null_span(self):
        tracer = Tracer()
        assert tracer.span("a") is _NULL_SPAN
        assert tracer.span("b", category="cache", lane="x") is _NULL_SPAN

    def test_null_span_is_reusable_context_manager(self):
        tracer = Tracer()
        with tracer.span("a") as span:
            # set() is chainable and a no-op
            assert span.set(items=3) is span
            with tracer.span("b"):
                pass
        assert len(tracer) == 0

    def test_instant_and_add_span_noop_when_disabled(self):
        tracer = Tracer()
        tracer.instant("evict", category="cache")
        tracer.add_span("w", "fleet", "lane", start=0.0, duration=1.0)
        assert tracer.spans() == []

    def test_exception_passes_through_null_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("a"):
                raise ValueError("boom")


# ----------------------------------------------------------------------
# tracer: recording
# ----------------------------------------------------------------------
class TestSpanRecording:
    def test_nesting_depth_and_self_time(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer", category="session"):
            with tracer.span("inner", category="engine"):
                pass
        spans = {s["name"]: s for s in tracer.spans()}
        assert spans["inner"]["depth"] == 1
        assert spans["outer"]["depth"] == 0
        # Parent self-time excludes the child's duration.
        assert spans["outer"]["self"] <= spans["outer"]["dur"]
        assert spans["outer"]["self"] == pytest.approx(
            spans["outer"]["dur"] - spans["inner"]["dur"]
        )
        # Children record before parents (exit order).
        assert [s["name"] for s in tracer.spans()] == ["inner", "outer"]

    def test_attrs_start_and_set(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("s", category="sweep", items=3) as span:
            span.set(hits=2)
        (span,) = tracer.spans()
        assert span["args"] == {"items": 3, "hits": 2}
        assert span["cat"] == "sweep"
        assert span["kind"] == "span"
        assert span["ts"] >= 0.0

    def test_exception_sets_error_attr_and_propagates(self):
        tracer = Tracer()
        tracer.enable()
        with pytest.raises(RuntimeError):
            with tracer.span("s"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span["args"]["error"] == "RuntimeError"

    def test_explicit_lane_beats_thread_name(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("a", lane="slot-7"):
            pass
        with tracer.span("b"):
            pass
        lanes = {s["name"]: s["lane"] for s in tracer.spans()}
        assert lanes["a"] == "slot-7"
        assert lanes["b"] == threading.current_thread().name

    def test_instant_event(self):
        tracer = Tracer()
        tracer.enable()
        tracer.instant("cache.evict", category="cache", count=4)
        (event,) = tracer.spans()
        assert event["kind"] == "instant"
        assert event["dur"] == 0.0
        assert event["args"] == {"count": 4}

    def test_add_span_places_external_timing(self):
        tracer = Tracer()
        tracer.enable()
        tracer.add_span(
            "fleet.worker", "fleet", "fleet-w0",
            start=tracer._epoch + 1.0, duration=0.25,
            attrs={"pid": 42},
        )
        (span,) = tracer.spans()
        assert span["ts"] == pytest.approx(1.0)
        assert span["dur"] == pytest.approx(0.25)
        assert span["lane"] == "fleet-w0"
        assert span["args"]["pid"] == 42

    def test_enable_clears_previous_spans(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("old"):
            pass
        tracer.enable()
        assert tracer.spans() == []

    def test_thread_safety_and_per_thread_nesting(self):
        tracer = Tracer()
        tracer.enable()
        threads, errors = [], []

        def work(idx):
            try:
                for _ in range(50):
                    with tracer.span(f"outer-{idx}"):
                        with tracer.span(f"inner-{idx}"):
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        for idx in range(8):
            threads.append(threading.Thread(target=work, args=(idx,)))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        spans = tracer.spans()
        assert len(spans) == 8 * 50 * 2
        # Nesting depth is per-thread: every inner is depth 1, every
        # outer depth 0, regardless of interleaving across threads.
        for span in spans:
            expected = 1 if span["name"].startswith("inner") else 0
            assert span["depth"] == expected


# ----------------------------------------------------------------------
# chrome export + file round-trip
# ----------------------------------------------------------------------
def _sample_tracer() -> Tracer:
    tracer = Tracer()
    tracer.enable()
    with tracer.span("session.run", category="session"):
        with tracer.span("scheduler.chunk", category="scheduler",
                         lane="slot-0", items=4):
            pass
    tracer.instant("cache.evict", category="cache", count=1)
    return tracer


class TestChromeExport:
    def test_event_structure(self):
        tracer = _sample_tracer()
        events = chrome_events(tracer.spans())
        phases = sorted(e["ph"] for e in events)
        # 2 complete spans + 1 instant + thread_name metadata
        assert phases.count("X") == 2
        assert phases.count("i") == 1
        assert phases.count("M") >= 1
        for event in events:
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        complete = [e for e in events if e["ph"] == "X"]
        for event in complete:
            assert event["dur"] >= 0  # microseconds
            assert event["cat"] in CATEGORIES
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"
        names = {e["name"] for e in events if e["ph"] == "M"}
        assert names == {"thread_name"}

    def test_lanes_get_distinct_tids(self):
        tracer = _sample_tracer()
        events = chrome_events(tracer.spans())
        metadata = {
            e["args"]["name"]: e["tid"]
            for e in events if e["ph"] == "M"
        }
        assert "slot-0" in metadata
        assert len(set(metadata.values())) == len(metadata)

    def test_write_read_round_trip(self, tmp_path):
        tracer = _sample_tracer()
        spans = tracer.spans()
        path = tmp_path / "trace.json"
        write_trace(str(path), spans, metrics={"cache": {"hit_rate": 0.5}},
                    meta={"arch": "maeri"})
        doc = read_trace(str(path))
        assert doc["reproTrace"]["version"] == TRACE_VERSION
        assert doc["reproTrace"]["metrics"]["cache"]["hit_rate"] == 0.5
        assert doc["reproTrace"]["meta"]["arch"] == "maeri"
        assert spans_from_document(doc) == json.loads(json.dumps(spans))
        # The same file is a loadable Chrome trace.
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"

    def test_spans_from_plain_chrome_document(self):
        # A trace exported elsewhere (no reproTrace section) still
        # yields spans for the summary, minus self-time precision.
        tracer = _sample_tracer()
        doc = {"traceEvents": chrome_events(tracer.spans())}
        spans = spans_from_document(doc)
        names = {s["name"] for s in spans}
        assert {"session.run", "scheduler.chunk", "cache.evict"} <= names

    def test_summary_renders_spans_and_metrics(self):
        tracer = _sample_tracer()
        text = summarize_spans(
            tracer.spans(),
            metrics={
                "simulations_per_s": 1234.0,
                "cache": {
                    "hit_rate": 0.25,
                    "tiers": {"l1_hits": 1, "misses": 3},
                },
            },
        )
        assert "session.run" in text
        assert "scheduler.chunk" in text
        assert "slot-0" in text
        assert "25.0%" in text
        assert "l1_hits=1" in text
        assert "1,234 simulations/s" in text


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(0.1, 1.0)).observe(0.05)
        registry.histogram("h").observe(0.5)
        registry.histogram("h").observe(5.0)
        assert registry.value("c") == 5
        assert registry.value("g") == 7
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 5}
        assert snap["gauges"] == {"g": 7}
        hist = snap["histograms"]["h"]
        assert hist["count"] == 3
        assert hist["min"] == 0.05 and hist["max"] == 5.0
        assert sum(hist["buckets"].values()) == 3

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_counters_with_prefix(self):
        registry = MetricsRegistry()
        registry.counter("scheduler.steals").inc(2)
        registry.counter("scheduler.resplits").inc(1)
        registry.counter("fleet.shards").inc(9)
        assert registry.counters_with_prefix("scheduler.") == {
            "steals": 2, "resplits": 1,
        }

    def test_instrument_classes_standalone(self):
        c, g = Counter("a"), Gauge("b")
        c.inc(3)
        g.set(1.5)
        g.inc(0.5)
        assert c.value == 3 and g.value == 2.0
        h = Histogram("c", buckets=(1.0,))
        h.observe(0.5)
        h.observe(2.0)
        assert h.count == 2
        assert h.total == pytest.approx(2.5)

    def test_concurrent_increments(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.counter("n").inc()
                registry.histogram("lat").observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.value("n") == 8000
        assert registry.get("lat").count == 8000
