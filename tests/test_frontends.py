"""Tests for the four model frontends."""

import numpy as np
import pytest

import repro.frontends.torchlike as tl
from repro.errors import FrontendError
from repro.frontends import (
    from_keraslike,
    from_native,
    from_onnxlike,
    from_torchlike,
)
from repro.runtime import compile_graph


class TestNativeFrontend:
    def test_full_stack(self, rng):
        spec = {
            "name": "m",
            "input_shape": [1, 3, 16, 16],
            "layers": [
                {"op": "conv2d", "channels": 8, "kernel_size": 3, "padding": 1},
                {"op": "relu"},
                {"op": "max_pool2d"},
                {"op": "flatten"},
                {"op": "dense", "units": 10},
                {"op": "softmax"},
            ],
        }
        graph = from_native(spec)
        out = compile_graph(graph)(rng.normal(size=(1, 3, 16, 16)))
        assert out.shape == (1, 10)
        np.testing.assert_allclose(out.sum(), 1.0)

    def test_explicit_weights(self):
        weight = np.eye(4).reshape(4, 4)
        spec = {
            "input_shape": [1, 4],
            "layers": [
                {"op": "dense", "units": 4, "bias": False, "weight": weight},
            ],
        }
        graph = from_native(spec)
        data = np.array([[1.0, 2.0, 3.0, 4.0]])
        np.testing.assert_allclose(compile_graph(graph)(data), data)

    def test_weight_shape_mismatch(self):
        spec = {
            "input_shape": [1, 4],
            "layers": [
                {"op": "dense", "units": 4, "weight": np.ones((3, 3))},
            ],
        }
        with pytest.raises(FrontendError, match="shape"):
            from_native(spec)

    def test_missing_fields(self):
        with pytest.raises(FrontendError, match="input_shape"):
            from_native({"layers": [{"op": "relu"}]})
        with pytest.raises(FrontendError, match="layers"):
            from_native({"input_shape": [1, 4]})
        with pytest.raises(FrontendError, match="unsupported op"):
            from_native({"input_shape": [1, 4], "layers": [{"op": "wat"}]})


class TestTorchlikeFrontend:
    def test_sequential_model(self, rng):
        model = tl.Sequential(
            tl.Conv2d(3, 8, 3, padding=1),
            tl.ReLU(),
            tl.MaxPool2d(2),
            tl.Flatten(),
            tl.Linear(8 * 8 * 8, 10),
            tl.Softmax(),
        )
        graph = from_torchlike(model, (1, 3, 16, 16))
        out = compile_graph(graph)(rng.normal(size=(1, 3, 16, 16)))
        assert out.shape == (1, 10)

    def test_explicit_weights_respected(self):
        linear = tl.Linear(4, 4, bias=False, weight=np.eye(4))
        graph = from_torchlike(tl.Sequential(linear), (1, 4))
        data = np.array([[1.0, -2.0, 3.0, 0.5]])
        np.testing.assert_allclose(compile_graph(graph)(data), data)

    def test_nested_sequential_flattened(self, rng):
        model = tl.Sequential(
            tl.Sequential(tl.Conv2d(1, 2, 3), tl.ReLU()),
            tl.Sequential(tl.Flatten(), tl.Linear(2 * 6 * 6, 3)),
        )
        graph = from_torchlike(model, (1, 1, 8, 8))
        assert compile_graph(graph)(rng.normal(size=(1, 1, 8, 8))).shape == (1, 3)

    def test_lrn_and_dropout_supported(self, rng):
        model = tl.Sequential(
            tl.Conv2d(1, 2, 3), tl.LocalResponseNorm(size=3), tl.Dropout()
        )
        graph = from_torchlike(model, (1, 1, 8, 8))
        assert compile_graph(graph)(rng.normal(size=(1, 1, 8, 8))).shape == (1, 2, 6, 6)

    def test_unsupported_module(self):
        class Strange(tl.Module):
            pass

        with pytest.raises(FrontendError, match="unsupported"):
            from_torchlike(tl.Sequential(Strange()), (1, 4))


class TestOnnxlikeFrontend:
    def _model(self, rng):
        return {
            "graph": {
                "name": "o",
                "input": [{"name": "x", "shape": [1, 2, 8, 8]}],
                "initializer": [
                    {
                        "name": "w",
                        "shape": [4, 2, 3, 3],
                        "data": rng.normal(size=72).tolist(),
                    },
                    {"name": "b", "shape": [4], "data": [0.0, 1.0, 2.0, 3.0]},
                ],
                "node": [
                    {
                        "op_type": "Conv",
                        "input": ["x", "w", "b"],
                        "output": ["c"],
                        "attributes": {"pads": [1, 1, 1, 1]},
                    },
                    {"op_type": "Relu", "input": ["c"], "output": ["r"]},
                    {"op_type": "MaxPool", "input": ["r"], "output": ["p"],
                     "attributes": {"kernel_shape": [2, 2], "strides": [2, 2]}},
                    {"op_type": "Flatten", "input": ["p"], "output": ["f"]},
                ],
                "output": [{"name": "f"}],
            }
        }

    def test_dag_wiring(self, rng):
        graph = from_onnxlike(self._model(rng))
        out = compile_graph(graph)(rng.normal(size=(1, 2, 8, 8)))
        assert out.shape == (1, 4 * 4 * 4)

    def test_conv_bias_applied(self, rng):
        model = self._model(rng)
        graph = from_onnxlike(model)
        names = [n.op_name for n in graph.op_nodes()]
        assert "bias_add" in names

    def test_gemm_trans_requirements(self):
        model = {
            "graph": {
                "input": [{"name": "x", "shape": [1, 4]}],
                "initializer": [
                    {"name": "w", "shape": [2, 4], "data": [1.0] * 8}
                ],
                "node": [
                    {"op_type": "Gemm", "input": ["x", "w"], "output": ["y"],
                     "attributes": {"transB": 0}},
                ],
            }
        }
        with pytest.raises(FrontendError, match="transB"):
            from_onnxlike(model)

    def test_undefined_input_rejected(self):
        model = {
            "graph": {
                "input": [{"name": "x", "shape": [1, 4]}],
                "node": [
                    {"op_type": "Relu", "input": ["nope"], "output": ["y"]},
                ],
            }
        }
        with pytest.raises(FrontendError, match="not defined"):
            from_onnxlike(model)

    def test_asymmetric_pads_rejected(self, rng):
        model = self._model(rng)
        model["graph"]["node"][0]["attributes"]["pads"] = [1, 1, 2, 2]
        with pytest.raises(FrontendError, match="asymmetric"):
            from_onnxlike(model)


class TestKeraslikeFrontend:
    def _model(self):
        return {
            "class_name": "Sequential",
            "config": {
                "name": "k",
                "layers": [
                    {
                        "class_name": "Conv2D",
                        "config": {
                            "filters": 4,
                            "kernel_size": 3,
                            "padding": "same",
                            "activation": "relu",
                            "batch_input_shape": [None, 8, 8, 3],
                        },
                    },
                    {"class_name": "MaxPooling2D", "config": {}},
                    {"class_name": "Flatten", "config": {}},
                    {
                        "class_name": "Dense",
                        "config": {"units": 5, "activation": "softmax"},
                    },
                ],
            },
        }

    def test_nhwc_input_converted_to_nchw(self, rng):
        graph = from_keraslike(self._model())
        first = graph.nodes[graph.input_ids[0]]
        assert first.ttype.shape == (1, 3, 8, 8)
        out = compile_graph(graph)(rng.normal(size=(1, 3, 8, 8)))
        assert out.shape == (1, 5)

    def test_same_padding_even_kernel_rejected(self):
        model = self._model()
        model["config"]["layers"][0]["config"]["kernel_size"] = 4
        with pytest.raises(FrontendError, match="odd kernels"):
            from_keraslike(model)

    def test_non_sequential_rejected(self):
        with pytest.raises(FrontendError, match="Sequential"):
            from_keraslike({"class_name": "Functional", "config": {}})

    def test_unknown_activation_rejected(self):
        model = self._model()
        model["config"]["layers"][0]["config"]["activation"] = "mish"
        with pytest.raises(FrontendError, match="activation"):
            from_keraslike(model)
