"""Tests for the energy model extension (the paper's future-work item)."""

import pytest

from repro.errors import SimulationError
from repro.stonne import (
    ConvLayer,
    ConvMapping,
    EnergyTable,
    FcLayer,
    FcMapping,
    MaeriController,
    attach_energy,
    estimate_energy,
    maeri_config,
    sigma_config,
)
from repro.stonne.sigma import SigmaController
from repro.tuner import GridSearchTuner, MaeriFcTask


@pytest.fixture
def conv_stats():
    controller = MaeriController(maeri_config())
    layer = ConvLayer("c", C=8, H=10, W=10, K=16, R=3, S=3)
    return controller.run_conv(layer, ConvMapping(T_R=3, T_S=3, T_C=8))


class TestEnergyTable:
    def test_defaults_positive(self):
        table = EnergyTable()
        assert table.mac == 1.0
        assert table.buffer_read > table.dn_transfer > 0

    def test_rejects_negative_costs(self):
        with pytest.raises(SimulationError):
            EnergyTable(mac=-1.0)


class TestEstimateEnergy:
    def test_breakdown_sums_to_total(self, conv_stats):
        breakdown = estimate_energy(conv_stats)
        total = (
            breakdown.compute + breakdown.distribution + breakdown.reduction
            + breakdown.buffers + breakdown.accumulation + breakdown.leakage
        )
        assert breakdown.total == pytest.approx(total)
        assert breakdown.total > 0

    def test_compute_term_is_macs(self, conv_stats):
        breakdown = estimate_energy(conv_stats)
        assert breakdown.compute == pytest.approx(conv_stats.macs)

    def test_zero_leakage_table(self, conv_stats):
        table = EnergyTable(leakage_per_cycle_per_pe=0.0)
        assert estimate_energy(conv_stats, table).leakage == 0.0

    def test_attach_energy_fills_stats(self, conv_stats):
        assert conv_stats.energy is None
        attach_energy(conv_stats)
        assert conv_stats.energy == pytest.approx(
            estimate_energy(conv_stats).total
        )

    def test_summary_mentions_components(self, conv_stats):
        text = estimate_energy(conv_stats).summary()
        assert "compute" in text and "leakage" in text


class TestEnergyBehaviour:
    def test_slow_mappings_cost_more_energy(self):
        """Leakage couples energy to runtime: the basic mapping burns far
        more total energy than a good one despite identical MAC counts."""
        controller = MaeriController(maeri_config())
        layer = FcLayer("f", in_features=512, out_features=256)
        good = estimate_energy(
            controller.run_fc(layer, FcMapping(T_S=16, T_K=8))
        ).total
        bad = estimate_energy(controller.run_fc(layer, FcMapping.basic())).total
        assert bad > 2 * good

    def test_sigma_sparsity_saves_energy(self):
        layer = FcLayer("f", in_features=2048, out_features=1024)
        dense = SigmaController(sigma_config(sparsity_ratio=0)).run_fc(layer)
        sparse = SigmaController(sigma_config(sparsity_ratio=50)).run_fc(layer)
        assert estimate_energy(sparse).total < estimate_energy(dense).total


class TestEnergyObjective:
    def test_tuner_accepts_energy_objective(self):
        layer = FcLayer("f", in_features=256, out_features=128)
        task = MaeriFcTask(layer, maeri_config(), objective="energy")
        result = GridSearchTuner(task).tune(n_trials=2000)
        assert result.best_config is not None
        # Energy-optimal FC avoids spatial-adder psum traffic entirely.
        assert task.best_mapping(result.best_config).T_K == 1

    def test_energy_and_cycle_optima_trade_off(self):
        """Each objective's optimum wins on its own metric (a real Pareto
        trade-off, not a degenerate single optimum)."""
        from repro.stonne.maeri import MaeriController

        layer = FcLayer("f", in_features=256, out_features=128)
        controller = MaeriController(maeri_config())

        def best(objective):
            task = MaeriFcTask(layer, maeri_config(), objective=objective)
            result = GridSearchTuner(task).tune(n_trials=2000)
            return task.best_mapping(result.best_config)

        cyc_map, ene_map = best("cycles"), best("energy")
        cyc_stats = controller.run_fc(layer, cyc_map)
        ene_stats = controller.run_fc(layer, ene_map)
        assert cyc_stats.cycles <= ene_stats.cycles
        assert (
            estimate_energy(ene_stats).total <= estimate_energy(cyc_stats).total
        )
