"""Scalar-vs-batch parity for the vectorized batch kernels.

The batch-kernel contract (``AcceleratorController``): for any mapping
chunk, ``run_*_batch`` returns, per item and in order, exactly what the
scalar call would have produced — the same bit-identical
``SimulationStats`` (cycles, psums, traffic, phase_cycles, batch-N
``repeated`` semantics) or an exception of the same type and message —
with per-item failures isolated instead of poisoning the batch.  These
tests pin that contract with seeded randomized sweeps over all four
controllers plus the structural edge cases (vn_size=1,
reduction_folds=1, batch-N>1, invalid rows mid-batch) and the grouped
chunk path the engine routes through.
"""

import random

import pytest

from repro.engine.backends import simulate_chunk, simulate_layer_batch
from repro.stonne.config import (
    magma_config,
    maeri_config,
    sigma_config,
    tpu_config,
)
from repro.stonne.controller import AcceleratorController, make_controller
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer
from repro.stonne.mapping import ConvMapping, FcMapping

GEMM_CONFIGS = [sigma_config(), tpu_config(), magma_config()]


def _canon(results):
    """Payloads as comparable values: stats dict, int estimate, or the
    exception's type and message."""
    out = []
    for result in results:
        if isinstance(result, Exception):
            out.append((type(result).__name__, str(result)))
        elif hasattr(result, "to_dict"):
            out.append(result.to_dict())
        else:
            out.append(result)
    return out


def _scalar(controller, method, *args):
    """The base-class default batch method — the per-item scalar loop."""
    return getattr(AcceleratorController, method)(controller, *args)


def _random_conv_mappings(seed, count, spread):
    rnd = random.Random(seed)
    return [
        ConvMapping(
            T_R=rnd.randint(1, spread), T_S=rnd.randint(1, spread),
            T_C=rnd.randint(1, spread), T_K=rnd.randint(1, spread),
            T_G=1, T_N=1,
            T_X=rnd.randint(1, spread), T_Y=rnd.randint(1, spread),
        )
        for _ in range(count)
    ]


def _random_fc_mappings(seed, count, spread):
    rnd = random.Random(seed)
    return [
        FcMapping(
            T_S=rnd.randint(1, spread), T_K=rnd.randint(1, spread),
            T_N=rnd.randint(1, 2),
        )
        for _ in range(count)
    ]


# ----------------------------------------------------------------------
# MAERI: the mapping-driven kernels
# ----------------------------------------------------------------------
class TestMaeriParity:
    def _controller(self, **kwargs):
        return make_controller(maeri_config(**kwargs))

    @pytest.mark.parametrize("batch_n", [1, 3])
    def test_randomized_conv_sweep(self, batch_n):
        # The spread makes a healthy mix of valid and invalid rows, so
        # error isolation is exercised mid-batch, not in a corner.
        layer = ConvLayer(
            "c", C=8, H=12, W=12, K=16, R=3, S=3, pad_h=1, pad_w=1,
            stride_h=2, N=batch_n,
        )
        mappings = _random_conv_mappings(seed=11 + batch_n, count=300, spread=6)
        controller = self._controller(ms_size=64)
        batch = controller.run_conv_batch(layer, mappings)
        scalar = _scalar(controller, "run_conv_batch", layer, mappings)
        assert _canon(batch) == _canon(scalar)
        assert any(isinstance(r, Exception) for r in batch)
        assert any(not isinstance(r, Exception) for r in batch)

    @pytest.mark.parametrize("batch", [1, 4])
    def test_randomized_fc_sweep(self, batch):
        layer = FcLayer("f", in_features=24, out_features=36, batch=batch)
        mappings = _random_fc_mappings(seed=5 + batch, count=300, spread=16)
        controller = self._controller(ms_size=64)
        assert _canon(controller.run_fc_batch(layer, mappings)) == _canon(
            _scalar(controller, "run_fc_batch", layer, mappings)
        )

    def test_reduction_network_variants(self):
        layer = ConvLayer("c", C=6, H=10, W=10, K=8, R=3, S=3)
        mappings = _random_conv_mappings(seed=3, count=120, spread=4)
        for reduce_network_type in ("ASNETWORK", "FENETWORK"):
            controller = self._controller(
                ms_size=128, reduce_network_type=reduce_network_type
            )
            assert _canon(
                controller.run_conv_batch(layer, mappings)
            ) == _canon(
                _scalar(controller, "run_conv_batch", layer, mappings)
            )

    def test_edge_mappings(self):
        # vn_size=1 (all spatial tiles 1), reduction_folds=1 (tiles
        # cover R/S/C exactly), and the all-ones basic mapping.
        layer = ConvLayer("c", C=4, H=8, W=8, K=4, R=3, S=3)
        mappings = [
            ConvMapping(),  # vn_size=1 AND maximal reduction folds
            ConvMapping(T_K=4, T_X=2, T_Y=2),  # vn_size=1, parallel only
            ConvMapping(T_R=3, T_S=3, T_C=4),  # reduction_folds=1
            ConvMapping(T_R=3, T_S=3, T_C=4, T_K=2),  # folds=1, spread
        ]
        for mapping in mappings:
            assert mapping.validate_for(layer, 128) is None
        controller = self._controller(ms_size=128)
        batch = controller.run_conv_batch(layer, mappings)
        assert _canon(batch) == _canon(
            _scalar(controller, "run_conv_batch", layer, mappings)
        )
        assert not any(isinstance(r, Exception) for r in batch)

    def test_invalid_items_isolated_mid_batch(self):
        layer = ConvLayer("c", C=4, H=8, W=8, K=4, R=3, S=3)
        mappings = [
            ConvMapping(),
            ConvMapping(T_K=512),        # capacity blowout
            ConvMapping(T_R=3, T_S=3),
            ConvMapping(T_X=layer.P + 1),  # layer-bound violation
            ConvMapping(T_C=4),
        ]
        controller = self._controller(ms_size=128)
        batch = controller.run_conv_batch(layer, mappings)
        assert _canon(batch) == _canon(
            _scalar(controller, "run_conv_batch", layer, mappings)
        )
        assert [isinstance(r, Exception) for r in batch] == [
            False, True, False, True, False,
        ]

    def test_estimate_batches(self):
        conv = ConvLayer("c", C=8, H=12, W=12, K=8, R=3, S=3, N=2)
        fc = FcLayer("f", in_features=30, out_features=20, batch=2)
        conv_maps = _random_conv_mappings(seed=9, count=200, spread=5)
        fc_maps = _random_fc_mappings(seed=9, count=200, spread=12)
        controller = self._controller(ms_size=64)
        assert controller.estimate_conv_psums_batch(conv, conv_maps) and (
            _canon(controller.estimate_conv_psums_batch(conv, conv_maps))
            == _canon(
                _scalar(controller, "estimate_conv_psums_batch", conv, conv_maps)
            )
        )
        assert _canon(
            controller.estimate_fc_psums_batch(fc, fc_maps)
        ) == _canon(
            _scalar(controller, "estimate_fc_psums_batch", fc, fc_maps)
        )

    def test_accumulator_tallies_match_scalar(self):
        layer = ConvLayer("c", C=4, H=8, W=8, K=8, R=3, S=3)
        mappings = _random_conv_mappings(seed=21, count=80, spread=4)
        batch_controller = self._controller(ms_size=64)
        scalar_controller = self._controller(ms_size=64)
        batch = batch_controller.run_conv_batch(layer, mappings)
        scalar = _scalar(scalar_controller, "run_conv_batch", layer, mappings)
        assert _canon(batch) == _canon(scalar)
        assert (
            batch_controller.accumulator.reads
            == scalar_controller.accumulator.reads
        )
        assert (
            batch_controller.accumulator.writes
            == scalar_controller.accumulator.writes
        )
        assert batch_controller.accumulator.writes > 0


# ----------------------------------------------------------------------
# SIGMA / TPU / MAGMA: the lowered-GEMM kernels
# ----------------------------------------------------------------------
class TestGemmParity:
    @pytest.mark.parametrize(
        "config", GEMM_CONFIGS, ids=lambda c: c.controller_type.value
    )
    def test_randomized_gemm_sweep(self, config):
        rnd = random.Random(17)
        gemms = [
            GemmLayer(
                f"g{i}",
                M=rnd.randint(1, 300),
                K=rnd.randint(1, 300),
                N=rnd.randint(1, 300),
            )
            for i in range(150)
        ]
        controller = make_controller(config)
        assert _canon(controller.run_gemm_batch(gemms)) == _canon(
            _scalar(controller, "run_gemm_batch", gemms)
        )

    @pytest.mark.parametrize(
        "config", GEMM_CONFIGS, ids=lambda c: c.controller_type.value
    )
    @pytest.mark.parametrize("batch_n", [1, 3])
    def test_lowered_conv_and_fc(self, config, batch_n):
        conv = ConvLayer("c", C=8, H=10, W=10, K=8, R=3, S=3, N=batch_n)
        fc = FcLayer("f", in_features=64, out_features=32, batch=batch_n)
        controller = make_controller(config)
        # Mappings are ignored by these controllers; None stands in.
        for layer, method in ((conv, "run_conv_batch"), (fc, "run_fc_batch")):
            batch = getattr(controller, method)(layer, [None] * 5)
            scalar = _scalar(controller, method, layer, [None] * 5)
            assert _canon(batch) == _canon(scalar)
            assert not any(isinstance(r, Exception) for r in batch)
            # Independent copies: mutating one must not alias another.
            batch[0].layer_name = "mutated"
            assert batch[1].layer_name == layer.name

    @pytest.mark.parametrize(
        "config", GEMM_CONFIGS, ids=lambda c: c.controller_type.value
    )
    def test_overflow_rows_replay_scalar(self, config):
        gemms = [
            GemmLayer("small", M=4, K=4, N=4),
            GemmLayer("huge", M=2 ** 31, K=2 ** 31, N=2 ** 20),
        ]
        controller = make_controller(config)
        assert _canon(controller.run_gemm_batch(gemms)) == _canon(
            _scalar(controller, "run_gemm_batch", gemms)
        )


# ----------------------------------------------------------------------
# Engine routing: grouped chunks and the scalar seam
# ----------------------------------------------------------------------
class TestSimulateChunk:
    def test_grouped_chunk_matches_scalar_loop(self):
        layer_a = ConvLayer("a", C=4, H=8, W=8, K=4, R=3, S=3)
        layer_b = FcLayer("b", in_features=16, out_features=8)
        pairs = (
            [(layer_a, m) for m in _random_conv_mappings(3, 40, 4)]
            + [(layer_b, m) for m in _random_fc_mappings(3, 40, 6)]
        )
        random.Random(0).shuffle(pairs)
        controller = make_controller(maeri_config(ms_size=64))
        reference = make_controller(maeri_config(ms_size=64))
        chunk = simulate_chunk(controller, pairs, functional=False)
        loop = []
        for layer, mapping in pairs:
            try:
                loop.append(reference.run_conv(layer, mapping)
                            if isinstance(layer, ConvLayer)
                            else reference.run_fc(layer, mapping))
            except Exception as exc:
                loop.append(exc)
        assert _canon(chunk) == _canon(loop)

    def test_singletons_use_scalar_seam(self, monkeypatch):
        # The scheduler bench (and tests) monkeypatch simulate_layer;
        # singleton groups must keep flowing through that seam.
        import repro.engine.backends as backends_mod

        calls = []
        real = backends_mod.simulate_layer

        def spy(controller, layer, mapping, functional):
            calls.append(layer.name)
            return real(controller, layer, mapping, functional)

        monkeypatch.setattr(backends_mod, "simulate_layer", spy)
        controller = make_controller(maeri_config(ms_size=64))
        repeated = ConvLayer("dup", C=4, H=8, W=8, K=4, R=3, S=3)
        single = FcLayer("solo", in_features=8, out_features=8)
        pairs = [
            (repeated, ConvMapping()),
            (single, FcMapping()),
            (repeated, ConvMapping(T_K=2)),
        ]
        simulate_chunk(controller, pairs, functional=False)
        # The repeated conv layer formed a batch group (no seam calls);
        # the singleton FC went through the patched scalar seam.
        assert calls == ["solo"]

    def test_gemm_group_batches(self):
        layer = GemmLayer("g", M=32, K=16, N=8)
        controller = make_controller(sigma_config())
        chunk = simulate_chunk(
            controller, [(layer, None)] * 4, functional=False
        )
        scalar = [controller.run_gemm(layer) for _ in range(4)]
        assert _canon(chunk) == _canon(scalar)

    def test_duck_typed_controller_falls_back(self):
        class Duck:
            def run_conv(self, layer, mapping=None):
                return ("conv", layer.name, mapping)

        layer = ConvLayer("d", C=2, H=4, W=4, K=2, R=1, S=1)
        out = simulate_layer_batch(Duck(), layer, [None, ConvMapping()])
        assert out == [("conv", "d", None), ("conv", "d", ConvMapping())]
