"""Tests for the STONNE-Bifrost API and its packed-function registry."""

import numpy as np
import pytest

from repro.bifrost import (
    MappingConfigurator,
    MappingStrategy,
    StonneBifrostApi,
    get_packed_func,
    register_packed_funcs,
    registered_packed_funcs,
)
from repro.errors import LayerError, SimulationError
from repro.stonne.config import maeri_config, sigma_config, tpu_config
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.topi import conv2d_nchw, dense as dense_ref, kcrs_to_rsck, nchw_to_nhwc, nhwc_to_nchw


def make_api(config, strategy=MappingStrategy.DEFAULT):
    return StonneBifrostApi(
        config=config,
        mappings=MappingConfigurator(config=config, strategy=strategy),
    )


class TestConv2dNchw:
    def test_output_matches_reference_all_architectures(self, rng):
        data = rng.normal(size=(1, 3, 10, 10))
        weights = rng.normal(size=(4, 3, 3, 3))
        expected = conv2d_nchw(data, weights, strides=(2, 2), padding=(1, 1))
        for config in (maeri_config(), sigma_config(), tpu_config()):
            api = make_api(config)
            out = api.conv2d_nchw(data, weights, strides=(2, 2), padding=(1, 1))
            np.testing.assert_allclose(out, expected, rtol=1e-9)

    def test_stats_recorded_per_layer(self, rng, maeri128):
        api = make_api(maeri128)
        data = rng.normal(size=(1, 2, 8, 8))
        weights = rng.normal(size=(4, 2, 3, 3))
        api.conv2d_nchw(data, weights, layer_name="convA")
        api.conv2d_nchw(data, weights, layer_name="convA")
        assert [s.layer_name for s in api.stats] == ["convA", "convA#1"]
        assert api.total_cycles() == sum(s.cycles for s in api.stats)

    def test_reset_stats(self, rng, maeri128):
        api = make_api(maeri128)
        api.conv2d_nchw(
            rng.normal(size=(1, 2, 8, 8)), rng.normal(size=(4, 2, 3, 3))
        )
        api.reset_stats()
        assert api.stats == [] and api.total_cycles() == 0

    def test_rejects_bad_rank(self, rng, maeri128):
        api = make_api(maeri128)
        with pytest.raises(LayerError):
            api.conv2d_nchw(rng.normal(size=(3, 8, 8)), rng.normal(size=(4, 3, 3, 3)))


class TestConv2dNhwc:
    def test_nhwc_equals_nchw_path(self, rng, maeri128):
        data = rng.normal(size=(1, 3, 10, 10))
        weights = rng.normal(size=(4, 3, 3, 3))
        api = make_api(maeri128)
        out_nchw = api.conv2d_nchw(data, weights, padding=(1, 1))
        out_nhwc = api.conv2d_nhwc(
            nchw_to_nhwc(data), kcrs_to_rsck(weights), padding=(1, 1)
        )
        np.testing.assert_allclose(nhwc_to_nchw(out_nhwc), out_nchw, rtol=1e-9)


class TestDense:
    def test_output_matches_reference(self, rng):
        data = rng.normal(size=(1, 64))
        weights = rng.normal(size=(32, 64))
        for config in (maeri_config(), sigma_config(), tpu_config()):
            api = make_api(config)
            np.testing.assert_allclose(
                api.dense(data, weights), dense_ref(data, weights), rtol=1e-9
            )

    def test_batch_n_output_and_sequential_stats(self, rng, maeri128):
        """Batch-N dense: exact outputs for every row, stats = N runs."""
        data = rng.normal(size=(3, 8))
        weights = rng.normal(size=(4, 8))
        api = make_api(maeri128)
        out = api.dense(data, weights)
        np.testing.assert_allclose(out, dense_ref(data, weights), rtol=1e-9)
        single = make_api(maeri128)
        single.dense(data[:1], weights)
        assert api.stats[0].cycles == 3 * single.stats[0].cycles


class TestSparsityPath:
    def test_sigma_prunes_weights_functionally(self, rng):
        """At 100% sparsity the output must be exactly zero."""
        api = make_api(sigma_config(sparsity_ratio=100))
        out = api.dense(rng.normal(size=(1, 16)), rng.normal(size=(8, 16)))
        np.testing.assert_array_equal(out, np.zeros((1, 8)))

    def test_sigma_sparsity_reduces_cycles(self, rng):
        data = rng.normal(size=(1, 512))
        weights = rng.normal(size=(256, 512))
        dense_api = make_api(sigma_config(sparsity_ratio=0))
        sparse_api = make_api(sigma_config(sparsity_ratio=50))
        dense_api.dense(data, weights)
        sparse_api.dense(data, weights)
        assert sparse_api.total_cycles() < dense_api.total_cycles()

    def test_maeri_never_prunes(self, rng, maeri128):
        api = make_api(maeri128)
        weights = rng.normal(size=(8, 16))
        out = api.dense(np.ones((1, 16)), weights)
        np.testing.assert_allclose(out, np.ones((1, 16)) @ weights.T)


class TestManualMappings:
    def test_manual_mapping_changes_cycles(self, rng, maeri128):
        data = rng.normal(size=(1, 64))
        weights = rng.normal(size=(32, 64))

        api_basic = make_api(maeri128)
        api_basic.dense(data, weights, layer_name="fc")

        mappings = MappingConfigurator(config=maeri128)
        mappings.set_manual("fc", FcMapping(T_S=16, T_K=8))
        api_manual = StonneBifrostApi(config=maeri128, mappings=mappings)
        api_manual.dense(data, weights, layer_name="fc")

        assert api_manual.total_cycles() < api_basic.total_cycles()

    def test_manual_wrong_kind_rejected(self, rng, maeri128):
        mappings = MappingConfigurator(config=maeri128)
        mappings.set_manual("fc", ConvMapping())
        api = StonneBifrostApi(config=maeri128, mappings=mappings)
        from repro.errors import MappingError

        with pytest.raises(MappingError, match="fully connected"):
            api.dense(rng.normal(size=(1, 8)), rng.normal(size=(4, 8)),
                      layer_name="fc")


class TestPackedFunctionRegistry:
    def test_tvm_style_names(self, maeri128):
        api = make_api(maeri128)
        register_packed_funcs(api)
        names = registered_packed_funcs()
        assert "tvm.contrib.stonne.conv2d.nchw" in names
        assert "tvm.contrib.stonne.dense" in names
        assert get_packed_func("tvm.contrib.stonne.dense") == api.dense

    def test_unknown_name_raises(self):
        with pytest.raises(SimulationError, match="not registered"):
            get_packed_func("tvm.contrib.stonne.nonexistent")
