"""Tests for the gradient-boosted-trees surrogate model."""

import numpy as np
import pytest

from repro.errors import TuningError
from repro.tuner.gbt import GradientBoostedTrees, RegressionTree


@pytest.fixture
def step_data(rng):
    """A noiseless step function a single split can capture."""
    x = rng.uniform(-1, 1, size=(200, 1))
    y = np.where(x[:, 0] > 0.2, 3.0, -1.0)
    return x, y


class TestRegressionTree:
    def test_fits_step_function(self, step_data):
        x, y = step_data
        tree = RegressionTree(max_depth=2).fit(x, y)
        pred = tree.predict(x)
        assert np.abs(pred - y).max() < 1e-9

    def test_depth_one_is_stump(self, rng):
        x = rng.uniform(0, 1, size=(100, 2))
        y = x[:, 0] + 10 * (x[:, 1] > 0.5)
        stump = RegressionTree(max_depth=1).fit(x, y)
        assert len(np.unique(stump.predict(x))) <= 2

    def test_constant_target_predicts_constant(self, rng):
        x = rng.uniform(0, 1, size=(50, 3))
        tree = RegressionTree().fit(x, np.full(50, 7.0))
        np.testing.assert_allclose(tree.predict(x), 7.0)

    def test_min_samples_leaf_respected(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0.0, 1.0, 100.0])
        tree = RegressionTree(max_depth=3, min_samples_leaf=2).fit(x, y)
        # only one split possible: leaves of size >= 2 cannot isolate 100
        assert len(np.unique(tree.predict(x))) <= 1

    def test_errors(self):
        with pytest.raises(TuningError):
            RegressionTree(max_depth=0)
        with pytest.raises(TuningError):
            RegressionTree().fit(np.ones((3, 2)), np.ones(4))
        with pytest.raises(TuningError):
            RegressionTree().predict(np.ones((1, 2)))


class TestGradientBoostedTrees:
    def test_fits_nonlinear_surface(self, rng):
        x = rng.uniform(-1, 1, size=(300, 2))
        y = x[:, 0] ** 2 + np.sin(3 * x[:, 1])
        model = GradientBoostedTrees(n_estimators=60, learning_rate=0.3).fit(x, y)
        residual = np.abs(model.predict(x) - y)
        assert residual.mean() < 0.1

    def test_boosting_improves_over_single_tree(self, rng):
        x = rng.uniform(-1, 1, size=(300, 2))
        y = x[:, 0] * x[:, 1]
        single = RegressionTree(max_depth=3).fit(x, y).predict(x)
        boosted = GradientBoostedTrees(n_estimators=40).fit(x, y).predict(x)
        assert np.abs(boosted - y).mean() < np.abs(single - y).mean()

    def test_ranking_quality(self, rng):
        """The tuner only needs ranking: top-predicted should be near-best."""
        x = rng.uniform(0, 1, size=(400, 3))
        y = 5 * x[:, 0] + 2 * x[:, 1] ** 2
        model = GradientBoostedTrees(n_estimators=40).fit(x[:300], y[:300])
        pred = model.predict(x[300:])
        true = y[300:]
        picked = np.argmin(pred)
        assert true[picked] <= np.quantile(true, 0.2)

    def test_is_fitted_flag(self, rng):
        model = GradientBoostedTrees()
        assert not model.is_fitted
        model.fit(rng.uniform(size=(10, 2)), rng.uniform(size=10))
        assert model.is_fitted

    def test_parameter_validation(self):
        with pytest.raises(TuningError):
            GradientBoostedTrees(n_estimators=0)
        with pytest.raises(TuningError):
            GradientBoostedTrees(learning_rate=0.0)
        with pytest.raises(TuningError):
            GradientBoostedTrees().fit(np.ones((0, 2)), np.ones(0))
