"""Unit tests for workload descriptors (paper Table II)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LayerError
from repro.stonne.layer import (
    ConvLayer,
    FcLayer,
    GemmLayer,
    ceil_div,
    is_power_of_two,
    next_power_of_two,
)


class TestConvLayer:
    def test_output_dims_basic(self):
        layer = ConvLayer("c", C=3, H=10, W=10, K=4, R=3, S=3)
        assert (layer.P, layer.Q) == (8, 8)

    def test_output_dims_stride_pad(self):
        layer = ConvLayer(
            "c", C=3, H=224, W=224, K=64, R=11, S=11,
            stride_h=4, stride_w=4, pad_h=2, pad_w=2,
        )
        assert (layer.P, layer.Q) == (55, 55)

    def test_macs_counts_groups(self):
        dense = ConvLayer("c", C=4, H=6, W=6, K=8, R=3, S=3)
        grouped = ConvLayer("g", C=4, H=6, W=6, K=8, R=3, S=3, G=2)
        assert grouped.macs == dense.macs // 2

    def test_element_counts(self):
        layer = ConvLayer("c", C=3, H=10, W=10, K=4, R=3, S=3)
        assert layer.input_elements == 300
        assert layer.weight_elements == 4 * 3 * 9
        assert layer.output_elements == 4 * 8 * 8

    def test_as_gemm_im2col_dimensions(self):
        layer = ConvLayer("c", C=3, H=10, W=10, K=4, R=3, S=3)
        gemm = layer.as_gemm()
        assert (gemm.M, gemm.K, gemm.N) == (4, 27, 64)
        assert gemm.macs == layer.macs

    def test_accepts_batch_n(self):
        """Batch-N descriptors are legal; MACs scale with the batch."""
        single = ConvLayer("c", C=3, H=10, W=10, K=4, R=3, S=3)
        batched = ConvLayer("c", C=3, H=10, W=10, K=4, R=3, S=3, N=2)
        assert batched.macs == 2 * single.macs

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(LayerError):
            ConvLayer("c", C=0, H=10, W=10, K=4, R=3, S=3)
        with pytest.raises(LayerError):
            ConvLayer("c", C=3, H=10, W=10, K=4, R=3, S=-1)

    def test_rejects_filter_larger_than_padded_input(self):
        with pytest.raises(LayerError, match="larger than padded input"):
            ConvLayer("c", C=3, H=4, W=4, K=4, R=7, S=7)

    def test_rejects_bad_groups(self):
        with pytest.raises(LayerError, match="groups"):
            ConvLayer("c", C=3, H=8, W=8, K=4, R=3, S=3, G=2)

    def test_describe_mentions_name_and_macs(self):
        layer = ConvLayer("convX", C=3, H=10, W=10, K=4, R=3, S=3)
        text = layer.describe()
        assert "convX" in text and "MACs" in text

    @given(
        c=st.integers(1, 8), hw=st.integers(3, 20),
        k=st.integers(1, 8), rs=st.integers(1, 3),
        stride=st.integers(1, 3), pad=st.integers(0, 2),
    )
    def test_output_dims_positive_property(self, c, hw, k, rs, stride, pad):
        layer = ConvLayer(
            "p", C=c, H=hw, W=hw, K=k, R=rs, S=rs,
            stride_h=stride, stride_w=stride, pad_h=pad, pad_w=pad,
        )
        assert layer.P >= 1 and layer.Q >= 1
        assert layer.macs == k * layer.P * layer.Q * rs * rs * c


class TestFcLayer:
    def test_macs(self):
        layer = FcLayer("f", in_features=8, out_features=4)
        assert layer.macs == 32

    def test_as_gemm(self):
        layer = FcLayer("f", in_features=8, out_features=4)
        gemm = layer.as_gemm()
        assert (gemm.M, gemm.K, gemm.N) == (4, 8, 1)

    def test_accepts_batch_n(self):
        single = FcLayer("f", in_features=8, out_features=4)
        batched = FcLayer("f", in_features=8, out_features=4, batch=2)
        assert batched.macs == 2 * single.macs

    def test_rejects_nonpositive(self):
        with pytest.raises(LayerError):
            FcLayer("f", in_features=0, out_features=4)


class TestGemmLayer:
    def test_macs_and_outputs(self):
        gemm = GemmLayer("g", M=4, K=8, N=2)
        assert gemm.macs == 64
        assert gemm.output_elements == 8

    def test_rejects_nonpositive(self):
        with pytest.raises(LayerError):
            GemmLayer("g", M=0, K=8, N=2)


class TestHelpers:
    @given(a=st.integers(0, 10_000), b=st.integers(1, 500))
    def test_ceil_div_property(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a <= q * b or (a == 0 and q == 0)

    def test_ceil_div_rejects_zero_divisor(self):
        with pytest.raises(LayerError):
            ceil_div(5, 0)

    @pytest.mark.parametrize("x,expected", [
        (1, True), (2, True), (8, True), (128, True),
        (0, False), (3, False), (6, False), (-4, False), (True, False),
    ])
    def test_is_power_of_two(self, x, expected):
        assert is_power_of_two(x) is expected

    @given(x=st.integers(1, 1 << 20))
    def test_next_power_of_two_property(self, x):
        p = next_power_of_two(x)
        assert is_power_of_two(p) and p >= x and p // 2 < x
