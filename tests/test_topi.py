"""Tests for the operator inventory: conv2d, dense, pooling, activations,
normalization, layouts, and the strategy registry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError, LayerError
from repro.topi import (
    adaptive_avg_pool2d,
    avg_pool2d,
    batch_norm_inference,
    bias_add,
    conv2d_direct_nchw,
    conv2d_im2col_nchw,
    conv2d_nchw,
    conv2d_nhwc,
    conv2d_output_shape,
    dense,
    flatten,
    fold_batch_norm_into_conv,
    im2col_nchw,
    kcrs_to_rsck,
    leaky_relu,
    log_softmax,
    lookup_op,
    lrn,
    matmul,
    max_pool2d,
    nchw_to_nhwc,
    nhwc_to_nchw,
    register_op,
    registered_ops,
    relu,
    rsck_to_kcrs,
    sigmoid,
    softmax,
    tanh,
    unregister_op,
)


class TestConv2d:
    @given(
        c=st.integers(1, 4), hw=st.integers(4, 10), k=st.integers(1, 4),
        rs=st.integers(1, 3), stride=st.integers(1, 2), pad=st.integers(0, 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_im2col_matches_direct(self, c, hw, k, rs, stride, pad):
        rng = np.random.default_rng(c * 100 + hw)
        data = rng.normal(size=(1, c, hw, hw))
        weights = rng.normal(size=(k, c, rs, rs))
        fast = conv2d_im2col_nchw(data, weights, (stride, stride), (pad, pad))
        slow = conv2d_direct_nchw(data, weights, (stride, stride), (pad, pad))
        np.testing.assert_allclose(fast, slow, rtol=1e-10)

    def test_dilation(self, rng):
        data = rng.normal(size=(1, 2, 10, 10))
        weights = rng.normal(size=(3, 2, 3, 3))
        fast = conv2d_im2col_nchw(data, weights, dilation=(2, 2))
        slow = conv2d_direct_nchw(data, weights, dilation=(2, 2))
        np.testing.assert_allclose(fast, slow, rtol=1e-10)
        assert fast.shape == (1, 3, 6, 6)

    def test_groups(self, rng):
        data = rng.normal(size=(1, 4, 8, 8))
        weights = rng.normal(size=(8, 2, 3, 3))
        fast = conv2d_im2col_nchw(data, weights, groups=2)
        slow = conv2d_direct_nchw(data, weights, groups=2)
        np.testing.assert_allclose(fast, slow, rtol=1e-10)

    def test_nhwc_equivalent_to_nchw(self, rng):
        data = rng.normal(size=(1, 3, 9, 9))
        weights = rng.normal(size=(4, 3, 3, 3))
        out_nchw = conv2d_nchw(data, weights, padding=(1, 1))
        out_nhwc = conv2d_nhwc(nchw_to_nhwc(data), kcrs_to_rsck(weights),
                               padding=(1, 1))
        np.testing.assert_allclose(nhwc_to_nchw(out_nhwc), out_nchw, rtol=1e-10)

    def test_output_shape_errors(self):
        with pytest.raises(LayerError, match="empty"):
            conv2d_output_shape((1, 3, 4, 4), (4, 3, 7, 7))
        with pytest.raises(LayerError, match="groups"):
            conv2d_output_shape((1, 3, 8, 8), (4, 3, 3, 3), groups=2)

    def test_im2col_matrix_shape(self, rng):
        cols = im2col_nchw(rng.normal(size=(1, 3, 10, 10)), (3, 3))
        assert cols.shape == (1, 27, 64)

    def test_batched_input(self, rng):
        """The reference ops support N>1 even though STONNE does not."""
        data = rng.normal(size=(2, 3, 8, 8))
        weights = rng.normal(size=(4, 3, 3, 3))
        out = conv2d_im2col_nchw(data, weights)
        for n in range(2):
            np.testing.assert_allclose(
                out[n], conv2d_direct_nchw(data[n:n + 1], weights)[0], rtol=1e-10
            )


class TestDense:
    def test_linear_convention(self, rng):
        data = rng.normal(size=(2, 8))
        weights = rng.normal(size=(4, 8))
        np.testing.assert_allclose(dense(data, weights), data @ weights.T)

    def test_shape_errors(self, rng):
        with pytest.raises(LayerError):
            dense(rng.normal(size=(2, 8)), rng.normal(size=(4, 9)))
        with pytest.raises(LayerError):
            dense(rng.normal(size=8), rng.normal(size=(4, 8)))

    def test_bias_add_axes(self, rng):
        data = rng.normal(size=(1, 4, 3, 3))
        bias = np.arange(4.0)
        out = bias_add(data, bias, axis=1)
        np.testing.assert_allclose(out[0, 2], data[0, 2] + 2.0)
        with pytest.raises(LayerError):
            bias_add(data, np.arange(3.0), axis=1)

    def test_matmul(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        np.testing.assert_allclose(matmul(a, b), a @ b)
        with pytest.raises(LayerError):
            matmul(a, rng.normal(size=(5, 4)))


class TestPooling:
    def test_max_pool_values(self):
        data = np.arange(16.0).reshape(1, 1, 4, 4)
        out = max_pool2d(data, (2, 2), (2, 2))
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_padding_never_wins(self):
        data = -np.ones((1, 1, 2, 2))
        out = max_pool2d(data, (2, 2), (2, 2), padding=(1, 1))
        assert out.max() == -1.0

    def test_avg_pool_counts_padding(self):
        data = np.ones((1, 1, 2, 2))
        out = avg_pool2d(data, (2, 2), (2, 2), padding=(1, 1))
        assert out[0, 0, 0, 0] == pytest.approx(0.25)

    def test_adaptive_avg_pool_global(self, rng):
        data = rng.normal(size=(1, 3, 7, 5))
        out = adaptive_avg_pool2d(data, (1, 1))
        np.testing.assert_allclose(out[0, :, 0, 0], data.mean(axis=(2, 3))[0])

    def test_adaptive_avg_pool_identity(self, rng):
        data = rng.normal(size=(1, 2, 4, 4))
        np.testing.assert_allclose(adaptive_avg_pool2d(data, (4, 4)), data)

    def test_flatten(self, rng):
        assert flatten(rng.normal(size=(2, 3, 4))).shape == (2, 12)
        with pytest.raises(LayerError):
            flatten(np.ones(3))

    def test_pool_shape_errors(self):
        with pytest.raises(LayerError):
            max_pool2d(np.ones((1, 1, 2, 2)), (4, 4), (1, 1))


class TestActivations:
    def test_relu(self):
        np.testing.assert_array_equal(
            relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )

    def test_leaky_relu(self):
        np.testing.assert_allclose(
            leaky_relu(np.array([-2.0, 3.0]), alpha=0.1), [-0.2, 3.0]
        )

    def test_sigmoid_stable_at_extremes(self):
        out = sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)

    def test_softmax_sums_to_one(self, rng):
        out = softmax(rng.normal(size=(3, 7)) * 100)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0)
        assert np.isfinite(out).all()

    def test_log_softmax_consistent(self, rng):
        x = rng.normal(size=(2, 5))
        np.testing.assert_allclose(log_softmax(x), np.log(softmax(x)), rtol=1e-9)

    def test_tanh(self):
        np.testing.assert_allclose(tanh(np.array([0.0])), [0.0])


class TestNormalization:
    def test_batch_norm_normalizes(self, rng):
        data = rng.normal(loc=5.0, scale=2.0, size=(1, 3, 50, 50))
        mean = data.mean(axis=(0, 2, 3))
        var = data.var(axis=(0, 2, 3))
        out = batch_norm_inference(
            data, np.ones(3), np.zeros(3), mean, var, epsilon=0.0
        )
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, rtol=1e-10)

    def test_fold_batch_norm_equivalence(self, rng):
        data = rng.normal(size=(1, 3, 8, 8))
        weights = rng.normal(size=(4, 3, 3, 3))
        bias = rng.normal(size=4)
        gamma, beta = rng.uniform(0.5, 2, 4), rng.normal(size=4)
        mean, var = rng.normal(size=4), rng.uniform(0.5, 2, 4)

        direct = batch_norm_inference(
            conv2d_nchw(data, weights) + bias.reshape(1, 4, 1, 1),
            gamma, beta, mean, var,
        )
        fw, fb = fold_batch_norm_into_conv(weights, bias, gamma, beta, mean, var)
        folded = conv2d_nchw(data, fw) + fb.reshape(1, 4, 1, 1)
        np.testing.assert_allclose(folded, direct, rtol=1e-9)

    def test_lrn_shape_and_positivity_of_denominator(self, rng):
        data = rng.normal(size=(1, 8, 4, 4))
        out = lrn(data)
        assert out.shape == data.shape
        assert np.all(np.abs(out) <= np.abs(data) + 1e-12)


class TestLayouts:
    @given(
        n=st.integers(1, 2), c=st.integers(1, 5),
        h=st.integers(1, 6), w=st.integers(1, 6),
    )
    @settings(max_examples=20)
    def test_activation_roundtrip(self, n, c, h, w):
        data = np.random.default_rng(0).normal(size=(n, c, h, w))
        np.testing.assert_array_equal(nhwc_to_nchw(nchw_to_nhwc(data)), data)

    def test_kernel_roundtrip(self, rng):
        weights = rng.normal(size=(4, 3, 5, 5))
        np.testing.assert_array_equal(rsck_to_kcrs(kcrs_to_rsck(weights)), weights)

    def test_rejects_wrong_rank(self):
        with pytest.raises(LayerError):
            nchw_to_nhwc(np.ones((2, 3)))


class TestRegistry:
    def test_cpu_inventory_complete(self):
        ops = registered_ops("cpu")
        for name in ("conv2d", "dense", "relu", "max_pool2d", "batch_norm",
                     "softmax", "flatten", "lrn", "bias_add"):
            assert name in ops

    def test_lookup_unknown_raises(self):
        with pytest.raises(GraphError, match="no implementation"):
            lookup_op("conv2d", "nonexistent-target")

    def test_register_and_unregister(self):
        @register_op("relu", "testtarget")
        def _relu_test(attrs, inputs):
            return inputs[0]

        assert lookup_op("relu", "testtarget") is _relu_test
        with pytest.raises(GraphError, match="already registered"):
            register_op("relu", "testtarget")(lambda a, i: i[0])
        register_op("relu", "testtarget", override=True)(lambda a, i: i[0])
        unregister_op("relu", "testtarget")
        with pytest.raises(GraphError):
            lookup_op("relu", "testtarget")

    def test_cpu_conv2d_strategy_respects_layout(self, rng):
        impl = lookup_op("conv2d", "cpu")
        data = rng.normal(size=(1, 3, 8, 8))
        weights = rng.normal(size=(4, 3, 3, 3))
        out = impl({"data_layout": "NCHW"}, [data, weights])
        np.testing.assert_allclose(out, conv2d_nchw(data, weights), rtol=1e-10)
        out2 = impl(
            {"data_layout": "NHWC"}, [nchw_to_nhwc(data), kcrs_to_rsck(weights)]
        )
        np.testing.assert_allclose(nhwc_to_nchw(out2), out, rtol=1e-10)
