"""Tests for the simulator configurator and architecture object (§VI)."""

import pytest

from repro.bifrost import Architecture, SimulatorConfigurator, architecture
from repro.errors import ConfigError
from repro.stonne.config import ControllerType, ReduceNetworkType


class TestSimulatorConfigurator:
    def test_maeri_defaults(self):
        config = SimulatorConfigurator().build()
        assert config.controller_type is ControllerType.MAERI_DENSE_WORKLOAD
        assert config.reduce_network_type is ReduceNetworkType.ASNETWORK

    def test_rounds_ms_size_up(self):
        configurator = SimulatorConfigurator(ms_size=100)
        config = configurator.build()
        assert config.ms_size == 128
        assert any("rounded up" in c for c in configurator.corrections)

    def test_rounds_bandwidths_up(self):
        configurator = SimulatorConfigurator(dn_bw=33, rn_bw=9)
        config = configurator.build()
        assert (config.dn_bw, config.rn_bw) == (64, 16)
        assert len(configurator.corrections) == 2

    def test_rejects_tiny_array(self):
        with pytest.raises(ConfigError, match=">= 8"):
            SimulatorConfigurator(ms_size=4).build()

    def test_corrects_tpu_bandwidths(self):
        """§VI: 'Bifrost enforces the TPU restriction and will correct
        improperly configured distribution and reduction networks.'"""
        configurator = SimulatorConfigurator(
            controller_type=ControllerType.TPU_OS_DENSE,
            ms_rows=8, ms_cols=8,
            dn_bw=64, rn_bw=64,
        )
        config = configurator.build()
        assert config.dn_bw == 16
        assert config.rn_bw == 64
        assert any("dn_bw corrected" in c for c in configurator.corrections)

    def test_corrects_tpu_reduce_network(self):
        configurator = SimulatorConfigurator(
            controller_type=ControllerType.TPU_OS_DENSE,
            reduce_network_type=ReduceNetworkType.ASNETWORK,
            ms_rows=8, ms_cols=8,
        )
        config = configurator.build()
        assert config.reduce_network_type is ReduceNetworkType.TEMPORALRN

    def test_maeri_rejects_sparsity(self):
        with pytest.raises(ConfigError, match="SIGMA"):
            SimulatorConfigurator(sparsity_ratio=50).build()

    def test_sigma_gets_fenetwork_default(self):
        config = SimulatorConfigurator(
            controller_type=ControllerType.SIGMA_SPARSE_GEMM,
            sparsity_ratio=30,
        ).build()
        assert config.reduce_network_type is ReduceNetworkType.FENETWORK
        assert config.sparsity_ratio == 30

    def test_linear_rejects_temporal(self):
        with pytest.raises(ConfigError, match="TEMPORALRN"):
            SimulatorConfigurator(
                reduce_network_type=ReduceNetworkType.TEMPORALRN
            ).build()


class TestArchitectureObject:
    def test_listing1_flow(self):
        arch = Architecture()
        arch.maeri()
        arch.ms_size = 128
        config = arch.create_config_file()
        assert config.ms_size == 128
        assert arch.config is config  # cached

    def test_presets_switch_controller(self):
        arch = Architecture()
        assert arch.sigma(50).create_config_file().sparsity_ratio == 50
        assert (
            arch.tpu(8, 8).create_config_file().controller_type
            is ControllerType.TPU_OS_DENSE
        )

    def test_corrections_surface(self):
        arch = Architecture()
        arch.ms_size = 100
        arch.create_config_file()
        assert any("rounded" in c for c in arch.corrections)

    def test_reset(self):
        arch = Architecture()
        arch.ms_size = 64
        arch.reset()
        assert arch.ms_size == 128

    def test_save_writes_json(self, tmp_path):
        arch = Architecture()
        path = tmp_path / "config.json"
        arch.save(path)
        assert '"ms_size": 128' in path.read_text()

    def test_module_singleton_exists(self):
        architecture.reset()
        assert architecture.config.ms_size == 128


class TestMagmaConfigurator:
    def test_magma_preset_and_build(self):
        arch = Architecture()
        config = arch.magma(60).create_config_file()
        assert config.controller_type is ControllerType.MAGMA_SPARSE_DENSE
        assert config.sparsity_ratio == 60
        assert config.reduce_network_type is ReduceNetworkType.FENETWORK
