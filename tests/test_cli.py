"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestFeatures:
    def test_prints_matrix(self, capsys):
        assert main(["features"]) == 0
        out = capsys.readouterr().out
        assert "Bifrost" in out and "STONNE" in out


class TestRun:
    def test_lenet_on_maeri_with_mrna(self, capsys):
        assert main(["run", "lenet", "--arch", "maeri", "--mapping", "mrna"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "fc3" in out and "total" in out

    def test_lenet_on_sigma_with_sparsity(self, capsys):
        assert main(["run", "lenet", "--arch", "sigma", "--sparsity", "50"]) == 0
        assert "total" in capsys.readouterr().out

    def test_lenet_on_tpu(self, capsys):
        assert main(["run", "lenet", "--arch", "tpu", "--ms-rows", "8",
                     "--ms-cols", "8"]) == 0
        assert "total" in capsys.readouterr().out

    def test_energy_flag(self, capsys):
        assert main(["run", "mlp", "--energy"]) == 0
        assert "total energy" in capsys.readouterr().out

    def test_hardware_correction_note(self, capsys):
        assert main(["run", "mlp", "--ms-size", "100"]) == 0
        assert "rounded up" in capsys.readouterr().out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "resnet"])


class TestTune:
    def test_tune_fc_layer_grid(self, capsys):
        code = main([
            "tune", "lenet", "fc2", "--tuner", "grid",
            "--objective", "cycles", "--trials", "3000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best mapping" in out and "best cycles" in out

    def test_tune_writes_log(self, tmp_path, capsys):
        log = tmp_path / "tuning.jsonl"
        code = main([
            "tune", "lenet", "fc3", "--tuner", "random",
            "--trials", "40", "--log", str(log),
        ])
        assert code == 0
        assert log.exists() and log.read_text().strip()

    def test_unknown_layer_is_error(self, capsys):
        assert main(["tune", "lenet", "conv9"]) == 2
        assert "no layer" in capsys.readouterr().err


class TestCompare:
    def test_compare_mlp(self, capsys):
        assert main(["compare", "mlp"]) == 0
        out = capsys.readouterr().out
        assert "default" in out and "mRNA" in out and "fc1" in out


class TestMagmaSupport:
    def test_run_on_magma(self, capsys):
        assert main(["run", "lenet", "--arch", "magma", "--sparsity", "75"]) == 0
        assert "total" in capsys.readouterr().out
