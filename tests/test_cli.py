"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestFeatures:
    def test_prints_matrix(self, capsys):
        assert main(["features"]) == 0
        out = capsys.readouterr().out
        assert "Bifrost" in out and "STONNE" in out


class TestRun:
    def test_lenet_on_maeri_with_mrna(self, capsys):
        assert main(["run", "lenet", "--arch", "maeri", "--mapping", "mrna"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "fc3" in out and "total" in out

    def test_lenet_on_sigma_with_sparsity(self, capsys):
        assert main(["run", "lenet", "--arch", "sigma", "--sparsity", "50"]) == 0
        assert "total" in capsys.readouterr().out

    def test_lenet_on_tpu(self, capsys):
        assert main(["run", "lenet", "--arch", "tpu", "--ms-rows", "8",
                     "--ms-cols", "8"]) == 0
        assert "total" in capsys.readouterr().out

    def test_energy_flag(self, capsys):
        assert main(["run", "mlp", "--energy"]) == 0
        assert "total energy" in capsys.readouterr().out

    def test_hardware_correction_note(self, capsys):
        assert main(["run", "mlp", "--ms-size", "100"]) == 0
        assert "rounded up" in capsys.readouterr().out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "resnet"])


class TestTune:
    def test_tune_fc_layer_grid(self, capsys):
        code = main([
            "tune", "lenet", "fc2", "--tuner", "grid",
            "--objective", "cycles", "--trials", "3000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best mapping" in out and "best cycles" in out

    def test_tune_writes_log(self, tmp_path, capsys):
        log = tmp_path / "tuning.jsonl"
        code = main([
            "tune", "lenet", "fc3", "--tuner", "random",
            "--trials", "40", "--log", str(log),
        ])
        assert code == 0
        assert log.exists() and log.read_text().strip()

    def test_unknown_layer_is_error(self, capsys):
        assert main(["tune", "lenet", "conv9"]) == 2
        assert "no layer" in capsys.readouterr().err


class TestCompare:
    def test_compare_mlp(self, capsys):
        assert main(["compare", "mlp"]) == 0
        out = capsys.readouterr().out
        assert "default" in out and "mRNA" in out and "fc1" in out


class TestMagmaSupport:
    def test_run_on_magma(self, capsys):
        assert main(["run", "lenet", "--arch", "magma", "--sparsity", "75"]) == 0
        assert "total" in capsys.readouterr().out


class TestLayeredConfig:
    def test_run_with_config_file(self, tmp_path, capsys):
        toml = tmp_path / "repro.toml"
        toml.write_text(
            "[architecture]\nms_size = 64\n\n[engine]\nexecutor = 'serial'\n"
        )
        assert main(["run", "lenet", "--config", str(toml)]) == 0
        assert "total" in capsys.readouterr().out

    def test_flags_override_config_file(self, tmp_path, capsys):
        toml = tmp_path / "repro.toml"
        toml.write_text("[architecture]\nms_size = 100\n")
        # File asks for 100 (invalid, would be corrected); flag wins with
        # a clean power of two, so no correction note is printed.
        assert main(["run", "mlp", "--config", str(toml),
                     "--ms-size", "64"]) == 0
        assert "rounded up" not in capsys.readouterr().out

    def test_bad_config_key_is_error(self, tmp_path, capsys):
        toml = tmp_path / "repro.toml"
        toml.write_text("[engine]\nexecuter = 'serial'\n")
        assert main(["run", "mlp", "--config", str(toml)]) == 1
        assert "unknown key" in capsys.readouterr().err

    def test_config_show_json(self, capsys):
        import json

        assert main(["config", "show", "--json", "--arch", "sigma",
                     "--sparsity", "25"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["architecture"]["arch"] == "sigma"
        assert data["architecture"]["sparsity"] == 25

    def test_config_show_text_is_toml(self, capsys):
        assert main(["config", "show"]) == 0
        out = capsys.readouterr().out
        import tomllib

        data = tomllib.loads(out)
        assert data["architecture"]["arch"] == "maeri"

    def test_cache_max_rows_flag_caps_sqlite(self, tmp_path, capsys):
        db = tmp_path / "capped.sqlite"
        assert main(["run", "lenet", "--cache-path", str(db),
                     "--cache-max-rows", "2"]) == 0
        capsys.readouterr()
        import sqlite3

        conn = sqlite3.connect(str(db))
        rows = conn.execute("SELECT COUNT(*) FROM stats").fetchone()[0]
        conn.close()
        assert rows <= 2

    def test_run_report_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "report.json"
        assert main(["run", "mlp", "--report-json", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["model"] == "mlp" and data["total_cycles"] > 0
