"""The vectorized im2col lowering: loop parity, strides/pads, batches."""

import numpy as np
import pytest

from repro.errors import UnsupportedLayerError
from repro.stonne.layer import ConvLayer
from repro.stonne.simulator import Stonne, _conv_via_gemm, _im2col
from repro.topi import conv2d_nchw


def _im2col_loop_reference(data, layer):
    """The pre-vectorization triple loop, kept as the oracle (batch 0)."""
    padded = np.pad(
        data,
        ((0, 0), (0, 0), (layer.pad_h, layer.pad_h), (layer.pad_w, layer.pad_w)),
        mode="constant",
    )
    p, q = layer.P, layer.Q
    c = layer.C
    cols = np.empty((c * layer.R * layer.S, p * q), dtype=padded.dtype)
    idx = 0
    for ch in range(c):
        for r in range(layer.R):
            for s in range(layer.S):
                patch = padded[
                    0,
                    ch,
                    r : r + p * layer.stride_h : layer.stride_h,
                    s : s + q * layer.stride_w : layer.stride_w,
                ]
                cols[idx] = patch.reshape(-1)
                idx += 1
    return cols


LAYERS = [
    ConvLayer("plain", C=3, H=8, W=8, K=4, R=3, S=3),
    ConvLayer("strided", C=3, H=11, W=9, K=4, R=3, S=3, stride_h=2, stride_w=3),
    ConvLayer("padded", C=2, H=7, W=7, K=4, R=5, S=5, pad_h=2, pad_w=2),
    ConvLayer("pointwise", C=6, H=5, W=5, K=8, R=1, S=1),
    ConvLayer("asym", C=1, H=12, W=6, K=2, R=4, S=2, stride_h=3, pad_h=1),
]


class TestVectorizedIm2col:
    @pytest.mark.parametrize("layer", LAYERS, ids=lambda l: l.name)
    def test_matches_loop_reference(self, rng, layer):
        data = rng.normal(size=(1, layer.C, layer.H, layer.W))
        vectorized = _im2col(data, layer)
        assert vectorized.shape == (1, layer.C * layer.R * layer.S, layer.P * layer.Q)
        np.testing.assert_array_equal(
            vectorized[0], _im2col_loop_reference(data, layer)
        )

    def test_batched_output_stacks_per_sample(self, rng):
        layer = LAYERS[1]
        data = rng.normal(size=(4, layer.C, layer.H, layer.W))
        cols = _im2col(data, layer)
        assert cols.shape[0] == 4
        for i in range(4):
            np.testing.assert_array_equal(
                cols[i], _im2col_loop_reference(data[i : i + 1], layer)
            )


class TestBatchedConv:
    def test_conv_via_gemm_computes_every_batch(self, rng):
        """The old code indexed padded[0, ...], silently dropping batches."""
        layer = ConvLayer("b", C=3, H=9, W=9, K=5, R=3, S=3, pad_h=1, pad_w=1)
        data = rng.normal(size=(4, 3, 9, 9))
        weights = rng.normal(size=(5, 3, 3, 3))
        out = _conv_via_gemm(data, weights, layer)
        assert out.shape == (4, 5, layer.P, layer.Q)
        for i in range(4):
            np.testing.assert_allclose(
                out[i : i + 1],
                conv2d_nchw(data[i : i + 1], weights, padding=(1, 1)),
                rtol=1e-10,
            )

    def test_grouped_conv_batched(self, rng):
        from repro.topi import conv2d_direct_nchw

        layer = ConvLayer("g", C=4, H=8, W=8, K=8, R=3, S=3, G=2)
        data = rng.normal(size=(3, 4, 8, 8))
        weights = rng.normal(size=(8, 2, 3, 3))
        out = _conv_via_gemm(data, weights, layer)
        for i in range(3):
            np.testing.assert_allclose(
                out[i : i + 1],
                conv2d_direct_nchw(data[i : i + 1], weights, groups=2),
                rtol=1e-9,
            )

    def test_simulator_rejects_batch_mismatch_clearly(self, rng, maeri128):
        """N>1 through the facade fails loudly instead of truncating."""
        layer = ConvLayer("c", C=3, H=8, W=8, K=4, R=3, S=3)
        data = rng.normal(size=(2, 3, 8, 8))
        weights = rng.normal(size=(4, 3, 3, 3))
        with pytest.raises(UnsupportedLayerError, match="batch"):
            Stonne(maeri128).run_conv2d(layer, data=data, weights=weights)
