"""Tests for SimulationStats and aggregation."""

import pytest

from repro.stonne.stats import SimulationStats, TrafficBreakdown, combine_stats


def make_stats(name="l", controller="MAERI_DENSE_WORKLOAD", cycles=100,
               psums=10, macs=500, iterations=5, used=64, array=128):
    return SimulationStats(
        layer_name=name, controller=controller, cycles=cycles, psums=psums,
        macs=macs, iterations=iterations, multipliers_used=used,
        array_size=array,
        traffic=TrafficBreakdown(weights_distributed=7, inputs_distributed=3,
                                 psums_reduced=psums, outputs_written=2),
        phase_cycles={"fill": 10, "steady": cycles - 10},
    )


class TestSimulationStats:
    def test_utilization(self):
        stats = make_stats(cycles=100, macs=6400, array=128)
        assert stats.utilization == pytest.approx(0.5)
        assert stats.macs_per_cycle == pytest.approx(64.0)

    def test_utilization_degenerate(self):
        stats = make_stats(cycles=0)
        assert stats.utilization == 0.0
        assert stats.macs_per_cycle == 0.0

    def test_speedup_over(self):
        fast, slow = make_stats(cycles=100), make_stats(cycles=400)
        assert fast.speedup_over(slow) == 4.0

    def test_to_dict_roundtrippable_fields(self):
        data = make_stats().to_dict()
        assert data["cycles"] == 100
        assert data["traffic"]["weights_distributed"] == 7
        assert data["phase_cycles"]["fill"] == 10

    def test_summary_text(self):
        assert "cycles" in make_stats().summary()

    def test_energy_area_reserved(self):
        stats = make_stats()
        assert stats.energy is None and stats.area is None


class TestTrafficBreakdown:
    def test_totals_and_merge(self):
        a = TrafficBreakdown(1, 2, 3, 4)
        b = TrafficBreakdown(10, 20, 30, 40)
        merged = a.merged_with(b)
        assert merged.weights_distributed == 11
        assert merged.distribution_total == 33
        # merge does not mutate operands
        assert a.weights_distributed == 1


class TestCombineStats:
    def test_sums_and_phase_merge(self):
        combined = combine_stats(
            "model", [make_stats("a", cycles=100), make_stats("b", cycles=50)]
        )
        assert combined.cycles == 150
        assert combined.layer_name == "model"
        assert combined.phase_cycles["fill"] == 20
        assert combined.traffic.weights_distributed == 14

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            combine_stats("m", [])

    def test_rejects_mixed_controllers(self):
        with pytest.raises(ValueError, match="controllers"):
            combine_stats(
                "m",
                [make_stats(controller="MAERI_DENSE_WORKLOAD"),
                 make_stats(controller="SIGMA_SPARSE_GEMM")],
            )
