"""Unit tests for hardware configuration validation (paper Table III)."""

import pytest

from repro.errors import ConfigError
from repro.stonne.config import (
    ControllerType,
    MsNetworkType,
    ReduceNetworkType,
    SimulatorConfig,
    maeri_config,
    sigma_config,
    tpu_config,
)


class TestMaeriConfig:
    def test_defaults_valid(self):
        config = maeri_config()
        assert config.controller_type is ControllerType.MAERI_DENSE_WORKLOAD
        assert config.ms_network_type is MsNetworkType.LINEAR
        assert config.num_multipliers == config.ms_size

    @pytest.mark.parametrize("ms", [7, 12, 100, 129])
    def test_rejects_non_power_of_two_ms_size(self, ms):
        with pytest.raises(ConfigError, match="power of two"):
            maeri_config(ms_size=ms)

    def test_rejects_ms_size_below_eight(self):
        with pytest.raises(ConfigError):
            maeri_config(ms_size=4)

    def test_rejects_os_mesh(self):
        with pytest.raises(ConfigError, match="LINEAR"):
            SimulatorConfig(
                controller_type=ControllerType.MAERI_DENSE_WORKLOAD,
                ms_network_type=MsNetworkType.OS_MESH,
            )

    @pytest.mark.parametrize("bw", [3, 12, 100])
    def test_rejects_non_power_of_two_bandwidths(self, bw):
        with pytest.raises(ConfigError):
            maeri_config(dn_bw=bw)
        with pytest.raises(ConfigError):
            maeri_config(rn_bw=bw)

    def test_rejects_temporal_rn(self):
        with pytest.raises(ConfigError, match="TEMPORALRN"):
            maeri_config(reduce_network_type=ReduceNetworkType.TEMPORALRN)

    def test_rejects_sparsity(self):
        with pytest.raises(ConfigError, match="SIGMA"):
            SimulatorConfig(
                controller_type=ControllerType.MAERI_DENSE_WORKLOAD,
                sparsity_ratio=50,
            )

    def test_fenetwork_allowed(self):
        config = maeri_config(reduce_network_type=ReduceNetworkType.FENETWORK)
        assert config.reduce_network_type is ReduceNetworkType.FENETWORK


class TestSigmaConfig:
    def test_defaults(self):
        config = sigma_config(sparsity_ratio=50)
        assert config.controller_type is ControllerType.SIGMA_SPARSE_GEMM
        assert config.sparsity_ratio == 50
        assert config.reduce_network_type is ReduceNetworkType.FENETWORK

    @pytest.mark.parametrize("ratio", [-1, 101, 1000])
    def test_rejects_out_of_range_sparsity(self, ratio):
        with pytest.raises(ConfigError, match="sparsity"):
            sigma_config(sparsity_ratio=ratio)

    def test_rejects_non_integer_sparsity(self):
        with pytest.raises(ConfigError):
            sigma_config(sparsity_ratio=0.5)


class TestTpuConfig:
    def test_derived_bandwidths(self):
        config = tpu_config(ms_rows=8, ms_cols=16)
        assert config.dn_bw == 24
        assert config.rn_bw == 128
        assert config.num_multipliers == 128

    def test_rejects_wrong_bandwidths(self):
        with pytest.raises(ConfigError, match="dn_bw = ms_rows"):
            SimulatorConfig(
                controller_type=ControllerType.TPU_OS_DENSE,
                ms_network_type=MsNetworkType.OS_MESH,
                ms_rows=16, ms_cols=16,
                dn_bw=64, rn_bw=256,
                reduce_network_type=ReduceNetworkType.TEMPORALRN,
            )

    def test_rejects_linear_network(self):
        with pytest.raises(ConfigError, match="OS_MESH"):
            SimulatorConfig(
                controller_type=ControllerType.TPU_OS_DENSE,
                ms_network_type=MsNetworkType.LINEAR,
                reduce_network_type=ReduceNetworkType.TEMPORALRN,
            )

    def test_rejects_art_reduction(self):
        with pytest.raises(ConfigError, match="TEMPORALRN"):
            SimulatorConfig(
                controller_type=ControllerType.TPU_OS_DENSE,
                ms_network_type=MsNetworkType.OS_MESH,
                ms_rows=16, ms_cols=16, dn_bw=32, rn_bw=256,
                reduce_network_type=ReduceNetworkType.ASNETWORK,
            )

    def test_rejects_disabled_accumulation_buffer(self):
        with pytest.raises(ConfigError, match="accumulation_buffer"):
            SimulatorConfig(
                controller_type=ControllerType.TPU_OS_DENSE,
                ms_network_type=MsNetworkType.OS_MESH,
                ms_rows=16, ms_cols=16, dn_bw=32, rn_bw=256,
                reduce_network_type=ReduceNetworkType.TEMPORALRN,
                accumulation_buffer=False,
            )


class TestSerialization:
    def test_json_roundtrip(self):
        config = maeri_config(ms_size=64, dn_bw=32, rn_bw=8)
        restored = SimulatorConfig.from_json(config.to_json())
        assert restored == config

    def test_dict_roundtrip_tpu(self):
        config = tpu_config(ms_rows=8, ms_cols=8)
        assert SimulatorConfig.from_dict(config.to_dict()) == config

    def test_with_updates_validates(self):
        config = maeri_config()
        with pytest.raises(ConfigError):
            config.with_updates(ms_size=100)
        assert config.with_updates(ms_size=64).ms_size == 64

    def test_enum_coercion_from_strings(self):
        config = SimulatorConfig(
            controller_type="MAERI_DENSE_WORKLOAD",
            ms_network_type="LINEAR",
            reduce_network_type="ASNETWORK",
        )
        assert config.controller_type is ControllerType.MAERI_DENSE_WORKLOAD
