"""Property-based invariants of the cycle-level models.

These hold for *every* valid (layer, config, mapping) combination, so
hypothesis drives the generator.  Violations would mean the simulator
reports physically impossible numbers.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.errors import MappingError
from repro.stonne.config import maeri_config, sigma_config, tpu_config
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer
from repro.stonne.maeri import MaeriController
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.stonne.sigma import SigmaController
from repro.stonne.tpu import TpuController

conv_layers = st.builds(
    ConvLayer,
    name=st.just("p"),
    C=st.integers(1, 16),
    H=st.integers(4, 24),
    W=st.integers(4, 24),
    K=st.integers(1, 32),
    R=st.integers(1, 4),
    S=st.integers(1, 4),
    stride_h=st.integers(1, 2),
    stride_w=st.integers(1, 2),
    pad_h=st.integers(0, 2),
    pad_w=st.integers(0, 2),
)

fc_layers = st.builds(
    FcLayer,
    name=st.just("p"),
    in_features=st.integers(1, 2048),
    out_features=st.integers(1, 1024),
)

conv_mappings = st.builds(
    ConvMapping,
    T_R=st.integers(1, 4),
    T_S=st.integers(1, 4),
    T_C=st.integers(1, 8),
    T_K=st.integers(1, 8),
    T_X=st.integers(1, 6),
    T_Y=st.integers(1, 6),
)

#: Power-of-two FC tiles whose product always fits a 128-wide array, so
#: the strategies rarely hit assume() filters.
fc_mappings = st.tuples(st.integers(0, 7), st.integers(0, 7)).filter(
    lambda ab: ab[0] + ab[1] <= 7
).map(lambda ab: FcMapping(T_S=2 ** ab[0], T_K=2 ** ab[1]))

ms_sizes = st.sampled_from([8, 32, 128])


class TestMaeriInvariants:
    @given(layer=conv_layers, mapping=conv_mappings, ms=ms_sizes)
    @settings(max_examples=120, deadline=None)
    def test_conv_physical_bounds(self, layer, mapping, ms):
        controller = MaeriController(maeri_config(ms_size=ms))
        try:
            mapping.validate_for(layer, ms)
        except MappingError:
            assume(False)
        stats = controller.run_conv(layer, mapping)
        # cycles bounded below by both iteration count and peak throughput
        assert stats.cycles >= stats.iterations
        assert stats.cycles * ms >= layer.macs
        assert 0.0 < stats.utilization <= 1.0
        assert stats.psums >= layer.output_elements
        assert stats.multipliers_used <= ms

    @given(layer=fc_layers, mapping=fc_mappings, ms=ms_sizes)
    @settings(max_examples=120, deadline=None)
    def test_fc_physical_bounds(self, layer, mapping, ms):
        controller = MaeriController(maeri_config(ms_size=ms))
        try:
            mapping.validate_for(layer, ms)
        except MappingError:
            assume(False)
        stats = controller.run_fc(layer, mapping)
        assert stats.cycles >= stats.iterations
        assert stats.cycles * ms >= layer.macs
        assert 0.0 < stats.utilization <= 1.0

    @given(layer=fc_layers, mapping=fc_mappings)
    @settings(max_examples=60, deadline=None)
    def test_fc_determinism(self, layer, mapping):
        controller = MaeriController(maeri_config())
        try:
            mapping.validate_for(layer, 128)
        except MappingError:
            assume(False)
        assert (
            controller.run_fc(layer, mapping).cycles
            == controller.run_fc(layer, mapping).cycles
        )


class TestSigmaInvariants:
    @given(
        m=st.integers(1, 256),
        k=st.integers(1, 2048),
        n=st.integers(1, 64),
        sparsity=st.integers(0, 99),
    )
    @settings(max_examples=120, deadline=None)
    def test_gemm_bounds(self, m, k, n, sparsity):
        controller = SigmaController(sigma_config(sparsity_ratio=sparsity))
        gemm = GemmLayer("p", M=m, K=k, N=n)
        stats = controller.run_gemm(gemm)
        assert stats.cycles > 0
        assert stats.macs <= gemm.macs
        assert stats.psums == gemm.output_elements * controller.position_folds(k)

    @given(m=st.integers(1, 128), k=st.integers(1, 1024), n=st.integers(1, 32))
    @settings(max_examples=60, deadline=None)
    def test_sparsity_never_slower(self, m, k, n):
        gemm = GemmLayer("p", M=m, K=k, N=n)
        dense = SigmaController(sigma_config(sparsity_ratio=0)).run_gemm(gemm)
        sparse = SigmaController(sigma_config(sparsity_ratio=50)).run_gemm(gemm)
        assert sparse.cycles <= dense.cycles


class TestTpuInvariants:
    @given(
        m=st.integers(1, 256),
        k=st.integers(1, 512),
        n=st.integers(1, 128),
        rows=st.sampled_from([4, 8, 16]),
        cols=st.sampled_from([4, 8, 16]),
    )
    @settings(max_examples=120, deadline=None)
    def test_gemm_bounds(self, m, k, n, rows, cols):
        controller = TpuController(tpu_config(ms_rows=rows, ms_cols=cols))
        gemm = GemmLayer("p", M=m, K=k, N=n)
        stats = controller.run_gemm(gemm)
        # at least K cycles per output tile, and fill/drain overhead
        assert stats.cycles > stats.iterations * k
        assert stats.macs == gemm.macs
