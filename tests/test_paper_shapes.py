"""Integration tests asserting the paper's headline result *shapes*.

These are the fast versions of the benchmarks: each checks that the
reproduction lands in (a generous band around) the factors the paper
reports, so regressions in the cycle model are caught by ``pytest`` runs
without executing the full benchmark harness.
"""

import pytest

from repro.bifrost import make_session, run_layers
from repro.mrna import MrnaMapper
from repro.stonne.config import maeri_config, sigma_config
from repro.stonne.maeri import MaeriController
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.stonne.sigma import SigmaController
from repro.models import alexnet_conv_layers, alexnet_fc_layers
from repro.tuner import GridSearchTuner, MaeriFcTask
from repro.workloads import fig10_conv, multiplier_sweep


@pytest.fixture(scope="module")
def controller():
    return MaeriController(maeri_config())


class TestFig9Shape:
    """SIGMA at 50% sparsity: conv about 44% fewer cycles, FC about 54%."""

    def test_conv_band(self):
        layers = alexnet_conv_layers()
        dense = SigmaController(sigma_config(sparsity_ratio=0))
        sparse = SigmaController(sigma_config(sparsity_ratio=50))
        savings = [
            1 - sparse.run_conv(l).cycles / dense.run_conv(l).cycles
            for l in layers
        ]
        mean = sum(savings) / len(savings)
        assert 0.35 <= mean <= 0.50, f"conv sparsity saving {mean:.2%}"

    def test_fc_band(self):
        layers = alexnet_fc_layers()
        dense = SigmaController(sigma_config(sparsity_ratio=0))
        sparse = SigmaController(sigma_config(sparsity_ratio=50))
        savings = [
            1 - sparse.run_fc(l).cycles / dense.run_fc(l).cycles
            for l in layers
        ]
        mean = sum(savings) / len(savings)
        assert 0.48 <= mean <= 0.62, f"fc sparsity saving {mean:.2%}"

    def test_fc_saves_more_than_conv(self):
        conv = alexnet_conv_layers()[2]
        fc = alexnet_fc_layers()[0]
        dense = SigmaController(sigma_config(sparsity_ratio=0))
        sparse = SigmaController(sigma_config(sparsity_ratio=50))
        conv_saving = 1 - sparse.run_conv(conv).cycles / dense.run_conv(conv).cycles
        fc_saving = 1 - sparse.run_fc(fc).cycles / dense.run_fc(fc).cycles
        assert fc_saving > conv_saving


class TestFig10Shape:
    """Optimal/suboptimal gap grows with multipliers; optimal scales."""

    @staticmethod
    def _best_worst(ms_size: int):
        layer = fig10_conv()
        controller = MaeriController(maeri_config(ms_size=ms_size))
        best = worst = None
        from repro.stonne.mapping import enumerate_conv_mappings

        for mapping in enumerate_conv_mappings(layer, ms_size, max_tile_options=4):
            cycles = controller.run_conv(layer, mapping).cycles
            if best is None or cycles < best:
                best = cycles
            if worst is None or cycles > worst:
                worst = cycles
        return best, worst

    def test_gap_grows_with_multipliers(self):
        b8, w8 = self._best_worst(8)
        b128, w128 = self._best_worst(128)
        assert w8 / b8 >= 2, "even small arrays punish bad mappings"
        assert w128 / b128 > 2 * (w8 / b8), "gap must grow with array size"

    def test_optimal_scales_with_multipliers(self):
        cycles = [self._best_worst(ms)[0] for ms in multiplier_sweep()]
        assert cycles == sorted(cycles, reverse=True)
        ratio = cycles[0] / cycles[-1]  # 8 vs 128 multipliers
        assert 6 <= ratio <= 20, f"8->128 optimal-mapping speedup {ratio:.1f}"


class TestFig11Shape:
    """Tuned (psums) vs default mapping on MAERI-128."""

    def test_fc_speedup_band(self, controller):
        """Paper: ~11x average for the fully connected layers."""
        speedups = []
        for layer in alexnet_fc_layers():
            basic = controller.run_fc(layer, FcMapping.basic()).cycles
            tuned = controller.run_fc(layer, FcMapping(T_S=128, T_K=1)).cycles
            speedups.append(basic / tuned)
        mean = sum(speedups) / len(speedups)
        assert 8 <= mean <= 14, f"fc tuned speedup {mean:.1f}x"

    def test_conv_speedup_band(self, controller):
        """Paper: ~51x average (max 77x) for the conv layers."""
        mapper_cfg = maeri_config()
        speedups = []
        for layer in alexnet_conv_layers():
            task_best = None
            # psum-optimal structured mapping: maximize spatial reduction
            from repro.tuner import MaeriConvTask, GridSearchTuner

            task = MaeriConvTask(layer, mapper_cfg, objective="psums",
                                 max_options_per_tile=4)
            result = GridSearchTuner(task).tune(n_trials=4000)
            tuned_mapping = task.best_mapping(result.best_config)
            basic = controller.run_conv(layer, ConvMapping.basic()).cycles
            tuned = controller.run_conv(layer, tuned_mapping).cycles
            speedups.append(basic / tuned)
        mean = sum(speedups) / len(speedups)
        assert 30 <= mean <= 80, f"conv tuned speedup {mean:.1f}x"


class TestFig12AndTable6Shape:
    """mRNA beats psum-tuned mappings; Table VI structure."""

    def test_fc_psum_optimum_is_skewed_and_layer_invariant(self):
        config = maeri_config()
        chosen = []
        for layer in alexnet_fc_layers():
            task = MaeriFcTask(layer, config, objective="psums")
            result = GridSearchTuner(task).tune(n_trials=20000)
            chosen.append(task.best_mapping(result.best_config).as_tuple())
        # same structure for every layer: T_S maximal, T_K = T_N = 1
        assert len(set(chosen)) == 1
        t_s, t_k, t_n = chosen[0]
        assert t_k == 1 and t_n == 1 and t_s == 128

    def test_mrna_beats_autotvm_on_fc(self, controller):
        mapper = MrnaMapper(maeri_config())
        for layer in alexnet_fc_layers():
            autotvm_cycles = controller.run_fc(
                layer, FcMapping(T_S=128, T_K=1)
            ).cycles
            mrna_cycles = controller.run_fc(layer, mapper.map_fc(layer)).cycles
            saving = 1 - mrna_cycles / autotvm_cycles
            assert saving > 0.5, f"{layer.name}: mRNA saving {saving:.2%}"

    def test_mrna_mappings_vary_per_fc_layer(self):
        mapper = MrnaMapper(maeri_config())
        tuples = [mapper.map_fc(l).as_tuple() for l in alexnet_fc_layers()]
        assert len(set(tuples)) >= 2

    def test_mrna_modestly_better_on_conv(self, controller):
        """Paper: mRNA ~20% fewer cycles than psum-tuned on conv."""
        from repro.tuner import MaeriConvTask

        mapper = MrnaMapper(maeri_config())
        layer = alexnet_conv_layers()[2]  # conv3
        task = MaeriConvTask(layer, maeri_config(), objective="psums",
                             max_options_per_tile=4)
        result = GridSearchTuner(task).tune(n_trials=4000)
        tuned = controller.run_conv(layer, task.best_mapping(result.best_config)).cycles
        mrna = controller.run_conv(layer, mapper.map_conv(layer)).cycles
        saving = 1 - mrna / tuned
        assert 0.0 <= saving <= 0.5, f"conv mRNA saving {saving:.2%}"


class TestEndToEndAlexNetSubset:
    def test_run_layers_with_mrna_session(self):
        """Whole-pipeline smoke: AlexNet FC stack under the mRNA strategy."""
        session = make_session(maeri_config(), mapping_strategy="mrna")
        stats = run_layers(alexnet_fc_layers(), session)
        assert len(stats) == 3
        assert all(s.cycles > 0 for s in stats)
