"""Tests for the Session facade: lifecycle, reports, legacy parity, leaks.

The acceptance bar for the redesign: Session-built runs are bit-identical
to the pre-redesign code paths (`make_session` + `run_layers`, engine-built
tuning) for run, tune (fixed seed) and compare, and teardown is
deterministic — no lingering executor pools after a ``with`` block.
"""

import json
import multiprocessing
import warnings

import numpy as np
import pytest

from repro.errors import ReproError, TuningError
from repro.session import (
    CompareReport,
    RunReport,
    Session,
    SessionConfig,
    TuneReport,
    zoo_layers,
)


def _legacy_session(*args, **kwargs):
    """make_session without the (expected) deprecation noise."""
    from repro.bifrost.runner import make_session

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return make_session(*args, **kwargs)


class TestLifecycle:
    def test_context_manager_closes(self):
        with Session(executor="serial") as s:
            assert not s.closed
            s.run("mlp")
        assert s.closed

    def test_close_is_idempotent(self):
        s = Session()
        s.close()
        s.close()
        assert s.closed

    def test_closed_session_rejects_work(self):
        s = Session()
        s.close()
        with pytest.raises(ReproError, match="closed"):
            s.run("mlp")

    def test_close_shuts_down_process_pool(self):
        # The leak regression: a `with Session` block must not leave
        # ProcessPoolExecutor workers behind (ISSUE 4 satellite).
        before = {p.pid for p in multiprocessing.active_children()}
        with Session(executor="process", max_workers=2) as s:
            s.run("mlp")
            assert s.engine.backend._pool is not None  # pool actually used
        assert s.engine.backend._pool is None
        leaked = [
            p for p in multiprocessing.active_children()
            if p.pid not in before and p.is_alive()
        ]
        assert leaked == []

    def test_close_closes_sqlite_cache(self, tmp_path):
        import sqlite3

        with Session(executor="serial",
                     cache_path=str(tmp_path / "s.sqlite")) as s:
            s.run("mlp")
        with pytest.raises(sqlite3.ProgrammingError):
            s._cache._conn.execute("SELECT 1")

    def test_install_uninstall(self):
        from repro.bifrost.strategies import active_session

        with Session() as s:
            s.install()
            assert active_session() is s.api
        assert active_session() is None  # close() uninstalled

    def test_exception_in_block_still_closes(self):
        with pytest.raises(RuntimeError):
            with Session(executor="process", max_workers=2) as s:
                s.run("mlp")
                raise RuntimeError("boom")
        assert s.closed
        assert s.engine.backend._pool is None


class TestRun:
    def test_zoo_run_report(self):
        with Session(mapping="mrna") as s:
            report = s.run("lenet")
        assert isinstance(report, RunReport)
        assert report.model == "lenet"
        assert report.total_cycles > 0
        names = [st.layer_name for st in report.layer_stats]
        assert "conv1" in names and "fc3" in names

    def test_run_report_json_round_trip(self):
        with Session() as s:
            report = s.run("mlp")
        restored = RunReport.from_json(report.to_json())
        assert restored.total_cycles == report.total_cycles
        assert [st.to_dict() for st in restored.layer_stats] == [
            st.to_dict() for st in report.layer_stats
        ]

    def test_unknown_zoo_model(self):
        with Session() as s:
            with pytest.raises(ReproError, match="unknown model"):
                s.run("resnet")

    def test_run_matches_legacy_make_session_path(self):
        # Bit-identical to the pre-redesign path on two models.
        for model in ("mlp", "lenet"):
            legacy = _legacy_session(
                SessionConfig().build_simulator_config()[0],
                mapping_strategy="mrna",
            )
            from repro.bifrost.runner import run_layers

            legacy_stats = run_layers(zoo_layers(model), legacy)
            legacy.close()
            with Session(mapping="mrna") as s:
                report = s.run(model)
            assert [st.to_dict() for st in report.layer_stats] == [
                st.to_dict() for st in legacy_stats
            ]

    def test_torchlike_model_run(self):
        import repro.frontends.torchlike as nn

        model = nn.Sequential(
            nn.Flatten(), nn.Linear(16, 4), nn.ReLU(), nn.Linear(4, 2),
        )
        batch = np.random.default_rng(0).normal(size=(1, 16))
        with Session(mapping="mrna") as s:
            report = s.run(model, batch)
        assert report.output.shape == (1, 2)
        assert len(report.layer_stats) == 2

    def test_model_without_batch_is_error(self):
        import repro.frontends.torchlike as nn

        with Session() as s:
            with pytest.raises(ReproError, match="input batch"):
                s.run(nn.Sequential(nn.Linear(4, 2)))

    def test_run_graph(self):
        from repro.models import lenet_graph

        with Session(mapping="default") as s:
            report = s.run_graph(
                lenet_graph(), {"data": np.zeros((1, 1, 28, 28))}
            )
        assert report.outputs and report.output.shape == (1, 10)
        assert report.total_cycles > 0

    def test_run_graph_matches_legacy(self):
        from repro.bifrost.runner import run_graph
        from repro.models import lenet_graph

        feed = {"data": np.ones((1, 1, 28, 28))}
        legacy = _legacy_session(
            SessionConfig().build_simulator_config()[0],
            mapping_strategy="mrna",
        )
        legacy_result = run_graph(lenet_graph(), feed, legacy)
        legacy.close()
        with Session(mapping="mrna") as s:
            report = s.run_graph(lenet_graph(), feed)
        assert report.total_cycles == legacy_result.total_cycles
        assert np.array_equal(report.output, legacy_result.output)


class TestTune:
    def test_tune_report(self):
        with Session(trials=40, tuner="random", seed=1) as s:
            report = s.tune("lenet", "fc3")
        assert isinstance(report, TuneReport)
        assert report.layer == "fc3"
        assert report.num_trials <= 40
        assert len(report.best_mapping) == 3
        restored = TuneReport.from_json(report.to_json())
        assert restored.best_mapping == report.best_mapping
        assert restored.best_cost == report.best_cost

    def test_tune_fixed_seed_matches_legacy_engine_path(self):
        # The pre-redesign CLI path: engine + task + tuner by hand.
        from repro.engine import EvaluationEngine
        from repro.tuner import MaeriFcTask, RandomTuner

        config = SessionConfig().build_simulator_config()[0]
        layer = {l.name: l for l in zoo_layers("lenet")}["fc2"]
        engine = EvaluationEngine(config)
        task = MaeriFcTask(layer, config, objective="cycles", engine=engine)
        legacy = RandomTuner(task, seed=3).tune(
            n_trials=60, early_stopping=120
        )
        legacy_mapping = task.best_mapping(legacy.best_config).as_tuple()
        engine.close()

        with Session(objective="cycles", tuner="random", trials=60,
                     seed=3) as s:
            report = s.tune("lenet", "fc2")
        assert report.best_mapping == tuple(legacy_mapping)
        assert report.best_cost == legacy.best_cost
        assert report.num_trials == legacy.num_trials

    def test_tune_accepts_bare_layer(self):
        layer = {l.name: l for l in zoo_layers("mlp")}["fc1"]
        with Session(tuner="random", trials=20) as s:
            report = s.tune(layer)
        assert report.layer == "fc1"
        assert report.model is None

    def test_unknown_layer_is_tuning_error(self):
        with Session() as s:
            with pytest.raises(TuningError, match="no layer"):
                s.tune("lenet", "conv9")


class TestCompare:
    def test_compare_matches_legacy_controller_path(self):
        # Pre-redesign compare drove the controller directly; the
        # session routes through the engine — same cycle model, so the
        # numbers must agree exactly.
        from repro.mrna import MrnaMapper
        from repro.stonne.maeri import MaeriController
        from repro.stonne.mapping import FcMapping
        from repro.tuner import GridSearchTuner, MaeriFcTask

        config = SessionConfig().build_simulator_config()[0]
        controller = MaeriController(config)
        mapper = MrnaMapper(config)
        with Session() as s:
            report = s.compare("mlp")
        assert isinstance(report, CompareReport)
        assert report.schemes == ("default", "AutoTVM", "mRNA")
        for row, layer in zip(report.rows, zoo_layers("mlp")):
            assert row["layer"] == layer.name
            assert row["cycles"]["default"] == controller.run_fc(
                layer, FcMapping.basic()
            ).cycles
            assert row["cycles"]["mRNA"] == controller.run_fc(
                layer, mapper.map_fc(layer)
            ).cycles
            task = MaeriFcTask(layer, config, objective="psums")
            tuned = task.best_mapping(
                GridSearchTuner(task).tune(n_trials=10 ** 9).best_config
            )
            assert row["cycles"]["AutoTVM"] == controller.run_fc(
                layer, tuned
            ).cycles

    def test_compare_report_json_round_trip(self):
        with Session() as s:
            report = s.compare("mlp")
        assert CompareReport.from_json(report.to_json()) == report


class TestSessionConstruction:
    def test_from_dict(self):
        s = Session.from_dict({"engine": {"executor": "serial"}})
        assert s.engine.backend.name == "serial"
        s.close()

    def test_overrides_on_config(self):
        cfg = SessionConfig.resolve(env=False, executor="serial")
        with Session(cfg, max_workers=2, executor="thread") as s:
            assert s.config.engine.executor == "thread"
            assert s.config.engine.max_workers == 2

    def test_corrections_surface(self):
        with Session(ms_size=100) as s:
            assert any("rounded up" in c for c in s.corrections)
            assert s.simulator_config.ms_size == 128

    def test_tuning_task_accepts_session(self):
        # TuningTask is an adapter over the session: passing the Session
        # (or its api) where an engine is expected measures through the
        # session engine.
        from repro.tuner import MaeriFcTask

        layer = {l.name: l for l in zoo_layers("mlp")}["fc1"]
        with Session() as s:
            task = MaeriFcTask(layer, s.simulator_config,
                               objective="cycles", engine=s)
            assert task.engine is s.engine
            task_api = MaeriFcTask(layer, s.simulator_config,
                                   objective="cycles", engine=s.api)
            assert task_api.engine is s.engine

    def test_counters_snapshot(self):
        with Session() as s:
            s.run("mlp")
            counters = s.counters()
        assert counters["num_evaluations"] >= 3
        assert counters["executor"] == "serial"
