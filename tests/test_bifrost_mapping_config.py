"""Tests for the mapping configurator: the four mapping sources of §IV."""

import pytest

from repro.bifrost import MappingConfigurator, MappingStrategy
from repro.errors import TuningError
from repro.stonne.config import maeri_config, sigma_config
from repro.stonne.layer import ConvLayer, FcLayer
from repro.stonne.maeri import MaeriController
from repro.stonne.mapping import ConvMapping, FcMapping


@pytest.fixture
def conv():
    return ConvLayer("c", C=8, H=10, W=10, K=16, R=3, S=3)


@pytest.fixture
def fc():
    return FcLayer("f", in_features=256, out_features=128)


class TestDefaultStrategy:
    def test_returns_basic_mappings(self, maeri128, conv, fc):
        configurator = MappingConfigurator(config=maeri128)
        assert configurator.mapping_for(conv) == ConvMapping.basic()
        assert configurator.mapping_for(fc) == FcMapping.basic()

    def test_strategy_coerced_from_string(self, maeri128):
        configurator = MappingConfigurator(config=maeri128, strategy="mrna")
        assert configurator.strategy is MappingStrategy.MRNA

    def test_non_maeri_rejects_generation(self, conv):
        configurator = MappingConfigurator(config=sigma_config())
        with pytest.raises(TuningError, match="MAERI"):
            configurator.mapping_for(conv)


class TestManualOverrides:
    def test_manual_wins_over_strategy(self, maeri128, fc):
        configurator = MappingConfigurator(
            config=maeri128, strategy=MappingStrategy.MRNA
        )
        pinned = FcMapping(T_S=2, T_K=2)
        configurator.set_manual("f", pinned)
        assert configurator.mapping_for(fc) is pinned

    def test_manual_applies_even_on_sigma(self, fc):
        """Manual mappings bypass generation, so they resolve anywhere."""
        configurator = MappingConfigurator(config=sigma_config())
        configurator.set_manual("f", FcMapping(T_S=4))
        assert configurator.mapping_for(fc).T_S == 4


class TestTunedStrategy:
    def test_tuned_fc_mapping_structure(self, maeri128, fc):
        configurator = MappingConfigurator(
            config=maeri128,
            strategy=MappingStrategy.TUNED,
            objective="psums",
            tuner_trials=120,
            tuner_early_stopping=60,
        )
        mapping = configurator.mapping_for(fc)
        mapping.validate_for(fc, maeri128.ms_size)
        assert mapping.T_K == 1  # the psum-optimum structure (Table VI)

    def test_tuned_result_cached(self, maeri128, fc):
        configurator = MappingConfigurator(
            config=maeri128,
            strategy=MappingStrategy.TUNED,
            tuner_trials=60,
            tuner_early_stopping=30,
        )
        first = configurator.mapping_for(fc)
        second = configurator.mapping_for(fc)
        assert first is second  # no re-tuning

    def test_tuned_cycles_objective_beats_default(self, maeri128, fc):
        configurator = MappingConfigurator(
            config=maeri128,
            strategy=MappingStrategy.TUNED,
            objective="cycles",
            tuner_trials=200,
            tuner_early_stopping=100,
        )
        tuned = configurator.mapping_for(fc)
        controller = MaeriController(maeri128)
        assert (
            controller.run_fc(fc, tuned).cycles
            < controller.run_fc(fc, FcMapping.basic()).cycles
        )


class TestMrnaStrategy:
    def test_mrna_mappings_cached_and_valid(self, maeri128, conv):
        configurator = MappingConfigurator(
            config=maeri128, strategy=MappingStrategy.MRNA
        )
        mapping = configurator.mapping_for(conv)
        mapping.validate_for(conv, maeri128.ms_size)
        assert configurator.mapping_for(conv) is mapping
