"""Tests for the graph IR: types, graphs, builder, shape inference."""

import numpy as np
import pytest

from repro.errors import GraphError, ShapeInferenceError
from repro.ir import Graph, GraphBuilder, TensorType, all_ops, get_op, is_op


class TestTensorType:
    def test_basic(self):
        t = TensorType((1, 3, 8, 8))
        assert t.rank == 4
        assert t.num_elements == 192
        assert "float64" in str(t)

    def test_rejects_bad_dims(self):
        with pytest.raises(ShapeInferenceError):
            TensorType((1, 0, 3))

    def test_rejects_bad_dtype(self):
        with pytest.raises(ShapeInferenceError):
            TensorType((1,), dtype="float16")

    def test_shape_coerced_to_ints(self):
        assert TensorType((np.int64(2), 3)).shape == (2, 3)


class TestOpDeclarations:
    def test_inventory(self):
        assert is_op("conv2d") and is_op("dense") and is_op("softmax")
        assert not is_op("nonexistent")
        assert "conv2d" in all_ops()

    def test_conv2d_shape_nchw(self):
        out = get_op("conv2d").shape_fn(
            [TensorType((1, 3, 10, 10)), TensorType((4, 3, 3, 3))],
            {"strides": (1, 1), "padding": (1, 1)},
        )
        assert out.shape == (1, 4, 10, 10)

    def test_conv2d_shape_nhwc(self):
        out = get_op("conv2d").shape_fn(
            [TensorType((1, 10, 10, 3)), TensorType((3, 3, 3, 4))],
            {"data_layout": "NHWC"},
        )
        assert out.shape == (1, 8, 8, 4)

    def test_dense_shape_mismatch(self):
        with pytest.raises(ShapeInferenceError):
            get_op("dense").shape_fn(
                [TensorType((1, 8)), TensorType((4, 9))], {}
            )

    def test_reshape_conservation(self):
        with pytest.raises(ShapeInferenceError, match="preserve"):
            get_op("reshape").shape_fn(
                [TensorType((1, 12))], {"newshape": (1, 11)}
            )


class TestGraph:
    def test_add_and_type_nodes(self):
        g = Graph("g")
        x = g.add_input("x", TensorType((1, 8)))
        w = g.add_const("w", np.zeros((4, 8)))
        d = g.add_op("dense", [x, w])
        g.set_outputs([d])
        g.finalize()
        assert g.nodes[d].ttype.shape == (1, 4)

    def test_rejects_unknown_op(self):
        g = Graph("g")
        x = g.add_input("x", TensorType((1, 8)))
        with pytest.raises(GraphError, match="unknown operator"):
            g.add_op("frobnicate", [x])

    def test_rejects_wrong_arity(self):
        g = Graph("g")
        x = g.add_input("x", TensorType((1, 8)))
        with pytest.raises(GraphError, match="expects 2 inputs"):
            g.add_op("dense", [x])

    def test_rejects_dangling_reference(self):
        g = Graph("g")
        g.add_input("x", TensorType((1, 8)))
        with pytest.raises(GraphError, match="unknown node"):
            g.add_op("relu", [99])

    def test_rejects_no_outputs(self):
        g = Graph("g")
        g.add_input("x", TensorType((1, 8)))
        with pytest.raises(GraphError, match="no outputs"):
            g.finalize()

    def test_finalized_graph_frozen(self):
        g = Graph("g")
        x = g.add_input("x", TensorType((1, 8)))
        g.set_outputs([x])
        g.finalize()
        with pytest.raises(GraphError, match="finalized"):
            g.add_input("y", TensorType((1, 8)))

    def test_consumers(self):
        g = Graph("g")
        x = g.add_input("x", TensorType((1, 8)))
        r1 = g.add_op("relu", [x])
        r2 = g.add_op("relu", [x])
        assert {n.node_id for n in g.consumers(x)} == {r1, r2}

    def test_describe_lists_nodes(self):
        g = Graph("demo")
        x = g.add_input("x", TensorType((1, 8)))
        g.set_outputs([g.add_op("relu", [x])])
        text = g.describe()
        assert "relu" in text and "demo" in text

    def test_const_requires_rank(self):
        g = Graph("g")
        with pytest.raises(GraphError, match="rank"):
            g.add_const("s", np.float64(3.0))


class TestGraphBuilder:
    def test_conv_stack_shapes(self):
        g = (
            GraphBuilder("m", (1, 3, 16, 16))
            .conv2d(8, (3, 3), padding=(1, 1))
            .relu()
            .max_pool2d()
            .flatten()
            .dense(10)
            .softmax()
            .build()
        )
        out = g.nodes[g.output_ids[0]]
        assert out.ttype.shape == (1, 10)

    def test_dense_on_4d_rejected(self):
        builder = GraphBuilder("m", (1, 3, 8, 8))
        with pytest.raises(GraphError, match="2-D"):
            builder.dense(10)

    def test_conv_on_2d_rejected(self):
        builder = GraphBuilder("m", (1, 16))
        with pytest.raises(GraphError, match="4-D"):
            builder.conv2d(4, (3, 3))

    def test_parameters_are_deterministic(self):
        g1 = GraphBuilder("m", (1, 4)).dense(3).build()
        g2 = GraphBuilder("m", (1, 4)).dense(3).build()
        for (id1, p1), (id2, p2) in zip(
            sorted(g1.params.items()), sorted(g2.params.items())
        ):
            np.testing.assert_array_equal(p1, p2)

    def test_groups_validation(self):
        builder = GraphBuilder("m", (1, 3, 8, 8))
        with pytest.raises(GraphError, match="groups"):
            builder.conv2d(4, (3, 3), groups=2)
