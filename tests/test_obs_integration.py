"""Integration tests for the observability layer: spans through real
sessions/backends, worker-side timing over the wire, report metrics
round-trips, and metrics deltas in report diffs.

The global ``TRACER`` is shared process state — every test that
enables it goes through the ``traced`` fixture so a failure can never
leak an enabled tracer into the rest of the suite.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import EvaluationEngine, StatsCache, backend_counters
from repro.fleet.remote_backend import RemoteBackend
from repro.fleet.worker import start_worker
from repro.obs import TRACER
from repro.session import Session
from repro.session.reports import RunReport
from repro.stonne.config import sigma_config
from repro.stonne.layer import FcLayer
from repro.sweep import SweepPlan, SweepReport, diff_reports


@pytest.fixture
def traced():
    TRACER.enable()
    yield TRACER
    TRACER.disable()
    TRACER.clear()


def _categories():
    return {span["cat"] for span in TRACER.spans()}


LOCAL_TIERS = {"session", "sweep", "engine", "scheduler", "cache"}


# ----------------------------------------------------------------------
# spans across real backends
# ----------------------------------------------------------------------
class TestSessionTracing:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_sweep_covers_every_local_tier(self, executor, traced):
        with Session(executor=executor, max_workers=2) as session:
            plan = SweepPlan.matrix(session.config, models=["mlp", "lenet"])
            session.sweep(plan)
        assert LOCAL_TIERS <= _categories()

    def test_session_owns_tracer_and_writes_file(self, tmp_path):
        path = tmp_path / "trace.json"
        with Session(executor="thread", max_workers=2, trace=True,
                     trace_path=str(path)) as session:
            session.run("mlp")
            assert TRACER.enabled
            assert session.trace_path is None  # written at close
        assert not TRACER.enabled
        assert session.trace_path == str(path)
        doc = json.loads(path.read_text())
        categories = {s["cat"] for s in doc["reproTrace"]["spans"]}
        assert LOCAL_TIERS <= categories
        # Trace-only runs still embed the hit-rate metrics.
        assert "cache" in doc["reproTrace"]["metrics"]

    def test_nested_session_does_not_steal_the_trace(self, traced):
        with Session(executor="serial", trace=True) as session:
            session.run("mlp")
        # The outer fixture enabled tracing, so the session must not
        # have disabled it or written a file on close.
        assert TRACER.enabled
        assert session.trace_path is None
        assert len(TRACER.spans()) > 0

    def test_steals_and_resplits_are_distinct_span_names(self, traced):
        # A 2-slot thread backend over a multi-scenario sweep exercises
        # the pull loop; chunk-lifecycle spans all land in the
        # scheduler category on slot lanes.
        with Session(executor="thread", max_workers=2) as session:
            plan = SweepPlan.matrix(session.config, models=["mlp", "lenet"])
            session.sweep(plan)
        scheduler = [s for s in TRACER.spans() if s["cat"] == "scheduler"]
        chunk_spans = [s for s in scheduler if s["lane"].startswith("slot-")]
        assert chunk_spans
        assert {s["name"] for s in chunk_spans} <= {
            "scheduler.chunk", "scheduler.steal",
            "scheduler.resplit", "scheduler.speculative",
        }


# ----------------------------------------------------------------------
# fleet: worker-side timing over the wire
# ----------------------------------------------------------------------
def _fc_requests(n=4):
    from repro.engine.evaluation import EvalRequest

    return [
        EvalRequest(layer=FcLayer(f"fc{i}", 4 + i, 8), mapping=None)
        for i in range(n)
    ]


class TestFleetTiming:
    def test_worker_timing_becomes_remote_spans(self, traced):
        server, _ = start_worker()
        try:
            engine = EvaluationEngine(
                sigma_config(ms_size=8),
                cache=StatsCache(),
                executor=RemoteBackend(workers=[server.address]),
            )
            engine.evaluate_many(_fc_requests())
            engine.close()
        finally:
            server.close()
        fleet = [s for s in TRACER.spans() if s["cat"] == "fleet"]
        names = {s["name"] for s in fleet}
        assert "fleet.shard" in names
        assert "fleet.worker" in names
        worker_span = next(s for s in fleet if s["name"] == "fleet.worker")
        shard_span = next(s for s in fleet if s["name"] == "fleet.shard")
        # Worker-side timing rode back through the results message and
        # was right-aligned inside the client round trip.
        assert worker_span["args"]["simulated"] == 4
        assert 0 <= worker_span["dur"] <= shard_span["dur"] + 0.001
        assert worker_span["lane"].startswith("fleet-")

    def test_worker_health_lands_in_backend_metrics(self):
        server, _ = start_worker()
        try:
            backend = RemoteBackend(workers=[server.address])
            engine = EvaluationEngine(
                sigma_config(ms_size=8), cache=StatsCache(),
                executor=backend,
            )
            engine.evaluate_many(_fc_requests())
            counters = backend.metrics.snapshot()["counters"]
            assert counters[f"fleet.shards.{server.address}"] >= 1
            assert counters[f"fleet.items.{server.address}"] == 4
            hist = backend.metrics.get("fleet.worker_duration_s")
            assert hist.count >= 1
            engine.close()
        finally:
            server.close()

    def test_old_worker_without_timing_is_tolerated(self, traced,
                                                    monkeypatch):
        # Version skew: a pre-observability worker's results message
        # has no "timing" key.  Strip it at the link layer — the run
        # must succeed with no fleet.worker span and no error.
        from repro.fleet import remote_backend as rb

        original = rb._WorkerLink.request

        def skewed(self, message):
            response = original(self, message)
            response.pop("timing", None)
            return response

        monkeypatch.setattr(rb._WorkerLink, "request", skewed)
        server, _ = start_worker()
        try:
            engine = EvaluationEngine(
                sigma_config(ms_size=8), cache=StatsCache(),
                executor=RemoteBackend(workers=[server.address]),
            )
            results = engine.evaluate_many(_fc_requests())
            assert len(results) == 4
            engine.close()
        finally:
            server.close()
        names = {s["name"] for s in TRACER.spans() if s["cat"] == "fleet"}
        assert "fleet.shard" in names
        assert "fleet.worker" not in names


# ----------------------------------------------------------------------
# report metrics round-trips
# ----------------------------------------------------------------------
class TestReportMetrics:
    def test_sweep_report_metrics_round_trip(self):
        with Session(executor="thread", max_workers=2,
                     metrics=True) as session:
            plan = SweepPlan.matrix(session.config, models=["mlp"])
            report = session.sweep(plan)
        assert report.metrics["simulations"] > 0
        assert 0.0 <= report.metrics["cache"]["hit_rate"] <= 1.0
        rebuilt = SweepReport.from_json(report.to_json())
        assert rebuilt.metrics == json.loads(json.dumps(report.metrics))
        # The scenario's RunReport carries the same section.
        run = rebuilt.scenarios[0].report
        assert run.metrics["cache"]["hit_rate"] == (
            report.metrics["cache"]["hit_rate"]
        )

    def test_metrics_off_keeps_archives_byte_stable(self):
        with Session(executor="serial") as session:
            report = session.run("mlp")
        assert report.metrics == {}
        data = report.to_dict()
        assert "metrics" not in data
        assert RunReport.from_dict(data).metrics == {}

    def test_scheduler_counters_via_registry(self):
        # Satellite: the duck-typed scheduler_counters probing is gone;
        # backend_counters reads the metrics registry and keeps the
        # legacy dict shape.
        with Session(executor="thread", max_workers=2) as session:
            plan = SweepPlan.matrix(session.config, models=["mlp", "lenet"])
            session.sweep(plan)
            counters = backend_counters(session.engine.backend)
            assert counters["chunks_pulled"] > 0
            registry = session.engine.backend.metrics
            assert registry.value("scheduler.chunks_pulled") == (
                counters["chunks_pulled"]
            )
            latency = registry.get("scheduler.chunk_latency_s")
            assert latency.count == counters["chunks_pulled"]


# ----------------------------------------------------------------------
# diff: informational metrics deltas
# ----------------------------------------------------------------------
class TestDiffMetrics:
    def _sweep(self, **overrides):
        with Session(executor="serial", metrics=True, **overrides) as s:
            return s.sweep(SweepPlan.matrix(s.config, models=["mlp"]))

    def test_metrics_deltas_are_informational(self):
        before = self._sweep()
        after = self._sweep()
        diff = diff_reports(
            SweepReport.from_json(before.to_json()),
            SweepReport.from_json(after.to_json()),
        )
        assert set(diff.observability) >= {
            "cache_hit_rate", "simulations_per_s", "wall_s",
        }
        # Identical measurements: wall-time differences must not
        # register as a regression or break the zero verdict.
        assert diff.max_regression == 0.0
        assert diff.is_zero
        assert "observability (informational)" in diff.summary()
        assert "observability" in diff.to_dict()

    def test_no_metrics_section_no_deltas(self):
        with Session(executor="serial") as s:
            before = s.sweep(SweepPlan.matrix(s.config, models=["mlp"]))
        after = self._sweep()
        diff = diff_reports(before, after)
        assert diff.observability == {}
        assert "observability" not in diff.to_dict()
