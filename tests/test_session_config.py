"""Tests for the layered SessionConfig: precedence, coercion, round trips.

The documented precedence is ``CLI > kwargs > env > file > defaults``;
every pair of adjacent layers is exercised, plus bad-key rejection and
the bit-identical guarantee that a file-built session measures exactly
what an explicit-kwargs session does.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.session import (
    Session,
    SessionConfig,
    add_config_arguments,
    cli_overrides,
    env_overrides,
    field_specs,
    known_keys,
)


def _write_toml(tmp_path, text, name="repro.toml"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestDefaults:
    def test_default_sections(self):
        cfg = SessionConfig()
        assert cfg.architecture.arch == "maeri"
        assert cfg.engine.executor is None
        assert cfg.cache.path is None
        assert cfg.cache.max_rows is None
        assert cfg.fleet.workers == ()
        assert cfg.tuning.tuner == "xgb"

    def test_flat_keys_are_unique(self):
        keys = known_keys()
        assert len(keys) == len(set(keys))
        assert "executor" in keys and "cache_max_rows" in keys

    def test_every_field_has_env_name(self):
        for spec in field_specs():
            assert spec.env.startswith("REPRO_")


class TestFileLayer:
    def test_toml_file(self, tmp_path):
        path = _write_toml(tmp_path, """
[architecture]
arch = "sigma"
sparsity = 50

[engine]
executor = "thread"
max_workers = 3

[cache]
path = "stats.sqlite"
max_rows = 1000
""")
        cfg = SessionConfig.from_file(path)
        assert cfg.architecture.arch == "sigma"
        assert cfg.architecture.sparsity == 50
        assert cfg.engine.executor == "thread"
        assert cfg.engine.max_workers == 3
        assert cfg.cache.path == "stats.sqlite"
        assert cfg.cache.max_rows == 1000
        # Untouched sections keep their defaults.
        assert cfg.tuning.trials == 400

    def test_json_file(self, tmp_path):
        path = tmp_path / "repro.json"
        path.write_text(json.dumps(
            {"engine": {"executor": "process"}, "tuning": {"seed": 7}}
        ))
        cfg = SessionConfig.from_file(path)
        assert cfg.engine.executor == "process"
        assert cfg.tuning.seed == 7

    def test_missing_file_is_error(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            SessionConfig.from_file(tmp_path / "nope.toml")

    def test_invalid_toml_is_error(self, tmp_path):
        path = _write_toml(tmp_path, "[architecture\narch=")
        with pytest.raises(ConfigError, match="invalid TOML"):
            SessionConfig.from_file(path)

    def test_workers_list_in_file(self, tmp_path):
        path = _write_toml(tmp_path, """
[fleet]
workers = ["hostA:9461", "hostB:9461"]
""")
        cfg = SessionConfig.from_file(path)
        assert cfg.fleet.workers == ("hostA:9461", "hostB:9461")


class TestBadKeys:
    def test_unknown_section_rejected(self, tmp_path):
        path = _write_toml(tmp_path, "[cach]\npath = 'x'\n")
        with pytest.raises(ConfigError, match="unknown config section 'cach'"):
            SessionConfig.from_file(path)

    def test_unknown_key_rejected(self, tmp_path):
        path = _write_toml(tmp_path, "[engine]\nexecuter = 'serial'\n")
        with pytest.raises(ConfigError, match="unknown key 'executer'"):
            SessionConfig.from_file(path)

    def test_unknown_flat_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown config key"):
            SessionConfig.resolve(env=False, exector="serial")

    def test_bad_value_rejected(self):
        with pytest.raises(ConfigError, match="executor must be one of"):
            SessionConfig.resolve(env=False, executor="bogus")
        with pytest.raises(ConfigError, match="expects an integer"):
            SessionConfig.resolve(env=False, trials="many")
        with pytest.raises(ConfigError, match="arch must be one of"):
            SessionConfig.resolve(env=False, arch="eyeriss")


class TestEnvLayer:
    def test_env_only(self):
        env = {
            "REPRO_EXECUTOR": "thread",
            "REPRO_MAX_WORKERS": "5",
            "REPRO_CACHE_MAX_ROWS": "99",
            "REPRO_FUNCTIONAL": "true",
            "REPRO_FLEET_WORKERS": "a:1, b:2",
        }
        cfg = SessionConfig.from_env(env)
        assert cfg.engine.executor == "thread"
        assert cfg.engine.max_workers == 5
        assert cfg.cache.max_rows == 99
        assert cfg.engine.functional is True
        assert cfg.fleet.workers == ("a:1", "b:2")

    def test_unrelated_env_ignored(self):
        assert env_overrides({"REPRO_NOT_A_KEY": "x", "PATH": "/bin"}) == {}

    def test_empty_env_value_ignored(self):
        assert env_overrides({"REPRO_EXECUTOR": ""}) == {}


class TestPrecedence:
    def test_env_beats_file(self, tmp_path):
        path = _write_toml(tmp_path, "[engine]\nexecutor = 'serial'\n")
        cfg = SessionConfig.resolve(
            file=path, env={"REPRO_EXECUTOR": "thread"}
        )
        assert cfg.engine.executor == "thread"

    def test_kwargs_beat_env_and_file(self, tmp_path):
        path = _write_toml(tmp_path, "[engine]\nexecutor = 'serial'\n")
        cfg = SessionConfig.resolve(
            file=path, env={"REPRO_EXECUTOR": "thread"}, executor="process"
        )
        assert cfg.engine.executor == "process"

    def test_cli_beats_everything(self, tmp_path):
        path = _write_toml(tmp_path, "[engine]\nexecutor = 'serial'\n")
        cfg = SessionConfig.resolve(
            file=path,
            env={"REPRO_EXECUTOR": "thread"},
            cli={"executor": "remote"},
            executor="process",
        )
        assert cfg.engine.executor == "remote"

    def test_full_stack_layering(self, tmp_path):
        # Each layer sets a different key; all must show through.
        path = _write_toml(tmp_path, """
[architecture]
ms_size = 64

[tuning]
trials = 11
""")
        cfg = SessionConfig.resolve(
            file=path,
            env={"REPRO_SEED": "3"},
            cli={"objective": "cycles"},
            max_workers=2,
        )
        assert cfg.architecture.ms_size == 64      # file
        assert cfg.tuning.trials == 11             # file
        assert cfg.tuning.seed == 3                # env
        assert cfg.engine.max_workers == 2         # kwargs
        assert cfg.tuning.objective == "cycles"    # cli

    def test_env_false_is_hermetic(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        assert SessionConfig.resolve(env=False).engine.executor is None
        assert SessionConfig.resolve().engine.executor == "thread"


class TestRoundTrips:
    def test_dict_round_trip(self):
        cfg = SessionConfig.resolve(
            env=False, executor="process", cache_path="x.sqlite",
            cache_max_rows=10, workers="a:1,b:2", seed=9,
        )
        assert SessionConfig.from_dict(cfg.to_dict()) == cfg

    def test_json_round_trip(self):
        cfg = SessionConfig.resolve(env=False, arch="tpu", ms_rows=8, ms_cols=8)
        assert SessionConfig.from_dict(json.loads(cfg.to_json())) == cfg

    def test_toml_round_trip(self, tmp_path):
        cfg = SessionConfig.resolve(
            env=False, executor="thread", max_workers=4,
            cache_path="s.sqlite", workers="h:1",
        )
        path = _write_toml(tmp_path, cfg.to_toml(), "rt.toml")
        assert SessionConfig.from_file(path) == cfg

    def test_config_show_json_round_trips(self, capsys):
        from repro.cli import main

        assert main(["config", "show", "--json", "--executor", "process",
                     "--cache-max-rows", "42"]) == 0
        data = json.loads(capsys.readouterr().out)
        cfg = SessionConfig.from_dict(data)
        assert cfg.engine.executor == "process"
        assert cfg.cache.max_rows == 42

    def test_config_show_toml_is_loadable(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["config", "show", "--ms-size", "64"]) == 0
        path = _write_toml(tmp_path, capsys.readouterr().out, "shown.toml")
        assert SessionConfig.from_file(path).architecture.ms_size == 64


class TestCliDerivation:
    def test_flags_cover_every_cli_field(self):
        import argparse

        parser = argparse.ArgumentParser()
        add_config_arguments(parser)
        text = parser.format_help()
        for spec in field_specs():
            if spec.cli:
                assert spec.flag in text

    def test_only_given_flags_enter_cli_layer(self):
        import argparse

        parser = argparse.ArgumentParser()
        add_config_arguments(parser)
        args = parser.parse_args(["--executor", "serial"])
        assert cli_overrides(args) == {"executor": "serial"}

    def test_help_mentions_env_names(self):
        import argparse

        parser = argparse.ArgumentParser()
        add_config_arguments(parser)
        assert "REPRO_CACHE_MAX_ROWS" in parser.format_help()


class TestFileDrivenSessionParity:
    """`SessionConfig.from_file -> Session.run` must be bit-identical to
    the equivalent explicit-kwargs call (acceptance criterion)."""

    @pytest.mark.parametrize("model", ["mlp", "lenet"])
    def test_file_vs_kwargs_bit_identical(self, tmp_path, model):
        path = _write_toml(tmp_path, """
[architecture]
arch = "maeri"
ms_size = 64

[engine]
executor = "serial"

[tuning]
mapping = "mrna"
""")
        with Session(SessionConfig.resolve(file=path, env=False)) as s:
            from_file = s.run(model)
        with Session(SessionConfig.resolve(
            env=False, arch="maeri", ms_size=64, executor="serial",
            mapping="mrna",
        )) as s:
            from_kwargs = s.run(model)
        assert from_file.to_dict() == from_kwargs.to_dict()
        assert [st.to_dict() for st in from_file.layer_stats] == [
            st.to_dict() for st in from_kwargs.layer_stats
        ]


class TestEnvDrivenSessionParity:
    """`Session.from_env` must measure exactly what explicit kwargs do."""

    def test_env_vs_kwargs_bit_identical(self):
        env = {
            "REPRO_ARCH": "maeri",
            "REPRO_MS_SIZE": "64",
            "REPRO_EXECUTOR": "serial",
            "REPRO_MAPPING": "mrna",
        }
        with Session.from_env(env) as s:
            from_env = s.run("lenet")
        with Session(SessionConfig.resolve(
            env=False, arch="maeri", ms_size=64, executor="serial",
            mapping="mrna",
        )) as s:
            from_kwargs = s.run("lenet")
        assert from_env.to_dict() == from_kwargs.to_dict()

    def test_env_tune_fixed_seed_bit_identical(self):
        env = {"REPRO_TUNER": "random", "REPRO_TRIALS": "40",
               "REPRO_SEED": "5", "REPRO_OBJECTIVE": "cycles"}
        with Session.from_env(env) as s:
            from_env = s.tune("mlp", "fc1")
        with Session(tuner="random", trials=40, seed=5,
                     objective="cycles") as s:
            from_kwargs = s.tune("mlp", "fc1")
        assert from_env.to_dict() == from_kwargs.to_dict()

    @pytest.mark.parametrize("model", ["mlp", "lenet"])
    def test_file_compare_bit_identical(self, tmp_path, model):
        path = _write_toml(tmp_path, "[architecture]\nms_size = 128\n")
        with Session(SessionConfig.resolve(file=path, env=False)) as s:
            from_file = s.compare(model)
        with Session(SessionConfig.resolve(env=False, ms_size=128)) as s:
            from_kwargs = s.compare(model)
        assert from_file.to_dict() == from_kwargs.to_dict()

    @pytest.mark.parametrize("model", ["mlp", "lenet"])
    def test_file_tune_fixed_seed_bit_identical(self, tmp_path, model):
        layer = "fc1" if model == "mlp" else "fc2"
        path = _write_toml(tmp_path, """
[tuning]
tuner = "random"
trials = 40
seed = 2
objective = "cycles"
""")
        with Session(SessionConfig.resolve(file=path, env=False)) as s:
            from_file = s.tune(model, layer)
        with Session(tuner="random", trials=40, seed=2,
                     objective="cycles") as s:
            from_kwargs = s.tune(model, layer)
        assert from_file.to_dict() == from_kwargs.to_dict()


class TestProfiles:
    """Named [profile.X] overlays: selection, precedence, round trips."""

    TOML = (
        "[architecture]\n"
        "ms_size = 64\n\n"
        "[profile.edge.architecture]\n"
        "ms_size = 32\n\n"
        "[profile.edge.engine]\n"
        'executor = "serial"\n\n'
        "[profile.cloud.engine]\n"
        'executor = "process"\n'
        "max_workers = 4\n"
    )

    def test_profile_overlays_file_base(self, tmp_path):
        path = _write_toml(tmp_path, self.TOML)
        base = SessionConfig.from_file(path)
        edge = SessionConfig.from_file(path, profile="edge")
        assert base.architecture.ms_size == 64
        assert edge.architecture.ms_size == 32
        assert edge.engine.executor == "serial"

    def test_unselected_base_keys_show_through(self, tmp_path):
        path = _write_toml(tmp_path, self.TOML)
        cloud = SessionConfig.from_file(path, profile="cloud")
        # cloud does not touch the architecture section.
        assert cloud.architecture.ms_size == 64
        assert cloud.engine.max_workers == 4

    def test_env_beats_profile(self, tmp_path):
        path = _write_toml(tmp_path, self.TOML)
        config = SessionConfig.resolve(
            file=path, profile="edge", env={"REPRO_MS_SIZE": "99"},
        )
        assert config.architecture.ms_size == 99

    def test_kwargs_beat_profile(self, tmp_path):
        path = _write_toml(tmp_path, self.TOML)
        config = SessionConfig.resolve(
            file=path, profile="edge", env=False, ms_size=77,
        )
        assert config.architecture.ms_size == 77

    def test_cli_beats_profile(self, tmp_path):
        path = _write_toml(tmp_path, self.TOML)
        config = SessionConfig.resolve(
            file=path, profile="edge", env=False, cli={"ms_size": 55},
        )
        assert config.architecture.ms_size == 55

    def test_unknown_profile_rejected(self, tmp_path):
        path = _write_toml(tmp_path, self.TOML)
        with pytest.raises(ConfigError, match="no profile 'nope'"):
            SessionConfig.from_file(path, profile="nope")

    def test_profile_without_file_rejected(self):
        with pytest.raises(ConfigError, match="no config file"):
            SessionConfig.resolve(profile="edge", env=False)

    def test_bad_key_in_unselected_profile_rejected(self, tmp_path):
        path = _write_toml(
            tmp_path,
            "[profile.edge.architecture]\nms_sizee = 32\n",
        )
        # The typo fails loudly even when the profile is not selected.
        with pytest.raises(ConfigError, match="invalid profile 'edge'"):
            SessionConfig.from_file(path)

    def test_load_profiles_shape(self, tmp_path):
        from repro.session import load_profiles

        path = _write_toml(tmp_path, self.TOML)
        profiles = load_profiles(path)
        assert list(profiles) == ["edge", "cloud"]
        assert profiles["edge"]["architecture"]["ms_size"] == 32

    def test_to_toml_profiles_round_trip(self, tmp_path):
        from repro.session import load_profiles

        path = _write_toml(tmp_path, self.TOML)
        base = SessionConfig.from_file(path)
        snapshot = _write_toml(
            tmp_path,
            base.to_toml(profiles=load_profiles(path)),
            name="snapshot.toml",
        )
        assert load_profiles(snapshot) == load_profiles(path)
        assert SessionConfig.from_file(snapshot, profile="edge") == (
            SessionConfig.from_file(path, profile="edge")
        )

    def test_profile_flag_on_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = _write_toml(tmp_path, self.TOML)
        assert main([
            "config", "show", "--json", "--config", str(path),
            "--profile", "edge",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["architecture"]["ms_size"] == 32

    def test_config_show_text_renders_profiles(self, tmp_path, capsys):
        from repro.cli import main

        path = _write_toml(tmp_path, self.TOML)
        assert main(["config", "show", "--config", str(path)]) == 0
        shown = capsys.readouterr().out
        assert "[profile.edge.architecture]" in shown
        assert "[profile.cloud.engine]" in shown
        # ... and the rendered text is itself a loadable profile file.
        snapshot = _write_toml(tmp_path, shown, name="shown.toml")
        assert SessionConfig.from_file(snapshot, profile="edge") == (
            SessionConfig.from_file(path, profile="edge")
        )

    def test_autostart_validation(self):
        with pytest.raises(ConfigError, match="fleet_autostart"):
            SessionConfig.resolve(env=False, fleet_autostart=-1)
