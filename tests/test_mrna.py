"""Tests for the mRNA analytical mapper."""

import pytest

from repro.errors import TuningError
from repro.mrna import MaeriAnalyticalModel, MrnaMapper
from repro.stonne.config import maeri_config, sigma_config
from repro.stonne.layer import ConvLayer, FcLayer
from repro.stonne.maeri import MaeriController
from repro.stonne.mapping import ConvMapping, FcMapping


@pytest.fixture
def mapper(maeri128):
    return MrnaMapper(maeri128)


@pytest.fixture
def conv():
    return ConvLayer("c", C=16, H=12, W=12, K=32, R=3, S=3, pad_h=1, pad_w=1)


@pytest.fixture
def fc():
    return FcLayer("f", in_features=1024, out_features=512)


class TestConstruction:
    def test_requires_maeri(self):
        with pytest.raises(TuningError, match="MAERI"):
            MrnaMapper(sigma_config())


class TestAnalyticalModel:
    def test_estimates_track_simulation(self, maeri128, conv, fc):
        """The analytical model should be within ~2% of simulated cycles
        (it ignores only config/pipeline-fill overheads)."""
        model = MaeriAnalyticalModel(maeri128)
        controller = MaeriController(maeri128)
        for mapping in [
            ConvMapping(T_R=3, T_S=3, T_C=8),
            ConvMapping(T_K=4, T_X=4, T_Y=4),
            ConvMapping.basic(),
        ]:
            estimated = model.conv_cycles(conv, mapping)
            simulated = controller.run_conv(conv, mapping).cycles
            assert abs(estimated - simulated) / simulated < 0.02
        for mapping in [FcMapping(T_S=16, T_K=8), FcMapping.basic()]:
            estimated = model.fc_cycles(fc, mapping)
            simulated = controller.run_fc(fc, mapping).cycles
            assert abs(estimated - simulated) / simulated < 0.02

    def test_utilization(self, maeri128, conv):
        model = MaeriAnalyticalModel(maeri128)
        assert model.conv_utilization(conv, ConvMapping(T_R=3, T_S=3, T_C=8)) == 72 / 128


class TestMapper:
    def test_conv_mapping_valid_and_fast(self, mapper, conv, maeri128):
        mapping = mapper.map_conv(conv)
        mapping.validate_for(conv, maeri128.ms_size)
        assert mapping.multipliers_used > 1

    def test_fc_mapping_valid(self, mapper, fc, maeri128):
        mapping = mapper.map_fc(fc)
        mapping.validate_for(fc, maeri128.ms_size)

    def test_beats_basic_mapping_by_far(self, mapper, maeri128, conv, fc):
        controller = MaeriController(maeri128)
        conv_mrna = controller.run_conv(conv, mapper.map_conv(conv)).cycles
        conv_basic = controller.run_conv(conv, ConvMapping.basic()).cycles
        assert conv_basic > 10 * conv_mrna

        fc_mrna = controller.run_fc(fc, mapper.map_fc(fc)).cycles
        fc_basic = controller.run_fc(fc, FcMapping.basic()).cycles
        assert fc_basic > 10 * fc_mrna

    def test_fc_uses_spatial_reduction(self, mapper, fc):
        """mRNA balances T_S and T_K, unlike psum-guided tuning."""
        mapping = mapper.map_fc(fc)
        assert mapping.T_K > 1

    def test_mappings_vary_per_layer(self, mapper):
        """Table VI: mRNA adapts the mapping to layer characteristics."""
        a = mapper.map_fc(FcLayer("a", in_features=9216, out_features=4096))
        b = mapper.map_fc(FcLayer("b", in_features=4096, out_features=1000))
        assert (a.T_S, a.T_K) != (b.T_S, b.T_K) or a != b

    def test_score_includes_estimate(self, mapper, conv):
        choice = mapper.score_conv(conv)
        assert choice.estimated_cycles > 0

    def test_candidates_respect_capacity(self, mapper, conv, maeri128):
        for candidate in mapper.conv_candidates(conv):
            assert candidate.multipliers_used <= maeri128.ms_size

    def test_small_array_still_maps(self, conv):
        mapper = MrnaMapper(maeri_config(ms_size=8))
        mapping = mapper.map_conv(conv)
        assert mapping.multipliers_used <= 8
