"""Tests for errors, version, workloads, and package exports."""

import pytest

import repro
from repro import errors
from repro.workloads import (
    fig10_conv,
    medium_gemm,
    multiplier_sweep,
    sparsity_sweep,
    tiny_conv,
    tiny_fc,
)


class TestErrorsHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ConfigError", "MappingError", "LayerError",
            "UnsupportedLayerError", "GraphError", "ShapeInferenceError",
            "FrontendError", "TuningError", "SimulationError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_specializations(self):
        assert issubclass(errors.UnsupportedLayerError, errors.LayerError)
        assert issubclass(errors.ShapeInferenceError, errors.GraphError)

    def test_single_catch_point(self):
        with pytest.raises(errors.ReproError):
            raise errors.TuningError("x")


class TestVersion:
    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"


class TestWorkloads:
    def test_fig10_dimensions_match_paper(self):
        layer = fig10_conv()
        assert (layer.N, layer.C, layer.H, layer.W) == (1, 2, 10, 10)
        assert (layer.K, layer.R, layer.S) == (8, 3, 3)  # documented choice

    def test_tiny_workloads_fit_smallest_array(self):
        assert tiny_conv().macs > 0
        assert tiny_fc().macs > 0
        assert medium_gemm().macs == 64 * 256 * 32

    def test_sweeps_match_paper(self):
        assert multiplier_sweep() == [8, 16, 32, 64, 128]
        assert sparsity_sweep() == [0, 50]


class TestPackageSurface:
    def test_stonne_exports(self):
        import repro.stonne as stonne

        for name in stonne.__all__:
            assert hasattr(stonne, name), name

    def test_bifrost_exports(self):
        import repro.bifrost as bifrost

        for name in bifrost.__all__:
            assert hasattr(bifrost, name), name

    def test_tuner_exports(self):
        import repro.tuner as tuner

        for name in tuner.__all__:
            assert hasattr(tuner, name), name

    def test_ir_and_topi_exports(self):
        import repro.ir as ir
        import repro.topi as topi

        for name in ir.__all__:
            assert hasattr(ir, name), name
        for name in topi.__all__:
            assert hasattr(topi, name), name
