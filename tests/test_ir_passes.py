"""Tests for graph-level optimization passes."""

import numpy as np
import pytest

from repro.ir import Graph, GraphBuilder, TensorType
from repro.ir.passes import (
    PassManager,
    default_pipeline,
    eliminate_dead_code,
    fold_batch_norms,
    fold_constants,
    optimize,
)
from repro.runtime import compile_graph


def _bn_conv_graph(with_bias: bool):
    builder = GraphBuilder("bnconv", (1, 3, 8, 8))
    builder.conv2d(4, (3, 3), padding=(1, 1), bias=with_bias, name="conv")
    builder.batch_norm(name="bn")
    builder.relu()
    return builder.build()


class TestFoldBatchNorms:
    @pytest.mark.parametrize("with_bias", [True, False])
    def test_fold_preserves_output(self, rng, with_bias):
        data = rng.normal(size=(1, 3, 8, 8))
        graph = _bn_conv_graph(with_bias)
        before = compile_graph(graph, apply_passes=False)(data)

        folded = fold_batch_norms(graph)
        graph.infer_types()
        assert folded == 1
        assert not graph.op_nodes("batch_norm")
        after = compile_graph(graph, apply_passes=False)(data)
        np.testing.assert_allclose(after, before, rtol=1e-9)

    def test_no_fold_through_relu(self):
        builder = GraphBuilder("g", (1, 3, 8, 8))
        builder.conv2d(4, (3, 3)).relu().batch_norm()
        graph = builder.build()
        assert fold_batch_norms(graph) == 0
        assert graph.op_nodes("batch_norm")

    def test_no_fold_grouped_conv(self):
        builder = GraphBuilder("g", (1, 4, 8, 8))
        builder.conv2d(4, (3, 3), groups=2).batch_norm()
        graph = builder.build()
        assert fold_batch_norms(graph) == 0


class TestFoldConstants:
    def test_folds_all_const_subgraph(self):
        g = Graph("g")
        a = g.add_const("a", np.ones((2, 3)))
        b = g.add_const("b", np.full((2, 3), 2.0))
        s = g.add_op("add", [a, b])
        x = g.add_input("x", TensorType((2, 3)))
        out = g.add_op("add", [x, s])
        g.set_outputs([out])
        g.finalize()

        assert fold_constants(g) == 1
        assert g.nodes[s].kind == "const"
        np.testing.assert_array_equal(g.params[s], np.full((2, 3), 3.0))

    def test_does_not_fold_runtime_dependent(self):
        g = Graph("g")
        x = g.add_input("x", TensorType((2, 3)))
        r = g.add_op("relu", [x])
        g.set_outputs([r])
        g.finalize()
        assert fold_constants(g) == 0


class TestDeadCode:
    def test_removes_unreachable(self):
        g = Graph("g")
        x = g.add_input("x", TensorType((1, 4)))
        live = g.add_op("relu", [x])
        dead_const = g.add_const("unused", np.ones((4, 4)))
        dead = g.add_op("relu", [x])
        g.set_outputs([live])
        g.finalize()

        removed = eliminate_dead_code(g)
        assert removed == 2
        assert dead not in g.nodes and dead_const not in g.nodes
        assert dead_const not in g.params

    def test_keeps_declared_inputs(self):
        g = Graph("g")
        x = g.add_input("x", TensorType((1, 4)))
        y = g.add_input("unused_input", TensorType((1, 4)))
        g.set_outputs([g.add_op("relu", [x])])
        g.finalize()
        eliminate_dead_code(g)
        assert y in g.nodes


class TestPipeline:
    def test_default_pipeline_runs_to_fixpoint(self, rng):
        graph = _bn_conv_graph(with_bias=True)
        data = rng.normal(size=(1, 3, 8, 8))
        before = compile_graph(graph, apply_passes=False)(data)
        results = default_pipeline().run(graph)
        assert any(r.rewrites for r in results)
        after = compile_graph(graph, apply_passes=False)(data)
        np.testing.assert_allclose(after, before, rtol=1e-9)

    def test_optimize_returns_same_graph(self):
        graph = _bn_conv_graph(with_bias=True)
        assert optimize(graph) is graph

    def test_pass_manager_add_chains(self):
        manager = PassManager()
        assert manager.add(eliminate_dead_code) is manager
