"""The scenario-matrix sweep API: plans, cross-scenario dedup, reports,
diffing, and the CLI surface."""

from __future__ import annotations

import copy
import json

import pytest

from repro.cli import main
from repro.errors import ConfigError, ReproError
from repro.session import RunReport, Session, SessionConfig, TuneReport
from repro.sweep import (
    Scenario,
    SweepPlan,
    SweepReport,
    diff_reports,
    load_report,
    resolve_axis_key,
)

CFG = SessionConfig.resolve(env=False)

EDGE_CLOUD = {
    # Profiles that tweak execution, not hardware: every scenario pair
    # (model@edge, model@cloud) shares its whole key space.
    "edge": {"engine": {"executor": "serial"}},
    "cloud": {"engine": {"max_workers": 2}},
}


class TestAxisKeys:
    def test_flat_key_passes_through(self):
        assert resolve_axis_key("ms_size") == "ms_size"

    def test_dotted_key_resolves(self):
        assert resolve_axis_key("architecture.ms_size") == "ms_size"
        assert resolve_axis_key("cache.path") == "cache_path"

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown sweep axis"):
            resolve_axis_key("architecture.nope")


class TestSweepPlan:
    def test_matrix_expansion_order_and_names(self):
        plan = SweepPlan.matrix(
            CFG,
            models=["mlp", "lenet"],
            profiles=EDGE_CLOUD,
            axes={"architecture.ms_size": [64, 128]},
        )
        assert len(plan) == 8
        assert [s.name for s in plan][:4] == [
            "mlp/edge/ms_size=64",
            "mlp/edge/ms_size=128",
            "mlp/cloud/ms_size=64",
            "mlp/cloud/ms_size=128",
        ]

    def test_axis_values_coerced_like_config(self):
        # CLI-style string values expand to the same scenarios as ints.
        from_strings = SweepPlan.matrix(
            CFG, models=["mlp"], axes={"ms_size": ["64"]}
        )
        from_ints = SweepPlan.matrix(
            CFG, models=["mlp"], axes={"ms_size": [64]}
        )
        assert from_strings.scenarios[0].name == from_ints.scenarios[0].name
        assert (
            from_strings.scenarios[0].config
            == from_ints.scenarios[0].config
        )

    def test_profile_overlay_applies(self):
        plan = SweepPlan.matrix(
            CFG, models=["mlp"],
            profiles={"edge": {"architecture": {"ms_size": 32}}},
        )
        scenario = plan.scenarios[0]
        assert scenario.profile == "edge"
        assert scenario.config.architecture.ms_size == 32

    def test_unknown_model_rejected(self):
        with pytest.raises(ReproError, match="unknown model"):
            SweepPlan.matrix(CFG, models=["resnet"])

    def test_empty_models_rejected(self):
        with pytest.raises(ConfigError, match="at least one model"):
            SweepPlan.matrix(CFG, models=[])

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError, match="no values"):
            SweepPlan.matrix(CFG, models=["mlp"], axes={"ms_size": []})

    def test_duplicate_scenario_names_rejected(self):
        scenario = Scenario(name="a", config=CFG, model="mlp")
        with pytest.raises(ConfigError, match="duplicate scenario name"):
            SweepPlan(scenarios=(scenario, scenario))

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigError, match="scenario kind"):
            Scenario(name="a", config=CFG, model="mlp", kind="train")

    def test_labels_carry_matrix_coordinates(self):
        plan = SweepPlan.matrix(
            CFG, models=["mlp"], profiles=EDGE_CLOUD,
            axes={"ms_size": [64]},
        )
        assert plan.scenarios[0].labels() == {
            "model": "mlp", "profile": "edge", "ms_size": 64,
        }


class TestCrossScenarioDedup:
    def test_2x2_matrix_dedups_against_sequential_runs(self, tmp_path):
        """The acceptance criterion: a 2-model x 2-profile sweep over a
        shared .sqlite cache performs strictly fewer simulations than
        the four equivalent sequential runs."""
        plan = SweepPlan.matrix(
            CFG, models=["mlp", "lenet"], profiles=EDGE_CLOUD
        )
        with Session(CFG, cache_path=str(tmp_path / "sweep.sqlite")) as s:
            report = s.sweep(plan)
        sweep_simulations = report.counters["num_simulations"]

        sequential_simulations = 0
        for model in ("mlp", "lenet"):
            for profile in ("edge", "cloud"):
                config = CFG.merged_with_dict(EDGE_CLOUD[profile])
                with Session(config) as s:
                    s.run(model)
                    sequential_simulations += s.engine.num_simulations
        assert sweep_simulations < sequential_simulations

    def test_shared_layers_simulate_exactly_once(self):
        # mlp has 3 unique fc shapes, lenet 2 conv + 3 fc: the 2x2
        # matrix evaluates 16 layers but must simulate only the 8
        # distinct ones.
        plan = SweepPlan.matrix(
            CFG, models=["mlp", "lenet"], profiles=EDGE_CLOUD
        )
        with Session(CFG) as s:
            report = s.sweep(plan)
        assert report.counters["num_evaluations"] == 16
        assert report.counters["num_simulations"] == 8

    def test_sweep_results_bit_identical_to_single_runs(self):
        plan = SweepPlan.matrix(
            CFG, models=["mlp", "lenet"], profiles=EDGE_CLOUD
        )
        with Session(CFG) as s:
            sweep = s.sweep(plan)
        for model in ("mlp", "lenet"):
            with Session(CFG) as s:
                single = s.run(model)
            for profile in ("edge", "cloud"):
                swept = sweep[f"{model}/{profile}"]
                assert [st.to_dict() for st in swept.layer_stats] == [
                    st.to_dict() for st in single.layer_stats
                ]

    def test_architecture_axis_uses_distinct_engines(self):
        plan = SweepPlan.matrix(
            CFG, models=["mlp"], axes={"architecture.ms_size": [64, 128]}
        )
        with Session(CFG) as s:
            report = s.sweep(plan)
        # Different hardware -> different key spaces -> no dedup.
        assert report.counters["num_simulations"] == 6
        cycles = {
            s.overrides["ms_size"]: s.report.total_cycles
            for s in report.scenarios
        }
        assert cycles[64] != cycles[128]

    def test_sweep_on_process_executor_matches_serial(self, tmp_path):
        plan = SweepPlan.matrix(
            CFG, models=["mlp", "lenet"], profiles=EDGE_CLOUD
        )
        with Session(CFG) as s:
            serial = s.sweep(plan)
        with Session(CFG, executor="process", max_workers=2) as s:
            process = s.sweep(plan)
        for name in serial.names:
            assert [st.to_dict() for st in serial[name].layer_stats] == [
                st.to_dict() for st in process[name].layer_stats
            ]

    def test_mixed_kind_sweep(self):
        fast_tune = CFG.with_overrides(tuner="random", trials=4)
        plan = SweepPlan(
            scenarios=(
                Scenario(name="run", config=CFG, model="mlp"),
                Scenario(
                    name="tune", config=fast_tune, model="mlp",
                    kind="tune", layer="fc1",
                ),
            )
        )
        with Session(CFG) as s:
            report = s.sweep(plan)
        assert isinstance(report["run"], RunReport)
        assert isinstance(report["tune"], TuneReport)

    def test_sweep_rejects_non_plan(self):
        with Session(CFG) as s:
            with pytest.raises(ReproError, match="expects a SweepPlan"):
                s.sweep(["mlp"])


class TestSweepReport:
    @pytest.fixture(scope="class")
    def report(self):
        plan = SweepPlan.matrix(
            CFG, models=["mlp", "lenet"], profiles=EDGE_CLOUD
        )
        with Session(CFG) as s:
            return s.sweep(plan)

    def test_json_round_trip_is_bit_identical(self, report):
        again = SweepReport.from_json(report.to_json())
        assert again.to_json() == report.to_json()

    def test_getitem_and_keyerror(self, report):
        assert report["mlp/edge"].total_cycles > 0
        with pytest.raises(KeyError):
            report["nope"]

    def test_best_minimizes_metric(self, report):
        best = report.best("total_cycles")
        assert best.report.total_cycles == min(
            s.report.total_cycles for s in report
        )

    def test_best_without_metric_raises(self, report):
        with pytest.raises(ReproError, match="no scenario"):
            report.best("best_cost")

    def test_filter_by_labels(self, report):
        edge = report.filter(model="lenet", profile="edge")
        assert edge.names == ["lenet/edge"]

    def test_filter_by_predicate(self, report):
        slow = report.filter(
            lambda s: s.report.total_cycles
            > report.best().report.total_cycles
        )
        assert all(
            s.report.total_cycles > report.best().report.total_cycles
            for s in slow
        )

    def test_summary_lists_every_scenario(self, report):
        text = report.summary()
        for name in report.names:
            assert name in text
        assert "simulations" in text


class TestDiff:
    @pytest.fixture(scope="class")
    def report(self):
        plan = SweepPlan.matrix(CFG, models=["mlp"], profiles=EDGE_CLOUD)
        with Session(CFG) as s:
            return s.sweep(plan)

    def test_self_diff_is_zero(self, report):
        diff = diff_reports(report, report)
        assert diff.is_zero
        assert diff.max_regression == 0.0

    def test_regression_detected(self, report):
        worse = copy.deepcopy(report)
        worse.scenarios[0].report.layer_stats[0].cycles *= 2
        diff = diff_reports(report, worse)
        assert not diff.is_zero
        assert diff.max_regression > 0
        improved = diff_reports(worse, report)
        assert improved.max_regression <= 0

    def test_scenario_set_changes_are_reported(self, report):
        shrunk = copy.deepcopy(report)
        dropped = shrunk.scenarios.pop().name
        diff = diff_reports(report, shrunk)
        assert diff.only_before == [dropped]
        assert not diff.is_zero

    def test_run_report_diffs_standalone(self):
        with Session(CFG) as s:
            run = s.run("mlp")
        diff = diff_reports(run, run)
        assert diff.is_zero
        metrics = {m.metric for m in diff.scenarios[0].metrics}
        assert metrics == {"cycles", "energy"}

    def test_tune_report_diffs_on_cost(self):
        with Session(CFG) as s:
            tune = s.tune("mlp", "fc1", tuner="random", trials=4)
        diff = diff_reports(tune, tune)
        assert diff.is_zero
        assert diff.scenarios[0].metrics[0].metric == "best_cost"

    def test_load_report_dispatches_on_kind(self, tmp_path, report):
        sweep_path = tmp_path / "sweep.json"
        sweep_path.write_text(report.to_json())
        assert isinstance(load_report(sweep_path), SweepReport)
        run_path = tmp_path / "run.json"
        run_path.write_text(report.scenarios[0].report.to_json())
        assert isinstance(load_report(run_path), RunReport)

    def test_load_report_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_report(tmp_path / "nope.json")

    def test_load_report_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{")
        with pytest.raises(ReproError, match="invalid JSON"):
            load_report(path)


class TestSweepCli:
    def _write_matrix(self, tmp_path):
        path = tmp_path / "m.toml"
        path.write_text(
            "[architecture]\n"
            "ms_size = 128\n\n"
            "[profile.edge.engine]\n"
            'executor = "serial"\n\n'
            "[profile.cloud.engine]\n"
            "max_workers = 2\n"
        )
        return path

    def test_sweep_command(self, tmp_path, capsys):
        toml = self._write_matrix(tmp_path)
        out_path = tmp_path / "sweep.json"
        assert main([
            "sweep", "--config", str(toml), "--profiles", "edge,cloud",
            "--models", "mlp,lenet", "--report-json", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "mlp/edge" in out and "lenet/cloud" in out
        report = SweepReport.from_json(out_path.read_text())
        assert len(report) == 4
        # Cross-scenario dedup visible in the archived counters.
        assert report.counters["num_simulations"] == 8

    def test_sweep_axis_flag(self, tmp_path, capsys):
        assert main([
            "sweep", "--models", "mlp",
            "--axis", "architecture.ms_size=64,128",
        ]) == 0
        out = capsys.readouterr().out
        assert "mlp/ms_size=64" in out and "mlp/ms_size=128" in out

    def test_sweep_unknown_profile_is_error(self, tmp_path, capsys):
        toml = self._write_matrix(tmp_path)
        assert main([
            "sweep", "--config", str(toml), "--profiles", "nope",
            "--models", "mlp",
        ]) == 2
        assert "defines no profile" in capsys.readouterr().err

    def test_sweep_profiles_require_config(self, capsys):
        assert main([
            "sweep", "--profiles", "edge", "--models", "mlp",
        ]) == 2
        assert "requires --config" in capsys.readouterr().err

    def test_sweep_bad_axis_is_error(self, capsys):
        assert main([
            "sweep", "--models", "mlp", "--axis", "ms_size",
        ]) == 2
        assert "--axis expects" in capsys.readouterr().err

    def test_report_diff_zero_and_gate(self, tmp_path, capsys):
        toml = self._write_matrix(tmp_path)
        out_path = tmp_path / "sweep.json"
        assert main([
            "sweep", "--config", str(toml), "--profiles", "edge",
            "--models", "mlp", "--report-json", str(out_path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "report", "diff", str(out_path), str(out_path),
            "--fail-on-regression", "0",
        ]) == 0
        assert "no differences" in capsys.readouterr().out

    def test_report_diff_gate_trips_on_regression(self, tmp_path, capsys):
        with Session(CFG) as s:
            run = s.run("mlp")
        before = tmp_path / "before.json"
        before.write_text(run.to_json())
        worse_report = RunReport.from_json(run.to_json())
        worse_report.layer_stats[0].cycles *= 2
        after = tmp_path / "after.json"
        after.write_text(worse_report.to_json())
        assert main([
            "report", "diff", str(before), str(after),
            "--fail-on-regression", "5",
        ]) == 3
        captured = capsys.readouterr()
        assert "exceeds" in captured.err
        # Without the gate the same diff exits 0 but reports the delta.
        assert main(["report", "diff", str(before), str(after)]) == 0

    def test_report_diff_json_output(self, tmp_path, capsys):
        with Session(CFG) as s:
            run = s.run("mlp")
        path = tmp_path / "run.json"
        path.write_text(run.to_json())
        assert main([
            "report", "diff", str(path), str(path), "--json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "report_diff" and data["zero"] is True

    def test_report_diff_missing_file_is_error(self, tmp_path, capsys):
        assert main([
            "report", "diff", str(tmp_path / "a.json"),
            str(tmp_path / "b.json"),
        ]) == 1
        assert "not found" in capsys.readouterr().err


class TestBatchPlans:
    """The engine-level interface the sweep runner is built on."""

    def test_cross_plan_dedup_simulates_once(self, maeri128):
        from repro.engine import EvaluationEngine
        from repro.stonne.layer import FcLayer

        engine = EvaluationEngine(maeri128)
        a = engine.plan_many([FcLayer("a", in_features=64, out_features=8)])
        b = engine.plan_many([FcLayer("b", in_features=64, out_features=8)])
        engine.run_plans([a, b])
        assert engine.num_simulations == 1
        assert engine.num_evaluations == 2
        # Each plan owns an independently attributed copy.
        assert a.results[0].layer_name == "a"
        assert b.results[0].layer_name == "b"
        assert a.results[0] is not b.results[0]
        assert a.results[0].cycles == b.results[0].cycles

    def test_plan_hits_resolve_at_plan_time(self, maeri128):
        from repro.engine import EvaluationEngine
        from repro.stonne.layer import FcLayer

        engine = EvaluationEngine(maeri128)
        layer = FcLayer("fc", in_features=32, out_features=8)
        engine.evaluate(layer)
        plan = engine.plan_many([layer])
        assert plan.num_pending == 0
        assert plan.results[0] is not None

    def test_run_plans_rejects_foreign_plan(self, maeri128):
        from repro.engine import EvaluationEngine
        from repro.errors import SimulationError
        from repro.stonne.layer import FcLayer

        one = EvaluationEngine(maeri128)
        other = EvaluationEngine(maeri128)
        plan = one.plan_many([FcLayer("fc", in_features=32, out_features=8)])
        with pytest.raises(SimulationError, match="different engine"):
            other.run_plans([plan])


class TestReviewRegressions:
    """Fixes from the pre-merge review, pinned by tests."""

    def test_gate_trips_when_scenario_vanishes(self, tmp_path, capsys):
        plan = SweepPlan.matrix(CFG, models=["mlp"], profiles=EDGE_CLOUD)
        with Session(CFG) as s:
            report = s.sweep(plan)
        before = tmp_path / "before.json"
        before.write_text(report.to_json())
        shrunk = copy.deepcopy(report)
        shrunk.scenarios.pop()
        after = tmp_path / "after.json"
        after.write_text(shrunk.to_json())
        # A dropped benchmark must not read as "no regression".
        assert main([
            "report", "diff", str(before), str(after),
            "--fail-on-regression", "0",
        ]) == 3
        assert "missing from the after report" in capsys.readouterr().err
        # Without the gate it still exits 0 but reports the drop.
        assert main(["report", "diff", str(before), str(after)]) == 0
        assert "only in before" in capsys.readouterr().out

    def test_repeated_axis_flag_is_error(self, capsys):
        assert main([
            "sweep", "--models", "mlp",
            "--axis", "ms_size=64", "--axis", "ms_size=128",
        ]) == 2
        assert "given twice" in capsys.readouterr().err

    def test_run_counters_are_scenario_scoped(self):
        plan = SweepPlan.matrix(
            CFG, models=["mlp", "lenet"], profiles=EDGE_CLOUD
        )
        with Session(CFG) as s:
            report = s.sweep(plan)
        first = report.scenarios[0].report.counters
        assert first["num_evaluations"] == 3  # mlp's layers, not all 16
        # The same model under the second profile planned after the
        # first's misses were parked: all shared, none hit at plan time.
        cloud = report["mlp/cloud"].counters
        assert cloud["num_evaluations"] == 3

    def test_autostart_reaped_when_init_fails_late(self, monkeypatch):
        import os

        from repro.session import session as session_module

        spawned = []
        real_spawn = session_module.Session  # keep flake quiet

        from repro.fleet import worker as worker_module

        original = worker_module.spawn_local_workers

        def tracking_spawn(count, **kwargs):
            procs = original(count, **kwargs)
            spawned.extend(procs)
            return procs

        monkeypatch.setattr(
            worker_module, "spawn_local_workers", tracking_spawn
        )
        # Force a failure after the daemons are up: an unknown zoo
        # model is too late (post-__init__), so break engine build.
        from repro import engine as engine_module

        def boom(*args, **kwargs):
            raise RuntimeError("engine construction failed")

        monkeypatch.setattr(engine_module, "EvaluationEngine", boom)
        monkeypatch.setattr(
            session_module, "Session", real_spawn
        )
        with pytest.raises(RuntimeError, match="engine construction"):
            Session(fleet_autostart=1)
        assert spawned, "test did not exercise the spawn path"
        for proc in spawned:
            assert not proc.running
            with pytest.raises(ProcessLookupError):
                os.kill(proc.pid, 0)
