"""Tests for repro.engine: cache correctness, batching, tuner integration."""

import pytest

from repro.engine import EvalRequest, EvaluationEngine, StatsCache, evaluation_key
from repro.errors import SimulationError
from repro.stonne.config import maeri_config, sigma_config, tpu_config
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.stonne.params import CycleModelParams
from repro.stonne.simulator import Stonne
from repro.tuner.measure import MaeriConvTask
from repro.tuner.tuners.ga import GATuner


@pytest.fixture
def conv():
    return ConvLayer("c", C=4, H=10, W=10, K=8, R=3, S=3, pad_h=1, pad_w=1)


@pytest.fixture
def fc():
    return FcLayer("f", in_features=64, out_features=32)


class TestCacheCorrectness:
    def test_hit_returns_identical_contents(self, maeri128, conv):
        engine = EvaluationEngine(maeri128)
        mapping = ConvMapping(T_R=3, T_S=3)
        first = engine.evaluate(conv, mapping)
        second = engine.evaluate(conv, mapping)
        assert first == second
        assert engine.cache.hits == 1 and engine.cache.misses == 1
        assert engine.num_simulations == 1 and engine.num_evaluations == 2

    def test_results_match_uncached_facade(self, maeri128, conv):
        engine = EvaluationEngine(maeri128)
        mapping = ConvMapping(T_R=3, T_S=3)
        engine.evaluate(conv, mapping)  # prime
        cached = engine.evaluate(conv, mapping)  # hit
        assert cached == Stonne(maeri128).run_conv2d(conv, mapping=mapping).stats

    def test_hit_is_mutation_isolated(self, maeri128, conv):
        engine = EvaluationEngine(maeri128)
        first = engine.evaluate(conv)
        first.cycles = -1  # corrupt the caller's copy
        second = engine.evaluate(conv)
        assert second.cycles > 0

    def test_hit_rewrites_layer_name(self, maeri128):
        """Structurally identical layers share entries but keep their names."""
        engine = EvaluationEngine(maeri128)
        a = ConvLayer("conv_a", C=4, H=8, W=8, K=8, R=3, S=3)
        b = ConvLayer("conv_b", C=4, H=8, W=8, K=8, R=3, S=3)
        engine.evaluate(a)
        stats_b = engine.evaluate(b)
        assert engine.cache.hits == 1
        assert stats_b.layer_name == "conv_b"

    def test_distinct_mappings_never_collide(self, maeri128, conv):
        engine = EvaluationEngine(maeri128)
        s1 = engine.evaluate(conv, ConvMapping(T_R=3, T_S=3))
        s2 = engine.evaluate(conv, ConvMapping(T_K=4))
        assert engine.cache.misses == 2 and engine.cache.hits == 0
        assert s1.psums != s2.psums

    def test_distinct_params_never_collide(self, maeri128, conv):
        """Engines with different calibration share a cache without mixing."""
        shared = StatsCache()
        fast = EvaluationEngine(maeri128, cache=shared)
        slow = EvaluationEngine(
            maeri128, params=CycleModelParams(config_cycles=1000), cache=shared
        )
        c_fast = fast.evaluate(conv).cycles
        c_slow = slow.evaluate(conv).cycles
        assert shared.misses == 2 and shared.hits == 0
        assert c_slow > c_fast

    def test_distinct_configs_never_collide(self, conv):
        shared = StatsCache()
        a = EvaluationEngine(maeri_config(), cache=shared)
        b = EvaluationEngine(maeri_config(ms_size=64), cache=shared)
        a.evaluate(conv)
        b.evaluate(conv)
        assert shared.misses == 2 and shared.hits == 0

    def test_conv_fc_gemm_all_cacheable(self, conv, fc):
        engine = EvaluationEngine(sigma_config())
        for layer in (conv, fc, GemmLayer("g", M=8, K=32, N=4)):
            first = engine.evaluate(layer)
            assert engine.evaluate(layer) == first
        assert engine.cache.hits == 3 and engine.cache.misses == 3

    def test_rejects_unknown_workload(self, maeri128):
        engine = EvaluationEngine(maeri128)
        with pytest.raises(SimulationError, match="ConvLayer/FcLayer/GemmLayer"):
            engine.evaluate("not a layer")


class TestCacheBounds:
    def test_lru_eviction(self, maeri128):
        engine = EvaluationEngine(maeri128, cache=StatsCache(max_entries=2))
        layers = [
            FcLayer(f"f{i}", in_features=8 + i, out_features=4) for i in range(3)
        ]
        for layer in layers:
            engine.evaluate(layer)
        assert len(engine.cache) == 2
        engine.evaluate(layers[0])  # evicted -> simulated again
        assert engine.cache.hits == 0 and engine.cache.misses == 4

    def test_disabled_cache_always_simulates(self, maeri128, conv):
        engine = EvaluationEngine(maeri128, cache_enabled=False)
        engine.evaluate(conv)
        engine.evaluate(conv)
        assert engine.num_simulations == 2
        assert len(engine.cache) == 0

    def test_clear_resets(self, maeri128, conv):
        engine = EvaluationEngine(maeri128)
        engine.evaluate(conv)
        engine.cache.clear()
        assert len(engine.cache) == 0
        assert engine.cache.counters() == (0, 0)


class TestBatchEvaluation:
    def test_parallel_matches_sequential(self, maeri128):
        requests = [
            EvalRequest(
                ConvLayer(f"c{i}", C=2 + i, H=8, W=8, K=4, R=3, S=3),
                ConvMapping(T_R=3),
            )
            for i in range(6)
        ] + [EvalRequest(FcLayer("f", in_features=32, out_features=16))]
        sequential = EvaluationEngine(maeri128).evaluate_many(requests)
        parallel = EvaluationEngine(maeri128).evaluate_many(
            requests, max_workers=4
        )
        assert sequential == parallel
        assert [s.layer_name for s in parallel] == [
            r.layer.name for r in requests
        ]

    def test_accepts_bare_layers(self, maeri128, fc):
        engine = EvaluationEngine(tpu_config())
        stats = engine.evaluate_many([fc, fc])
        assert stats[0] == stats[1]
        assert engine.cache.hits == 1

    def test_empty_batch(self, maeri128):
        assert EvaluationEngine(maeri128).evaluate_many([]) == []


class TestFunctionalMode:
    def test_stats_identical_with_and_without_datapath(self, maeri128, conv, fc):
        mapping = ConvMapping(T_R=3, T_S=3)
        plain = EvaluationEngine(maeri128, cache_enabled=False)
        functional = EvaluationEngine(
            maeri128, cache_enabled=False, functional=True
        )
        assert plain.evaluate(conv, mapping) == functional.evaluate(conv, mapping)
        assert plain.evaluate(fc) == functional.evaluate(fc)

    def test_functional_gemm(self):
        engine = EvaluationEngine(sigma_config(), functional=True)
        assert engine.evaluate(GemmLayer("g", M=8, K=16, N=4)).cycles > 0


class TestCacheAwareTuning:
    def test_retuning_identical_shape_skips_all_simulations(self, maeri128):
        layer_a = ConvLayer("a", C=8, H=12, W=12, K=8, R=3, S=3)
        layer_b = ConvLayer("b", C=8, H=12, W=12, K=8, R=3, S=3)
        engine = EvaluationEngine(maeri128)

        task_a = MaeriConvTask(layer_a, maeri128, objective="cycles", engine=engine)
        best_a = GATuner(task_a, seed=3).tune(n_trials=120).best_cost
        assert task_a.num_simulations > 0

        task_b = MaeriConvTask(layer_b, maeri128, objective="cycles", engine=engine)
        best_b = GATuner(task_b, seed=3).tune(n_trials=120).best_cost
        assert best_b == best_a
        assert task_b.num_measurements > 0
        assert task_b.num_simulations == 0  # everything served from cache

    def test_psums_objective_reports_zero_simulations(self, maeri128):
        layer = ConvLayer("p", C=8, H=12, W=12, K=8, R=3, S=3)
        task = MaeriConvTask(layer, maeri128, objective="psums")
        GATuner(task, seed=0).tune(n_trials=60)
        assert task.num_measurements == 60
        assert task.num_simulations == 0  # closed-form proxy, no cycle model

    def test_task_without_engine_counts_locally(self, maeri128):
        from repro.tuner.measure import CallableTask
        from repro.tuner.space import ConfigSpace

        space = ConfigSpace()
        space.define_knob("x", [1, 2, 3, 4])
        task = CallableTask(space, lambda cfg: float(cfg["x"]))
        for i in range(4):
            task.measure(space.config_at(i))
        assert task.num_simulations == 4
