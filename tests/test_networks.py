"""Unit tests for the network component models (distribution, reduction,
multiplier, memory)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MappingError, SimulationError
from repro.stonne.distribution import DistributionNetwork
from repro.stonne.memory import AccumulationBuffer, GlobalBuffer
from repro.stonne.multiplier import LinearMultiplierNetwork, OSMeshNetwork
from repro.stonne.reduction import (
    ARTNetwork,
    FENetwork,
    TemporalRN,
    make_reduction_network,
)


class TestDistributionNetwork:
    def test_bandwidth_limits_throughput(self):
        dn = DistributionNetwork(bandwidth=16, fanout=128)
        assert dn.cycles_to_distribute(16) == 1
        assert dn.cycles_to_distribute(17) == 2
        assert dn.cycles_to_distribute(0) == 0

    def test_depth_log_fanout(self):
        assert DistributionNetwork(bandwidth=8, fanout=128).depth == 7
        assert DistributionNetwork(bandwidth=8, fanout=1).depth == 1

    def test_rejects_bad_params(self):
        with pytest.raises(SimulationError):
            DistributionNetwork(bandwidth=0, fanout=8)
        with pytest.raises(SimulationError):
            DistributionNetwork(bandwidth=8, fanout=8).cycles_to_distribute(-1)

    @given(n=st.integers(0, 10_000), bw=st.integers(1, 256))
    def test_cycles_monotone_in_elements(self, n, bw):
        dn = DistributionNetwork(bandwidth=bw, fanout=64)
        assert dn.cycles_to_distribute(n) <= dn.cycles_to_distribute(n + 1)


class TestReductionNetworks:
    def test_art_latency_is_tree_depth(self):
        art = ARTNetwork(bandwidth=16)
        assert art.reduction_latency(1) == 0
        assert art.reduction_latency(2) == 1
        assert art.reduction_latency(8) == 3
        assert art.reduction_latency(9) == 4

    def test_art_spatial_psums(self):
        art = ARTNetwork(bandwidth=16)
        assert art.spatial_psums(vn_size=8, num_vns=4) == 28
        assert art.spatial_psums(vn_size=1, num_vns=16) == 0

    def test_partial_outputs_cost_rmw_occupancy(self):
        art = ARTNetwork(bandwidth=16, rmw_occupancy=3)
        assert art.cycles_to_collect(16, partial=False) == 1
        assert art.cycles_to_collect(16, partial=True) == 3

    def test_fen_latency_linear_then_capped(self):
        fen = FENetwork(bandwidth=16)
        assert fen.reduction_latency(2) == 1
        assert fen.reduction_latency(3) == 2
        # capped at 2*ceil(log2(v)) for large VNs
        assert fen.reduction_latency(64) == 12

    def test_temporal_rejects_spatial_vns(self):
        trn = TemporalRN(bandwidth=256)
        assert trn.reduction_latency(1) == 0
        with pytest.raises(SimulationError):
            trn.reduction_latency(4)
        assert trn.spatial_psums(1, 256) == 0

    def test_factory(self):
        assert isinstance(make_reduction_network("ASNETWORK", 16), ARTNetwork)
        assert isinstance(make_reduction_network("FENETWORK", 16), FENetwork)
        assert isinstance(make_reduction_network("TEMPORALRN", 16), TemporalRN)
        with pytest.raises(SimulationError, match="unknown"):
            make_reduction_network("NOPE", 16)


class TestMultiplierNetworks:
    def test_linear_fit_check(self):
        net = LinearMultiplierNetwork(size=64)
        net.check_fit(vn_size=8, num_vns=8)
        with pytest.raises(MappingError):
            net.check_fit(vn_size=8, num_vns=9)

    def test_linear_compute_cycles(self):
        net = LinearMultiplierNetwork(size=64)
        assert net.compute_cycles(64, 64) == 1
        assert net.compute_cycles(65, 64) == 2
        assert net.compute_cycles(0, 64) == 0

    def test_os_mesh_tile_cycles(self):
        mesh = OSMeshNetwork(rows=4, cols=4)
        # K + (rows + cols - 2) + 1
        assert mesh.tile_cycles(10) == 10 + 6 + 1
        assert mesh.size == 16

    def test_os_mesh_rejects_bad_reduction(self):
        with pytest.raises(SimulationError):
            OSMeshNetwork(rows=4, cols=4).tile_cycles(0)


class TestAccumulationBuffer:
    def test_hazard_only_on_same_outputs(self):
        acc = AccumulationBuffer(enabled=True, raw_latency=2)
        assert acc.hazard_stall(False) == 0
        assert acc.hazard_stall(True) == 2

    def test_disabled_buffer_doubles_penalty_and_spills(self):
        acc = AccumulationBuffer(enabled=False, raw_latency=2)
        assert acc.hazard_stall(True) == 4
        assert acc.spill_factor() == 2

    def test_traffic_accounting(self):
        acc = AccumulationBuffer()
        acc.record_partial_writes(10)
        acc.record_final_writes(5)
        assert acc.reads == 10
        assert acc.writes == 15
        with pytest.raises(SimulationError):
            acc.record_partial_writes(-1)


class TestGlobalBuffer:
    def test_capacity_check(self):
        buf = GlobalBuffer(read_bandwidth=64, write_bandwidth=16,
                           capacity_elements=1000)
        assert buf.fits(1000)
        assert not buf.fits(1001)

    def test_rejects_bad_params(self):
        with pytest.raises(SimulationError):
            GlobalBuffer(read_bandwidth=0, write_bandwidth=16)
