"""Deprecation hygiene for the pre-Session entry points.

Every legacy surface — ``make_session``, ``run_layers(executor=...)``,
``run_graph(executor=...)``, ``StonneBifrostApi(executor=...)`` — must
keep producing *identical* results while warning exactly once per call,
so downstream code migrates on its own schedule without silent drift.
"""

import warnings

import numpy as np
import pytest

from repro.bifrost.api import StonneBifrostApi
from repro.bifrost.mapping_config import MappingConfigurator
from repro.bifrost.runner import make_session, run_graph, run_layers
from repro.session import Session, zoo_layers
from repro.stonne.config import maeri_config

CONFIG = maeri_config()


def _single_warning(record):
    """The one DeprecationWarning a legacy call must emit."""
    deprecations = [
        w for w in record if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1, (
        f"expected exactly one DeprecationWarning, got "
        f"{[str(w.message) for w in deprecations]}"
    )
    return deprecations[0]


class TestMakeSession:
    def test_warns_exactly_once(self):
        with pytest.warns(DeprecationWarning) as record:
            make_session(CONFIG)
        warning = _single_warning(record)
        assert "repro.session.Session" in str(warning.message)

    def test_results_identical_to_session(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = make_session(CONFIG, mapping_strategy="mrna")
            legacy_stats = run_layers(zoo_layers("lenet"), legacy)
            legacy.close()
        with Session(mapping="mrna") as s:
            report = s.run("lenet")
        assert [st.to_dict() for st in legacy_stats] == [
            st.to_dict() for st in report.layer_stats
        ]

    def test_returned_api_keeps_legacy_fields(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            api = make_session(CONFIG, executor="thread", max_workers=2)
        assert api.executor == "thread"
        assert api.max_workers == 2
        assert api.engine.backend.name == "thread"
        api.close()

    def test_forwards_engine_options_without_double_warning(self):
        # The shim builds the engine through Session, so the inner
        # StonneBifrostApi deprecation path must not fire a second time.
        with pytest.warns(DeprecationWarning) as record:
            api = make_session(CONFIG, executor="serial",
                               cache_path=None, max_workers=None)
        _single_warning(record)
        api.close()


class TestRunLayersExecutorKwarg:
    def test_warns_exactly_once_and_identical(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            session = make_session(CONFIG)
        layers = zoo_layers("mlp")
        baseline = run_layers(layers, session)
        with pytest.warns(DeprecationWarning) as record:
            threaded = run_layers(layers, session, executor="thread")
        warning = _single_warning(record)
        assert "run_layers(executor=...)" in str(warning.message)
        assert [s.to_dict() for s in baseline] == [
            s.to_dict() for s in threaded
        ]
        session.close()

    def test_no_warning_without_kwarg(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            session = make_session(CONFIG)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            run_layers(zoo_layers("mlp"), session)
        assert [w for w in record
                if issubclass(w.category, DeprecationWarning)] == []
        session.close()

    def test_accepts_session_object(self):
        with Session(mapping="default") as s:
            stats = run_layers(zoo_layers("mlp"), s)
            assert len(stats) == len(zoo_layers("mlp"))


class TestRunGraphExecutorKwarg:
    def test_warns_exactly_once_and_identical(self):
        from repro.models import lenet_graph

        feed = {"data": np.ones((1, 1, 28, 28))}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            session = make_session(CONFIG)
        baseline = run_graph(lenet_graph(), feed, session)
        with pytest.warns(DeprecationWarning) as record:
            threaded = run_graph(lenet_graph(), feed, session,
                                 executor="thread")
        _single_warning(record)
        assert baseline.total_cycles == threaded.total_cycles
        assert np.array_equal(baseline.output, threaded.output)
        session.close()


class TestStonneBifrostApiKwargs:
    @pytest.mark.parametrize("kwargs", [
        {"executor": "serial"},
        {"max_workers": 2},
        {"workers": ["localhost:1"]},
    ])
    def test_engine_kwargs_warn_exactly_once(self, kwargs):
        with pytest.warns(DeprecationWarning) as record:
            api = StonneBifrostApi(
                config=CONFIG,
                mappings=MappingConfigurator(config=CONFIG),
                **kwargs,
            )
        warning = _single_warning(record)
        assert "StonneBifrostApi" in str(warning.message)
        api.close()

    def test_cache_path_kwarg_warns(self, tmp_path):
        with pytest.warns(DeprecationWarning) as record:
            api = StonneBifrostApi(
                config=CONFIG,
                mappings=MappingConfigurator(config=CONFIG),
                cache_path=str(tmp_path / "c.jsonl"),
            )
        _single_warning(record)
        api.close()

    def test_plain_construction_does_not_warn(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            api = StonneBifrostApi(
                config=CONFIG, mappings=MappingConfigurator(config=CONFIG)
            )
        assert [w for w in record
                if issubclass(w.category, DeprecationWarning)] == []
        api.close()

    def test_deprecated_kwargs_still_work(self, rng=np.random.default_rng(0)):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = StonneBifrostApi(
                config=CONFIG,
                mappings=MappingConfigurator(config=CONFIG, strategy="mrna"),
                executor="serial",
            )
        data = rng.normal(size=(1, 1, 8, 8))
        weights = rng.normal(size=(4, 1, 3, 3))
        out = legacy.conv2d_nchw(data, weights)
        with Session(mapping="mrna") as s:
            expected = s.api.conv2d_nchw(data, weights)
        assert np.array_equal(out, expected)
        assert legacy.stats[0].to_dict() == s.api.stats[0].to_dict()
        legacy.close()


class TestLegacyTeardown:
    def test_make_session_close_closes_cache_tier(self, tmp_path):
        import sqlite3

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            api = make_session(CONFIG, cache_path=str(tmp_path / "t.sqlite"))
        api.dense(np.ones((1, 8)), np.ones((4, 8)))
        api.close()
        with pytest.raises(sqlite3.ProgrammingError):
            api.engine.cache._conn.execute("SELECT 1")

    def test_direct_api_close_closes_owned_cache(self, tmp_path):
        import sqlite3

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            api = StonneBifrostApi(
                config=CONFIG,
                mappings=MappingConfigurator(config=CONFIG),
                cache_path=str(tmp_path / "d.sqlite"),
            )
        with api:
            api.dense(np.ones((1, 8)), np.ones((4, 8)))
        with pytest.raises(sqlite3.ProgrammingError):
            api.engine.cache._conn.execute("SELECT 1")
