"""Tests for the graph executor and offload policies."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.ir import Graph, GraphBuilder, TensorType
from repro.runtime import (
    CompiledModule,
    GraphExecutor,
    compile_graph,
    cpu_only_policy,
    make_offload_policy,
)
from repro.topi.registry import register_op, unregister_op


@pytest.fixture
def simple_graph():
    return (
        GraphBuilder("m", (1, 4))
        .dense(3, name="fc")
        .relu()
        .build()
    )


class TestExecutor:
    def test_runs_and_profiles(self, rng, simple_graph):
        executor = GraphExecutor(simple_graph)
        out = executor.run({"data": rng.normal(size=(1, 4))})
        assert out[0].shape == (1, 3)
        report = executor.last_report
        assert report is not None
        assert report.by_target() == {"cpu": 3}  # dense, bias_add, relu
        assert all(p.wall_time_s >= 0 for p in report.profiles)

    def test_missing_feed(self, simple_graph):
        with pytest.raises(GraphError, match="missing feed"):
            GraphExecutor(simple_graph).run({})

    def test_unknown_feed(self, rng, simple_graph):
        with pytest.raises(GraphError, match="unknown feeds"):
            GraphExecutor(simple_graph).run(
                {"data": rng.normal(size=(1, 4)), "bogus": np.ones(2)}
            )

    def test_wrong_feed_shape(self, simple_graph):
        with pytest.raises(GraphError, match="shape"):
            GraphExecutor(simple_graph).run({"data": np.ones((2, 4))})

    def test_multi_output_graph(self, rng):
        g = Graph("multi")
        x = g.add_input("x", TensorType((1, 4)))
        r = g.add_op("relu", [x])
        t = g.add_op("tanh", [x])
        g.set_outputs([r, t])
        g.finalize()
        outs = GraphExecutor(g).run({"x": rng.normal(size=(1, 4))})
        assert len(outs) == 2


class TestOffloadPolicy:
    def test_policy_falls_back_when_target_missing(self, simple_graph):
        policy = make_offload_policy("phantom-target")
        node = simple_graph.op_nodes("dense")[0]
        assert policy(node) == "cpu"

    def test_policy_routes_when_registered(self, rng, simple_graph):
        @register_op("dense", "fake-accel")
        def _dense_fake(attrs, inputs):
            return np.zeros((inputs[0].shape[0], inputs[1].shape[0]))

        try:
            executor = GraphExecutor(
                simple_graph, make_offload_policy("fake-accel")
            )
            executor.run({"data": rng.normal(size=(1, 4))})
            report = executor.last_report
            assert report.by_target() == {"fake-accel": 1, "cpu": 2}
            assert report.offloaded("fake-accel")[0].op_name == "dense"
        finally:
            unregister_op("dense", "fake-accel")

    def test_cpu_only_policy(self, simple_graph):
        assert cpu_only_policy(simple_graph.op_nodes("dense")[0]) == "cpu"


class TestCompiledModule:
    def test_call_uses_first_input(self, rng, simple_graph):
        module = CompiledModule(simple_graph)
        out = module(rng.normal(size=(1, 4)))
        assert out.shape == (1, 3)
        assert module.report is not None

    def test_compile_graph_applies_passes(self, rng):
        graph = (
            GraphBuilder("m", (1, 3, 8, 8))
            .conv2d(4, (3, 3), name="conv")
            .batch_norm()
            .relu()
            .build()
        )
        module = compile_graph(graph)
        assert not graph.op_nodes("batch_norm")  # folded
        assert module(rng.normal(size=(1, 3, 8, 8))).shape == (1, 4, 6, 6)

    def test_summary_mentions_targets(self, rng, simple_graph):
        module = CompiledModule(simple_graph)
        module(rng.normal(size=(1, 4)))
        assert "cpu" in module.report.summary()
