"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bifrost.strategies import uninstall_session
from repro.stonne.config import maeri_config, sigma_config, tpu_config
from repro.stonne.layer import ConvLayer, FcLayer


@pytest.fixture
def rng():
    """A deterministic RNG per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def maeri128():
    """The paper's default MAERI configuration (128 multipliers)."""
    return maeri_config()


@pytest.fixture
def sigma128():
    return sigma_config()


@pytest.fixture
def tpu16():
    return tpu_config(ms_rows=16, ms_cols=16)


@pytest.fixture
def small_conv():
    """A conv small enough for exhaustive mapping sweeps in tests."""
    return ConvLayer("small_conv", C=2, H=8, W=8, K=4, R=3, S=3)


@pytest.fixture
def small_fc():
    return FcLayer("small_fc", in_features=64, out_features=32)


@pytest.fixture(autouse=True)
def _isolate_stonne_target():
    """Ensure no test leaks a bound Bifrost session into the registry."""
    uninstall_session()
    yield
    uninstall_session()
