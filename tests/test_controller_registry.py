"""Controller registry: parity with legacy direct dispatch + extensibility."""

from types import SimpleNamespace

import pytest

from repro.errors import ConfigError, UnsupportedLayerError
from repro.stonne.config import (
    ControllerType,
    maeri_config,
    magma_config,
    sigma_config,
    tpu_config,
)
from repro.stonne.controller import (
    AcceleratorController,
    controller_class,
    make_controller,
    register_controller,
    registered_controller_types,
    unregister_controller,
)
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer
from repro.stonne.maeri import MaeriController
from repro.stonne.magma import MagmaController
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.stonne.sigma import SigmaController
from repro.stonne.simulator import Stonne
from repro.stonne.stats import SimulationStats
from repro.stonne.tpu import TpuController

ALL_CONFIGS = [
    (maeri_config(), MaeriController),
    (sigma_config(sparsity_ratio=50), SigmaController),
    (magma_config(sparsity_ratio=50), MagmaController),
    (tpu_config(), TpuController),
]

CONV = ConvLayer("c", C=3, H=10, W=10, K=4, R=3, S=3, pad_h=1, pad_w=1)
FC = FcLayer("f", in_features=64, out_features=32)
GEMM = GemmLayer("g", M=16, K=64, N=8)


class TestRegistryResolution:
    @pytest.mark.parametrize("config,expected", ALL_CONFIGS)
    def test_resolves_to_expected_class(self, config, expected):
        assert controller_class(config.controller_type) is expected
        assert type(make_controller(config)) is expected

    def test_resolves_from_string_key(self):
        assert controller_class("MAERI_DENSE_WORKLOAD") is MaeriController

    def test_all_builtins_registered(self):
        assert set(registered_controller_types()) >= {
            ct.value for ct in ControllerType
        }

    def test_unknown_type_raises(self):
        with pytest.raises(ConfigError, match="no controller registered"):
            controller_class("NOT_A_CONTROLLER")


class TestLegacyParity:
    """The registry path must be bit-identical to direct construction."""

    @pytest.mark.parametrize("config,legacy_cls", ALL_CONFIGS)
    def test_conv_stats_identical(self, config, legacy_cls):
        mapping = ConvMapping(T_R=3, T_S=3, T_C=3)
        kwargs = {"mapping": mapping} if legacy_cls is MaeriController else {}
        legacy = legacy_cls(config).run_conv(CONV, **kwargs)
        via_registry = make_controller(config).run_conv(
            CONV, mapping if legacy_cls is MaeriController else None
        )
        via_facade = Stonne(config).run_conv2d(
            CONV, mapping=mapping if legacy_cls is MaeriController else None
        ).stats
        assert legacy == via_registry == via_facade

    @pytest.mark.parametrize("config,legacy_cls", ALL_CONFIGS)
    def test_fc_stats_identical(self, config, legacy_cls):
        mapping = FcMapping(T_S=4, T_K=8)
        kwargs = {"mapping": mapping} if legacy_cls is MaeriController else {}
        legacy = legacy_cls(config).run_fc(FC, **kwargs)
        via_registry = make_controller(config).run_fc(
            FC, mapping if legacy_cls is MaeriController else None
        )
        via_facade = Stonne(config).run_dense(
            FC, mapping=mapping if legacy_cls is MaeriController else None
        ).stats
        assert legacy == via_registry == via_facade

    @pytest.mark.parametrize("config,legacy_cls", ALL_CONFIGS)
    def test_gemm_stats_identical_or_unsupported(self, config, legacy_cls):
        controller = make_controller(config)
        if not controller.supports("gemm"):
            with pytest.raises(UnsupportedLayerError):
                controller.run_gemm(GEMM)
            with pytest.raises(UnsupportedLayerError):
                Stonne(config).run_gemm(GEMM)
            return
        legacy = legacy_cls(config).run_gemm(GEMM)
        assert legacy == make_controller(config).run_gemm(GEMM)
        assert legacy == Stonne(config).run_gemm(GEMM).stats


class TestCapabilities:
    def test_maeri_capabilities(self):
        assert MaeriController.requires_mapping
        assert not MaeriController.consumes_sparsity
        assert MaeriController.supports("conv")
        assert MaeriController.supports("fc")
        assert not MaeriController.supports("gemm")

    def test_sparse_controllers_consume_sparsity(self):
        assert SigmaController.consumes_sparsity
        assert MagmaController.consumes_sparsity
        assert not TpuController.consumes_sparsity

    def test_rigid_controllers_need_no_mapping(self):
        for cls in (SigmaController, MagmaController, TpuController):
            assert not cls.requires_mapping
            assert cls.supports("gemm")


class MockController(AcceleratorController):
    """A fifth architecture: fixed one-cycle-per-MAC accounting."""

    workloads = frozenset({"conv"})

    def __init__(self, config, params=None):
        self.config = config

    def run_conv(self, layer, mapping=None):
        return SimulationStats(
            layer_name=layer.name,
            controller="MOCK",
            cycles=layer.macs,
            psums=0,
            macs=layer.macs,
            iterations=1,
            multipliers_used=1,
            array_size=1,
        )


class TestFifthController:
    """Adding an architecture is ONE register() call, no edited chains."""

    @pytest.fixture
    def mock_registered(self):
        register_controller("MOCK")(MockController)
        yield
        unregister_controller("MOCK")

    def test_single_registration_suffices(self, mock_registered):
        config = SimpleNamespace(controller_type="MOCK")
        stats = make_controller(config).run_conv(CONV)
        assert stats.controller == "MOCK"
        assert stats.cycles == CONV.macs
        # The facade dispatches to it too, with zero facade edits.
        assert Stonne(config).run_conv2d(CONV).stats.cycles == CONV.macs

    def test_duplicate_registration_rejected(self, mock_registered):
        with pytest.raises(ConfigError, match="already registered"):
            register_controller("MOCK")(MaeriController)

    def test_unregister_removes(self):
        register_controller("MOCK")(MockController)
        unregister_controller("MOCK")
        with pytest.raises(ConfigError, match="no controller registered"):
            controller_class("MOCK")
