"""Tests for the distributed sweep subsystem (repro.fleet).

Covers the acceptance surface of the fleet tier: wire-protocol framing
(including truncated and oversized frames), worker daemon behaviour
over real localhost sockets, remote-vs-serial stats parity, crash
retry, and serial fallback.
"""

import socket
import struct
import threading

import pytest

from repro.engine import EvalRequest, EvaluationEngine, StatsCache
from repro.errors import MappingError
from repro.fleet import protocol
from repro.fleet.remote_backend import RemoteBackend
from repro.fleet.worker import FleetWorker, parse_address, start_worker
from repro.stonne.config import maeri_config, tpu_config
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer
from repro.stonne.mapping import ConvMapping, FcMapping

CONFIG = maeri_config()


def _conv(i=0, **kwargs):
    return ConvLayer(f"conv{i}", C=8, H=12, W=12, K=8, R=3, S=3, **kwargs)


def _requests(n=6):
    mappings = [
        ConvMapping(T_R=3, T_S=3),
        ConvMapping(T_K=2),
        ConvMapping(T_C=2),
        ConvMapping(),
        ConvMapping(T_R=3),
        ConvMapping(T_S=3, T_K=4),
    ]
    return [
        EvalRequest(_conv(i), mappings[i % len(mappings)]) for i in range(n)
    ]


def _stats_dicts(stats_list):
    return [s.to_dict() for s in stats_list]


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_round_trip(self):
        message = {"type": "ping", "nested": {"a": [1, 2, {"b": None}]}}
        decoded, rest = protocol.decode_frame(protocol.encode_frame(message))
        assert decoded == message
        assert rest == b""

    def test_round_trip_leaves_following_bytes(self):
        frame = protocol.encode_frame({"type": "ping"})
        decoded, rest = protocol.decode_frame(frame + b"tail")
        assert decoded == {"type": "ping"}
        assert rest == b"tail"

    def test_truncated_prefix_raises(self):
        with pytest.raises(protocol.ProtocolError, match="truncated"):
            protocol.decode_frame(b"\x00\x00")

    def test_truncated_payload_raises(self):
        frame = protocol.encode_frame({"type": "ping"})
        with pytest.raises(protocol.ProtocolError, match="truncated"):
            protocol.decode_frame(frame[:-1])

    def test_oversized_length_prefix_raises(self):
        bogus = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(protocol.ProtocolError, match="exceeds"):
            protocol.decode_frame(bogus + b"x")

    def test_oversized_message_refused_on_encode(self):
        with pytest.raises(protocol.ProtocolError, match="exceeds"):
            protocol.encode_frame({"blob": "x" * (protocol.MAX_FRAME_BYTES + 1)})

    def test_non_json_payload_raises(self):
        frame = struct.pack(">I", 4) + b"{{{{"
        with pytest.raises(protocol.ProtocolError, match="JSON"):
            protocol.decode_frame(frame)

    def test_non_object_payload_raises(self):
        frame = struct.pack(">I", 2) + b"42"
        with pytest.raises(protocol.ProtocolError, match="object"):
            protocol.decode_frame(frame)


class TestStructuralWire:
    @pytest.mark.parametrize(
        "layer",
        [
            _conv(pad_h=1, stride_w=2, N=3),
            FcLayer("fc", in_features=64, out_features=16, batch=2),
            GemmLayer("g", M=4, K=8, N=16),
        ],
    )
    def test_layer_round_trip(self, layer):
        assert protocol.layer_from_wire(protocol.layer_to_wire(layer)) == layer

    @pytest.mark.parametrize(
        "mapping",
        [None, ConvMapping(T_R=3, T_K=2), FcMapping(T_S=4, T_K=8)],
    )
    def test_mapping_round_trip(self, mapping):
        wire = protocol.mapping_to_wire(mapping)
        assert protocol.mapping_from_wire(wire) == mapping

    def test_malformed_layer_raises(self):
        with pytest.raises(protocol.ProtocolError, match="malformed"):
            protocol.layer_from_wire({"kind": "NoSuchLayer", "fields": {}})

    def test_known_exception_round_trips_by_name(self):
        entry = {"error": "tile too big", "error_type": "MappingError"}
        exc = protocol.exception_from_wire(entry)
        assert isinstance(exc, MappingError)
        assert "tile too big" in str(exc)

    def test_unknown_exception_degrades_to_simulation_error(self):
        from repro.errors import SimulationError

        exc = protocol.exception_from_wire(
            {"error": "boom", "error_type": "SomethingForeign"}
        )
        assert isinstance(exc, SimulationError)

    def test_engine_spec_rejects_mock_configs(self):
        class Mock:
            controller_type = CONFIG.controller_type

        engine = EvaluationEngine(CONFIG)
        engine.config = Mock()  # duck-typed, no to_dict
        with pytest.raises(protocol.ProtocolError, match="to_dict"):
            protocol.engine_spec(engine)

    def test_rebuild_controller_verifies_fingerprint(self):
        engine = EvaluationEngine(CONFIG)
        spec = protocol.engine_spec(engine)
        controller, _, functional = protocol.rebuild_controller(spec)
        assert type(controller) is type(engine.controller)
        assert functional is False
        spec["fingerprint"] = "deadbeef"
        with pytest.raises(protocol.ProtocolError, match="fingerprint"):
            protocol.rebuild_controller(spec)


def test_parse_address():
    assert parse_address("host:1234") == ("host", 1234)
    assert parse_address(":1234") == ("127.0.0.1", 1234)
    assert parse_address("host", default_port=7) == ("host", 7)
    with pytest.raises(protocol.ProtocolError, match="HOST:PORT"):
        parse_address("host:notaport")


# ----------------------------------------------------------------------
# worker daemon + remote backend over localhost sockets
# ----------------------------------------------------------------------
@pytest.fixture
def worker():
    server, _ = start_worker()
    yield server
    server.close()


class TestWorkerDaemon:
    def test_hello_capabilities_and_ping(self, worker):
        sock = socket.create_connection((worker.host, worker.port), timeout=5)
        try:
            hello = protocol.recv_message(sock)
            assert hello["type"] == "hello"
            assert hello["version"] == protocol.PROTOCOL_VERSION
            assert "MAERI_DENSE_WORKLOAD" in hello["capabilities"]
            protocol.send_message(sock, {"type": "ping"})
            assert protocol.recv_message(sock)["type"] == "pong"
        finally:
            sock.close()

    def test_unknown_message_type_gets_error(self, worker):
        sock = socket.create_connection((worker.host, worker.port), timeout=5)
        try:
            protocol.recv_message(sock)  # hello
            protocol.send_message(sock, {"type": "transmogrify"})
            response = protocol.recv_message(sock)
            assert response["type"] == "error"
            assert "transmogrify" in response["error"]
        finally:
            sock.close()

    def test_bad_spec_is_batch_fatal_error(self, worker):
        engine = EvaluationEngine(CONFIG)
        spec = protocol.engine_spec(engine)
        spec["fingerprint"] = "deadbeef"
        message = protocol.evaluate_batch_message(
            spec, [(0, None, _conv(), ConvMapping())]
        )
        sock = socket.create_connection((worker.host, worker.port), timeout=5)
        try:
            protocol.recv_message(sock)  # hello
            protocol.send_message(sock, message)
            response = protocol.recv_message(sock)
            assert response["type"] == "error"
            assert "fingerprint" in response["error"]
        finally:
            sock.close()

    def test_worker_local_cache_serves_repeats(self):
        cache = StatsCache()
        server, _ = start_worker(cache=cache)
        try:
            engine = EvaluationEngine(CONFIG, cache_enabled=False)
            backend = RemoteBackend(workers=[server.address])
            key = ("shared-key",)
            items = [(key, EvalRequest(_conv(), ConvMapping(T_R=3)))]
            first = backend.run(engine, items)
            second = backend.run(engine, items)
            assert first[0][1].to_dict() == second[0][1].to_dict()
            assert cache.hits == 1  # the second batch hit the worker cache
            backend.close()
        finally:
            server.close()


class TestRemoteParity:
    def test_remote_matches_serial_bit_for_bit(self):
        w1, _ = start_worker()
        w2, _ = start_worker()
        try:
            requests = _requests()
            remote_engine = EvaluationEngine(
                CONFIG,
                cache=StatsCache(),
                executor=RemoteBackend(workers=[w1.address, w2.address]),
            )
            serial_engine = EvaluationEngine(
                CONFIG, cache=StatsCache(), executor="serial"
            )
            remote = remote_engine.evaluate_many(requests)
            serial = serial_engine.evaluate_many(requests)
            assert _stats_dicts(remote) == _stats_dicts(serial)
            # Both workers actually participated (round-robin sharding).
            assert w1.items_served and w2.items_served
            assert w1.items_served + w2.items_served == len(requests)
            remote_engine.close()
            serial_engine.close()
        finally:
            w1.close()
            w2.close()

    def test_remote_parity_on_gemm_architecture(self):
        """Mapping-free architectures (TPU) travel the wire too."""
        config = tpu_config()
        server, _ = start_worker()
        try:
            requests = [
                EvalRequest(GemmLayer(f"g{i}", M=8, K=16, N=4 + i))
                for i in range(4)
            ]
            remote_engine = EvaluationEngine(
                config, executor=RemoteBackend(workers=[server.address])
            )
            serial_engine = EvaluationEngine(config, executor="serial")
            assert _stats_dicts(remote_engine.evaluate_many(requests)) == (
                _stats_dicts(serial_engine.evaluate_many(requests))
            )
            remote_engine.close()
        finally:
            server.close()

    def test_per_item_mapping_error_round_trips(self):
        server, _ = start_worker()
        try:
            engine = EvaluationEngine(
                CONFIG,
                cache=StatsCache(),
                executor=RemoteBackend(workers=[server.address]),
            )
            good = EvalRequest(_conv(), ConvMapping(T_R=3))
            bad = EvalRequest(_conv(), ConvMapping(T_K=512))  # 512*1 > 128 MS
            results = engine.evaluate_many([good, bad], return_errors=True)
            assert results[0].cycles > 0
            assert isinstance(results[1], MappingError)
            engine.close()
        finally:
            server.close()


class _VanishingServer:
    """A rogue peer: speaks hello, then drops the connection mid-batch."""

    def __init__(self):
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(4)
        self.address = "127.0.0.1:%d" % self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            with conn:
                try:
                    protocol.send_message(
                        conn, protocol.hello_message([], pid=0)
                    )
                    protocol.recv_message(conn)  # read the batch...
                except (OSError, protocol.ProtocolError):
                    pass
                # ...and vanish without answering: a crash mid-batch.

    def close(self):
        self._listener.close()


class TestFailover:
    def test_crash_mid_batch_retries_on_survivor(self):
        rogue = _VanishingServer()
        survivor, _ = start_worker()
        try:
            backend = RemoteBackend(workers=[rogue.address, survivor.address])
            engine = EvaluationEngine(
                CONFIG, cache=StatsCache(), executor=backend
            )
            serial = EvaluationEngine(CONFIG, cache=StatsCache(), executor="serial")
            requests = _requests()
            assert _stats_dicts(engine.evaluate_many(requests)) == (
                _stats_dicts(serial.evaluate_many(requests))
            )
            assert backend.retried_shards >= 1
            assert backend.fallback_batches == 0
            engine.close()
        finally:
            rogue.close()
            survivor.close()

    def test_unreachable_fleet_falls_back_to_serial(self):
        backend = RemoteBackend(workers=["127.0.0.1:1"])
        engine = EvaluationEngine(CONFIG, cache=StatsCache(), executor=backend)
        serial = EvaluationEngine(CONFIG, cache=StatsCache(), executor="serial")
        requests = _requests(3)
        assert _stats_dicts(engine.evaluate_many(requests)) == (
            _stats_dicts(serial.evaluate_many(requests))
        )
        assert backend.fallback_batches >= 1
        engine.close()

    def test_no_workers_configured_falls_back(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLEET_WORKERS", raising=False)
        backend = RemoteBackend()
        engine = EvaluationEngine(CONFIG, cache=StatsCache(), executor=backend)
        results = engine.evaluate_many(_requests(2))
        assert all(r.cycles > 0 for r in results)
        assert backend.fallback_batches == 1
        engine.close()

    def test_mock_config_not_remotable_falls_back(self, worker):
        class MockConfig:
            """Duck-typed config: simulates locally, has no to_dict."""

            def __init__(self, real):
                object.__setattr__(self, "_real", real)

            def __getattr__(self, name):
                if name == "to_dict":
                    raise AttributeError(name)
                return getattr(self._real, name)

        backend = RemoteBackend(workers=[worker.address])
        engine = EvaluationEngine(
            MockConfig(CONFIG), cache=StatsCache(), executor=backend
        )
        results = engine.evaluate_many(_requests(2))
        assert all(r.cycles > 0 for r in results)
        assert backend.fallback_batches == 1
        assert worker.batches_served == 0
        engine.close()


class TestRegistryAndSession:
    def test_remote_is_registered(self):
        from repro.engine import registered_backends

        assert "remote" in registered_backends()

    def test_make_backend_resolves_remote(self):
        from repro.engine import make_backend

        backend = make_backend("remote")
        assert isinstance(backend, RemoteBackend)

    def test_env_var_configures_workers(self, monkeypatch, worker):
        monkeypatch.setenv("REPRO_FLEET_WORKERS", worker.address)
        backend = RemoteBackend()
        assert backend.ping() == {worker.address: True}
        backend.close()

    def test_make_session_with_workers_uses_remote_backend(self, worker):
        from repro.bifrost import make_session

        session = make_session(CONFIG, workers=[worker.address])
        assert isinstance(session.engine.backend, RemoteBackend)
        layer = _conv()
        stats = session.engine.evaluate_many([EvalRequest(layer, ConvMapping())])
        assert stats[0].cycles > 0
        assert worker.items_served == 1
        session.engine.close()

    def test_tuned_best_cost_remote_equals_serial(self, worker):
        """The acceptance criterion: a GA tune through the remote backend
        lands on the identical best config and cost as serial."""
        from repro.tuner import GATuner, MaeriConvTask

        layer = ConvLayer("t.conv", C=16, H=14, W=14, K=16, R=3, S=3)

        def tune(executor):
            engine = EvaluationEngine(CONFIG, cache=StatsCache(), executor=executor)
            task = MaeriConvTask(layer, CONFIG, objective="cycles", engine=engine)
            result = GATuner(task, seed=0).tune(n_trials=40)
            engine.close()
            return result.best_cost, task.best_mapping(result.best_config).as_tuple()

        serial_best = tune("serial")
        remote_best = tune(RemoteBackend(workers=[worker.address]))
        assert remote_best == serial_best


class TestFleetAutostart:
    """`fleet.autostart = N`: session-scoped worker daemon lifecycle."""

    def test_session_spawns_uses_and_reaps_workers(self, tmp_path):
        import os

        from repro.session import Session

        with Session(
            fleet_autostart=1, cache_path=str(tmp_path / "fleet.sqlite"),
        ) as session:
            assert session.engine.backend.name == "remote"
            assert len(session.fleet_workers) == 1
            pids = [proc.pid for proc in session._fleet_procs]
            report = session.run("mlp")
            assert report.total_cycles > 0
            # fallback 0 proves the autostarted daemon served the run.
            assert session.engine.backend.fallback_batches == 0
        # The regression guarantee: close() leaves no lingering
        # processes — every daemon is terminated *and* reaped.
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_autostart_skipped_for_explicit_local_executor(self):
        from repro.session import Session

        # Spawning daemons nothing would talk to is pure waste: an
        # explicit non-remote executor suppresses autostart.
        with Session(fleet_autostart=2, executor="serial") as session:
            assert session.fleet_workers == []
            assert session.engine.backend.name == "serial"

    def test_autostart_zero_is_default_noop(self):
        from repro.session import Session

        with Session() as session:
            assert session.fleet_workers == []
