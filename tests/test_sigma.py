"""Behavioural tests for the SIGMA cycle model (Figure 9's substrate)."""

import pytest

from repro.errors import ConfigError
from repro.stonne.config import maeri_config, sigma_config
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer
from repro.stonne.sigma import SigmaController


@pytest.fixture
def fc():
    return FcLayer("fc", in_features=2048, out_features=1024)


@pytest.fixture
def conv():
    return ConvLayer("conv", C=64, H=14, W=14, K=128, R=3, S=3, pad_h=1, pad_w=1)


def cycles_at(sparsity: int, layer) -> int:
    controller = SigmaController(sigma_config(sparsity_ratio=sparsity))
    if isinstance(layer, FcLayer):
        return controller.run_fc(layer).cycles
    if isinstance(layer, ConvLayer):
        return controller.run_conv(layer).cycles
    return controller.run_gemm(layer).cycles


class TestConstruction:
    def test_rejects_non_sigma_config(self):
        with pytest.raises(ConfigError, match="SIGMA"):
            SigmaController(maeri_config())


class TestSparsityScaling:
    def test_cycles_decrease_monotonically_with_sparsity(self, fc):
        values = [cycles_at(s, fc) for s in (0, 25, 50, 75, 90)]
        assert values == sorted(values, reverse=True)
        assert all(v > 0 for v in values)

    def test_fc_savings_exceed_sparsity_fraction(self, fc):
        """Figure 9b: FC layers save slightly more than the pruned share
        (dense bitmaps congest the Benes routing)."""
        dense, sparse = cycles_at(0, fc), cycles_at(50, fc)
        saving = 1 - sparse / dense
        assert 0.50 < saving < 0.60

    def test_conv_savings_below_sparsity_fraction(self, conv):
        """Figure 9a: conv savings trail the sparsity because the im2col
        input matrix stays dense."""
        dense, sparse = cycles_at(0, conv), cycles_at(50, conv)
        saving = 1 - sparse / dense
        assert 0.35 < saving < 0.50

    def test_psums_sparsity_invariant(self, fc):
        """Position-tiled folds make psum traffic independent of sparsity."""
        p0 = SigmaController(sigma_config(sparsity_ratio=0)).run_fc(fc).psums
        p50 = SigmaController(sigma_config(sparsity_ratio=50)).run_fc(fc).psums
        assert p0 == p50

    def test_effective_macs_scale_with_density(self, fc):
        c = SigmaController(sigma_config(sparsity_ratio=50))
        stats = c.run_fc(fc)
        assert stats.macs == pytest.approx(fc.macs * 0.5, rel=0.01)


class TestStructure:
    def test_position_folds(self):
        controller = SigmaController(sigma_config())
        assert controller.position_folds(128) == 1
        assert controller.position_folds(129) == 2

    def test_conv_runs_as_im2col_gemm(self, conv):
        controller = SigmaController(sigma_config())
        stats = controller.run_conv(conv)
        assert stats.layer_name == conv.name
        assert stats.macs == conv.macs

    def test_gemm_stats_fields(self):
        controller = SigmaController(sigma_config())
        gemm = GemmLayer("g", M=64, K=256, N=32)
        stats = controller.run_gemm(gemm)
        assert stats.psums == gemm.output_elements * controller.position_folds(256)
        assert stats.traffic.inputs_distributed == 256 * 32
        assert stats.cycles > 0

    def test_more_multipliers_fewer_cycles(self, fc):
        small = SigmaController(sigma_config(ms_size=32)).run_fc(fc).cycles
        large = SigmaController(sigma_config(ms_size=256)).run_fc(fc).cycles
        assert large < small

    def test_full_sparsity_still_positive_cycles(self, fc):
        assert cycles_at(100, fc) > 0
