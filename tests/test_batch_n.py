"""Batch-N workload modelling: N sequential single-batch simulations.

STONNE executes one batch element at a time; the controllers model a
batch-N layer as N back-to-back runs of its N=1 replica — additive
stats (cycles, psums, MACs, iterations, traffic, phase cycles) sum,
occupancy (multipliers used, array size) is the per-run maximum.  The
functional datapath already computed every batch element; these tests
pin the statistics side of the lift.
"""

import numpy as np
import pytest

from repro.bifrost import make_session, run_layers
from repro.engine import EvaluationEngine, evaluation_key
from repro.stonne.config import (
    maeri_config,
    sigma_config,
    tpu_config,
)
from repro.stonne.controller import make_controller
from repro.stonne.layer import ConvLayer, FcLayer
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.stonne.stats import SimulationStats

ALL_CONFIGS = [maeri_config(), sigma_config(), tpu_config()]


def _conv(n=1):
    return ConvLayer("c", C=8, H=12, W=12, K=8, R=3, S=3, pad_h=1, N=n)


def _fc(batch=1):
    return FcLayer("f", in_features=32, out_features=16, batch=batch)


class TestRepeatedStats:
    def test_additive_fields_scale_and_occupancy_holds(self):
        base = SimulationStats(
            layer_name="l",
            controller="maeri",
            cycles=100,
            psums=10,
            macs=1000,
            iterations=4,
            multipliers_used=8,
            array_size=128,
            phase_cycles={"fill": 2, "steady": 98},
        )
        base.traffic.weights_distributed = 7
        tripled = base.repeated(3)
        assert tripled.cycles == 300
        assert tripled.psums == 30
        assert tripled.macs == 3000
        assert tripled.iterations == 12
        assert tripled.phase_cycles == {"fill": 6, "steady": 294}
        assert tripled.traffic.weights_distributed == 21
        assert tripled.multipliers_used == 8  # max, not sum
        assert tripled.array_size == 128
        # The original is untouched (repeated returns an independent copy).
        assert base.cycles == 100 and base.phase_cycles["fill"] == 2

    def test_count_one_is_a_clone(self):
        base = SimulationStats("l", "maeri", 1, 1, 1, 1, 1, 128)
        copy = base.repeated(1)
        assert copy is not base and copy.to_dict() == base.to_dict()

    def test_rejects_nonpositive_count(self):
        base = SimulationStats("l", "maeri", 1, 1, 1, 1, 1, 128)
        with pytest.raises(ValueError):
            base.repeated(0)


class TestControllerBatchExpansion:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: str(c.controller_type))
    def test_conv_batch_is_n_sequential_runs(self, config):
        controller = make_controller(config)
        mapping = ConvMapping(T_R=3, T_S=3) if controller.requires_mapping else None
        single = controller.run_conv(_conv(1), mapping)
        batched = controller.run_conv(_conv(4), mapping)
        assert batched.to_dict() == single.repeated(4).to_dict()
        assert batched.macs == _conv(4).macs

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: str(c.controller_type))
    def test_fc_batch_is_n_sequential_runs(self, config):
        controller = make_controller(config)
        mapping = FcMapping(T_S=4, T_K=8) if controller.requires_mapping else None
        single = controller.run_fc(_fc(1), mapping)
        batched = controller.run_fc(_fc(3), mapping)
        assert batched.to_dict() == single.repeated(3).to_dict()

    def test_psum_estimates_stay_consistent_with_cycle_model(self):
        """The cheap proxy and the full model must agree on batch scaling."""
        controller = make_controller(maeri_config())
        mapping = ConvMapping(T_R=3, T_S=3)
        assert controller.estimate_conv_psums(_conv(4), mapping) == (
            4 * controller.estimate_conv_psums(_conv(1), mapping)
        )
        assert controller.estimate_conv_psums(_conv(4), mapping) == (
            controller.run_conv(_conv(4), mapping).psums
        )
        fc_mapping = FcMapping(T_S=4, T_K=8)
        assert controller.estimate_fc_psums(_fc(3), fc_mapping) == (
            3 * controller.estimate_fc_psums(_fc(1), fc_mapping)
        )

    def test_batch_parallel_mapping_rejected_with_clear_error(self):
        """T_N>1 schedules are future work; the error must say so rather
        than blaming the single-batch replica ('T_N exceeds batch=1')."""
        from repro.errors import MappingError

        controller = make_controller(maeri_config())
        with pytest.raises(MappingError, match="sequential"):
            controller.run_fc(_fc(2), FcMapping(T_S=2, T_K=4, T_N=2))

    def test_batch_layers_get_distinct_cache_keys(self):
        """N is a structural field: batch-1 and batch-4 must not collide."""
        engine = EvaluationEngine(maeri_config())
        mapping = ConvMapping(T_R=3, T_S=3)
        key1 = evaluation_key(engine.fingerprint, _conv(1), mapping)
        key4 = evaluation_key(engine.fingerprint, _conv(4), mapping)
        assert key1 != key4
        stats4 = engine.evaluate(_conv(4), mapping)
        stats1 = engine.evaluate(_conv(1), mapping)
        assert engine.num_simulations == 2  # no false sharing
        assert stats4.cycles == 4 * stats1.cycles


class TestFacadeBatch:
    def test_run_layers_accepts_batched_descriptors(self):
        session = make_session(maeri_config())
        stats = run_layers([_conv(1), _conv(2), _fc(2)], session)
        assert stats[1].cycles == 2 * stats[0].cycles
        assert stats[2].macs == _fc(2).macs
        session.engine.close()

    def test_api_conv2d_batch_outputs_and_stats(self):
        """The real batches the functional datapath computes now get
        matching sequential-simulation statistics."""
        from repro.topi.conv2d import conv2d_nchw as conv_ref

        rng = np.random.default_rng(0)
        data = rng.normal(size=(3, 4, 8, 8))
        weights = rng.normal(size=(2, 4, 3, 3))
        session = make_session(maeri_config())
        out = session.conv2d_nchw(data, weights, layer_name="b.conv")
        ref = conv_ref(data, weights)
        np.testing.assert_allclose(out, ref, rtol=1e-9)
        single_session = make_session(maeri_config())
        single_session.conv2d_nchw(data[:1], weights, layer_name="b.conv")
        assert session.stats[0].cycles == 3 * single_session.stats[0].cycles
        session.engine.close()
        single_session.engine.close()
