"""Tests for the Stonne facade: functional outputs vs the topi reference."""

import numpy as np
import pytest

from repro.errors import SimulationError, UnsupportedLayerError
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.stonne.simulator import Stonne
from repro.topi import conv2d_direct_nchw, conv2d_nchw, dense


@pytest.fixture
def conv_layer():
    return ConvLayer("c", C=3, H=10, W=10, K=4, R=3, S=3,
                     stride_h=2, stride_w=2, pad_h=1, pad_w=1)


def make_tensors(rng, layer):
    data = rng.normal(size=(1, layer.C, layer.H, layer.W))
    weights = rng.normal(size=(layer.K, layer.C // layer.G, layer.R, layer.S))
    return data, weights


class TestFunctionalConv:
    def test_maeri_output_matches_reference(self, rng, maeri128, conv_layer):
        data, weights = make_tensors(rng, conv_layer)
        result = Stonne(maeri128).run_conv2d(
            conv_layer, mapping=ConvMapping(T_R=3, T_S=3, T_C=3),
            data=data, weights=weights,
        )
        expected = conv2d_nchw(data, weights, strides=(2, 2), padding=(1, 1))
        np.testing.assert_allclose(result.output, expected, rtol=1e-10)

    def test_sigma_output_matches_reference(self, rng, sigma128, conv_layer):
        data, weights = make_tensors(rng, conv_layer)
        result = Stonne(sigma128).run_conv2d(conv_layer, data=data, weights=weights)
        expected = conv2d_nchw(data, weights, strides=(2, 2), padding=(1, 1))
        np.testing.assert_allclose(result.output, expected, rtol=1e-10)

    def test_tpu_output_matches_reference(self, rng, tpu16, conv_layer):
        data, weights = make_tensors(rng, conv_layer)
        result = Stonne(tpu16).run_conv2d(conv_layer, data=data, weights=weights)
        expected = conv2d_nchw(data, weights, strides=(2, 2), padding=(1, 1))
        np.testing.assert_allclose(result.output, expected, rtol=1e-10)

    def test_grouped_conv_output(self, rng, maeri128):
        layer = ConvLayer("g", C=4, H=8, W=8, K=8, R=3, S=3, G=2)
        data = rng.normal(size=(1, 4, 8, 8))
        weights = rng.normal(size=(8, 2, 3, 3))
        result = Stonne(maeri128).run_conv2d(layer, data=data, weights=weights)
        expected = conv2d_direct_nchw(data, weights, groups=2)
        np.testing.assert_allclose(result.output, expected, rtol=1e-9)

    def test_stats_without_tensors(self, maeri128, conv_layer):
        result = Stonne(maeri128).run_conv2d(conv_layer)
        assert result.output is None
        assert result.stats.cycles > 0

    def test_rejects_missing_weights(self, rng, maeri128, conv_layer):
        data, _ = make_tensors(rng, conv_layer)
        with pytest.raises(SimulationError, match="weights"):
            Stonne(maeri128).run_conv2d(conv_layer, data=data)

    def test_rejects_mismatched_shapes(self, rng, maeri128, conv_layer):
        data = rng.normal(size=(1, 3, 9, 9))
        weights = rng.normal(size=(4, 3, 3, 3))
        with pytest.raises(SimulationError, match="shape"):
            Stonne(maeri128).run_conv2d(conv_layer, data=data, weights=weights)


class TestFunctionalDense:
    @pytest.mark.parametrize("fixture", ["maeri128", "sigma128", "tpu16"])
    def test_output_matches_reference(self, rng, request, fixture):
        config = request.getfixturevalue(fixture)
        layer = FcLayer("f", in_features=32, out_features=16)
        data = rng.normal(size=(1, 32))
        weights = rng.normal(size=(16, 32))
        result = Stonne(config).run_dense(layer, data=data, weights=weights)
        np.testing.assert_allclose(result.output, dense(data, weights), rtol=1e-10)

    def test_rejects_bad_weight_shape(self, rng, maeri128):
        layer = FcLayer("f", in_features=32, out_features=16)
        with pytest.raises(SimulationError, match="weight shape"):
            Stonne(maeri128).run_dense(
                layer, data=rng.normal(size=(1, 32)),
                weights=rng.normal(size=(32, 16)),
            )


class TestGemm:
    def test_maeri_rejects_raw_gemm(self, maeri128):
        with pytest.raises(UnsupportedLayerError):
            Stonne(maeri128).run_gemm(GemmLayer("g", M=4, K=4, N=4))

    def test_sigma_and_tpu_accept_gemm(self, sigma128, tpu16):
        gemm = GemmLayer("g", M=16, K=64, N=8)
        assert Stonne(sigma128).run_gemm(gemm).stats.cycles > 0
        assert Stonne(tpu16).run_gemm(gemm).stats.cycles > 0


class TestDefaultMapping:
    def test_maeri_defaults_to_basic_mapping(self, maeri128, conv_layer):
        explicit = Stonne(maeri128).run_conv2d(
            conv_layer, mapping=ConvMapping.basic()
        )
        implicit = Stonne(maeri128).run_conv2d(conv_layer)
        assert implicit.stats.cycles == explicit.stats.cycles
