"""Unit tests for dataflow mappings (paper Tables IV and V)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MappingError
from repro.stonne.layer import ConvLayer, FcLayer
from repro.stonne.mapping import (
    ConvMapping,
    FcMapping,
    enumerate_conv_mappings,
    enumerate_fc_mappings,
)


@pytest.fixture
def conv():
    return ConvLayer("c", C=4, H=10, W=10, K=8, R=3, S=3)


@pytest.fixture
def fc():
    return FcLayer("f", in_features=64, out_features=32)


class TestConvMapping:
    def test_basic_is_all_ones(self):
        basic = ConvMapping.basic()
        assert basic.as_tuple() == (1,) * 8
        assert basic.vn_size == 1 and basic.num_vns == 1

    def test_vn_structure(self):
        mapping = ConvMapping(T_R=3, T_S=3, T_C=2, T_K=2, T_X=2)
        assert mapping.vn_size == 18
        assert mapping.num_vns == 4
        assert mapping.multipliers_used == 72

    def test_validate_fits(self, conv):
        ConvMapping(T_R=3, T_S=3, T_C=4).validate_for(conv, ms_size=64)

    def test_validate_rejects_capacity_overflow(self, conv):
        with pytest.raises(MappingError, match="multipliers"):
            ConvMapping(T_R=3, T_S=3, T_C=4, T_K=4).validate_for(conv, ms_size=64)

    def test_validate_rejects_tile_exceeding_dimension(self, conv):
        with pytest.raises(MappingError, match="T_R"):
            ConvMapping(T_R=4).validate_for(conv, ms_size=128)

    def test_rejects_batch_tile(self):
        with pytest.raises(MappingError, match="T_N"):
            ConvMapping(T_N=2)

    def test_rejects_zero_tile(self):
        with pytest.raises(MappingError):
            ConvMapping(T_R=0)

    def test_iterations_product_of_folds(self, conv):
        mapping = ConvMapping(T_R=3, T_S=3, T_C=2, T_X=2, T_Y=2)
        folds = mapping.fold_counts(conv)
        expected = 1
        for count in folds.values():
            expected *= count
        assert mapping.iterations(conv) == expected
        # R and S covered fully, C folds twice, 8x8 output in 2x2 tiles.
        assert folds["R"] == 1 and folds["S"] == 1
        assert folds["C"] == 2 and folds["X"] == 4 and folds["Y"] == 4

    def test_reduction_folds(self, conv):
        assert ConvMapping().reduction_folds(conv) == 3 * 3 * 4
        assert ConvMapping(T_R=3, T_S=3, T_C=4).reduction_folds(conv) == 1

    def test_with_updates(self):
        assert ConvMapping().with_updates(T_K=4).T_K == 4

    @given(
        t_r=st.integers(1, 3), t_s=st.integers(1, 3),
        t_c=st.integers(1, 4), t_k=st.integers(1, 8),
        t_x=st.integers(1, 8), t_y=st.integers(1, 8),
    )
    def test_iterations_cover_all_macs(self, t_r, t_s, t_c, t_k, t_x, t_y):
        """Tiles times folds always cover every dimension at least once."""
        layer = ConvLayer("c", C=4, H=10, W=10, K=8, R=3, S=3)
        mapping = ConvMapping(T_R=t_r, T_S=t_s, T_C=t_c, T_K=t_k, T_X=t_x, T_Y=t_y)
        folds = mapping.fold_counts(layer)
        assert folds["R"] * t_r >= layer.R
        assert folds["C"] * t_c >= layer.C
        assert folds["K"] * t_k >= layer.K
        assert folds["X"] * t_x >= layer.P


class TestFcMapping:
    def test_basic(self):
        assert FcMapping.basic().as_tuple() == (1, 1, 1)

    def test_vn_structure(self):
        mapping = FcMapping(T_S=16, T_K=8)
        assert mapping.vn_size == 8
        assert mapping.num_vns == 16
        assert mapping.multipliers_used == 128

    def test_validate_rejects_overflow(self, fc):
        with pytest.raises(MappingError):
            FcMapping(T_S=32, T_K=8).validate_for(fc, ms_size=128)

    def test_validate_rejects_tile_exceeding_dims(self, fc):
        with pytest.raises(MappingError, match="T_S"):
            FcMapping(T_S=64).validate_for(fc, ms_size=256)
        with pytest.raises(MappingError, match="T_K"):
            FcMapping(T_K=128).validate_for(fc, ms_size=256)

    def test_reduction_folds(self, fc):
        assert FcMapping(T_K=8).reduction_folds(fc) == 8
        assert FcMapping(T_K=64).reduction_folds(fc) == 1

    def test_iterations(self, fc):
        mapping = FcMapping(T_S=8, T_K=16)
        assert mapping.iterations(fc) == (32 // 8) * (64 // 16)


class TestEnumeration:
    def test_enumerate_fc_covers_capacity_boundary(self, fc):
        mappings = list(enumerate_fc_mappings(fc, ms_size=16))
        assert all(m.multipliers_used <= 16 for m in mappings)
        assert FcMapping(T_S=16, T_K=1) in mappings
        assert FcMapping(T_S=1, T_K=16) in mappings
        assert FcMapping(T_S=4, T_K=4) in mappings

    def test_enumerate_conv_all_valid(self, conv):
        mappings = list(enumerate_conv_mappings(conv, ms_size=16))
        assert mappings, "expected a non-empty space"
        for mapping in mappings:
            mapping.validate_for(conv, ms_size=16)

    def test_enumerate_conv_subsampling_bounds_size(self, conv):
        full = sum(1 for _ in enumerate_conv_mappings(conv, 32))
        sampled = sum(1 for _ in enumerate_conv_mappings(conv, 32, max_tile_options=2))
        assert 0 < sampled < full
