"""Tests for the property-fuzzing harness (repro.fuzz)."""

import pytest

from repro.errors import ConfigError
from repro.fuzz import (
    SEED_MODELS,
    SHRINK_MODEL,
    CrossCheckResult,
    cross_check,
    fuzz_model_name,
    generate_plan,
    load_repro,
    scenario_digest,
    shrink,
    write_repro,
)
from repro.session import SessionConfig
from repro.stonne.layer import ConvLayer, FcLayer
from repro.zoo import register_model, zoo_layers

BASE = SessionConfig.resolve(env=False, max_workers=2)
FAST = ("serial", "thread")  # enough executors to diverge, no pool spin-up


class TestGeneratePlan:
    def test_deterministic_in_the_seed(self):
        first = generate_plan(8, seed=3, base=BASE)
        second = generate_plan(8, seed=3, base=BASE)
        assert [s.name for s in first.scenarios] == [
            s.name for s in second.scenarios
        ]
        assert [s.overrides for s in first.scenarios] == [
            s.overrides for s in second.scenarios
        ]
        # Regenerated random models carry identical layer stacks.
        for scenario in first.scenarios[len(SEED_MODELS):]:
            assert zoo_layers(scenario.model) == zoo_layers(scenario.model)

    def test_different_seeds_differ(self):
        a = generate_plan(8, seed=3, base=BASE)
        b = generate_plan(8, seed=4, base=BASE)
        assert [s.overrides for s in a.scenarios] != [
            s.overrides for s in b.scenarios
        ]

    def test_first_scenarios_cover_the_curated_models(self):
        plan = generate_plan(len(SEED_MODELS), seed=1, base=BASE)
        assert [s.model for s in plan.scenarios] == list(SEED_MODELS)

    def test_architectures_rotate_round_robin(self):
        plan = generate_plan(8, seed=1, base=BASE)
        arches = [s.config.architecture.arch for s in plan.scenarios]
        assert set(arches[:4]) == {"maeri", "sigma", "magma", "tpu"}
        assert arches[:4] == arches[4:]

    def test_random_models_register_in_the_zoo(self):
        plan = generate_plan(7, seed=5, base=BASE)
        name = plan.scenarios[-1].model
        assert name == fuzz_model_name(5, 6)
        assert len(zoo_layers(name)) >= 1

    def test_maeri_scenarios_never_draw_raw_gemms(self):
        from repro.stonne.layer import GemmLayer

        plan = generate_plan(40, seed=2, base=BASE)
        for scenario in plan.scenarios:
            if scenario.config.architecture.arch != "maeri":
                continue
            assert not any(
                isinstance(layer, GemmLayer)
                for layer in zoo_layers(scenario.model)
            )

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ConfigError, match="positive"):
            generate_plan(0, seed=1, base=BASE)


class TestCrossCheck:
    def test_clean_plan_is_bit_identical(self):
        plan = generate_plan(4, seed=9, base=BASE)
        result = cross_check(plan, base=BASE, executors=FAST)
        assert result.ok and not result.divergent
        assert set(result.digests) == {s.name for s in plan.scenarios}
        for per_exec in result.digests.values():
            assert len(set(per_exec.values())) == 1

    def test_plan_digest_reproduces(self):
        plan = generate_plan(4, seed=9, base=BASE)
        first = cross_check(plan, base=BASE, executors=FAST).plan_digest()
        second = cross_check(plan, base=BASE, executors=FAST).plan_digest()
        assert first == second

    def test_digest_is_sensitive_to_any_counter(self):
        stats = [{"layer_name": "l", "cycles": 10, "psums": 3}]
        tweaked = [{"layer_name": "l", "cycles": 10, "psums": 4}]
        assert scenario_digest(stats) != scenario_digest(tweaked)
        assert scenario_digest(stats) == scenario_digest(
            [dict(reversed(list(stats[0].items())))]
        )  # key order canonicalized

    def test_injected_divergence_is_caught(self):
        plan = generate_plan(2, seed=9, base=BASE)
        victim = plan.scenarios[0].name

        def inject(executor, name, stats_dicts):
            if executor == "thread" and name == victim:
                stats_dicts = [dict(s) for s in stats_dicts]
                stats_dicts[0]["cycles"] += 1
            return stats_dicts

        result = cross_check(plan, base=BASE, executors=FAST, inject=inject)
        assert result.divergent == [victim]
        assert not result.ok

    def test_divergent_property_reads_per_executor_digests(self):
        result = CrossCheckResult(executors=("a", "b"))
        result.digests["x"] = {"a": "1", "b": "1"}
        result.digests["y"] = {"a": "1", "b": "2"}
        assert result.divergent == ["y"]


class TestShrink:
    def _scenario_with_layers(self, layers):
        register_model(
            "fuzz/test-victim",
            (lambda captured: (lambda: list(captured)))(layers),
            description="shrink test victim",
            tags=("fuzz",),
            replace=True,
        )
        from repro.sweep.plan import SweepPlan

        plan = SweepPlan.single(
            BASE, model="fuzz/test-victim", name="fuzz/test-victim"
        )
        return plan.scenarios[0]

    def test_shrinks_to_the_single_faulty_layer(self):
        layers = [
            FcLayer("keep.me", 8, 8),
            ConvLayer("faulty", C=2, H=6, W=6, K=2, R=3, S=3),
            FcLayer("drop.me", 16, 4),
        ]
        scenario = self._scenario_with_layers(layers)

        def inject(executor, name, stats_dicts):
            out = [dict(s) for s in stats_dicts]
            for stats in out:
                if executor == "thread" and stats["layer_name"] == "faulty":
                    stats["cycles"] += 1
            return out

        minimal = shrink(scenario, FAST, inject=inject)
        assert [layer.name for layer in minimal] == ["faulty"]

    def test_non_reproducing_divergence_returns_everything(self):
        layers = [FcLayer("a", 8, 8), FcLayer("b", 4, 4)]
        scenario = self._scenario_with_layers(layers)
        minimal = shrink(scenario, FAST, inject=None)
        assert [layer.name for layer in minimal] == ["a", "b"]


class TestReproFiles:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "repro.toml")
        layers = [
            ConvLayer("c", C=4, H=8, W=8, K=4, R=3, S=3, pad_h=1, pad_w=1,
                      dil_h=2, dil_w=2, layout="NHWC"),
            FcLayer("f", 16, 8, batch=2),
        ]
        config = BASE.with_overrides(arch="sigma", sparsity_ratio=0.5)
        write_repro(path, config, layers, seed=42, note="unit test")

        plan, loaded = load_repro(path)
        assert loaded.architecture.arch == "sigma"
        assert loaded.architecture.sparsity_ratio == 0.5
        assert plan.scenarios[0].model == SHRINK_MODEL
        reloaded = zoo_layers(SHRINK_MODEL)
        assert reloaded == layers  # dataclass equality, every field

    def test_reloaded_repro_cross_checks_clean(self, tmp_path):
        path = str(tmp_path / "repro.toml")
        write_repro(path, BASE, [FcLayer("f", 8, 8)])
        plan, config = load_repro(path)
        assert cross_check(plan, base=config, executors=FAST).ok

    def test_missing_fuzz_section_is_a_config_error(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text(BASE.to_toml())
        with pytest.raises(ConfigError, match="fuzz.layer"):
            load_repro(str(path))

    def test_unknown_layer_kind_is_a_config_error(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text(
            BASE.to_toml() + '\n[fuzz]\n\n[[fuzz.layer]]\nkind = "Mystery"\n'
        )
        with pytest.raises(ConfigError, match="Mystery"):
            load_repro(str(path))

    def test_unreadable_file_is_a_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot load"):
            load_repro(str(tmp_path / "missing.toml"))
