"""Tests for the resident sweep service (repro.serve) and sweep resume.

Covers the acceptance surface of the service tier: config-hash resume
(locally and over the wire), the job queue state machine, a live daemon
under concurrent clients (shared-cache dedup, bit-identity with local
``repro sweep``), progress streaming and cancellation, protocol edge
cases on real sockets (oversized frames, mid-frame disconnects,
interleaved clients), shared-secret auth on both daemons, and graceful
SIGTERM shutdown of the ``repro worker`` and ``repro serve``
subprocesses.
"""

import json
import os
import re
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ServeError, SweepCancelled
from repro.fleet import protocol
from repro.serve import JobQueue, ServeClient, SweepService
from repro.session import Session, SessionConfig
from repro.sweep import (
    SweepPlan,
    SweepReport,
    diff_reports,
    scenario_fingerprint,
    split_resume,
)


def _plan(models=("mlp",), **axes):
    return SweepPlan.matrix(
        SessionConfig(), models=list(models), axes=axes or None
    )


# ----------------------------------------------------------------------
# resume: fingerprints and plan splitting
# ----------------------------------------------------------------------
class TestResume:
    def test_fingerprint_is_stable_and_semantic(self):
        a = _plan().scenarios[0]
        b = _plan().scenarios[0]
        assert scenario_fingerprint(a) == scenario_fingerprint(b)

    def test_fingerprint_tracks_config_and_model(self):
        base = _plan(models=["mlp", "lenet"])
        small, other = base.scenarios
        changed = _plan(ms_size=[64]).scenarios[0]
        prints = {
            scenario_fingerprint(small),
            scenario_fingerprint(other),
            scenario_fingerprint(changed),
        }
        assert len(prints) == 3

    def test_fingerprint_ignores_environmental_knobs(self):
        """Executor/cache/fleet/obs differences must not break resume
        matching — and fleet.secret must never influence (or leak via)
        an archived hash."""
        base = SessionConfig.resolve(env=False)
        envy = SessionConfig.resolve(
            env=False,
            fleet_secret="s3cret",
            cache_path="elsewhere.sqlite",
            executor="thread",
            workers="hostA:9461,hostB:9461",
            trace=True,
        )
        a = SweepPlan.matrix(base, models=["mlp"]).scenarios[0]
        b = SweepPlan.matrix(envy, models=["mlp"]).scenarios[0]
        assert scenario_fingerprint(a) == scenario_fingerprint(b)

    def test_fingerprint_tracks_result_determining_knobs(self):
        base = SweepPlan.matrix(
            SessionConfig.resolve(env=False), models=["mlp"]
        ).scenarios[0]
        functional = SweepPlan.matrix(
            SessionConfig.resolve(env=False, functional=True),
            models=["mlp"],
        ).scenarios[0]
        tuned = SweepPlan.matrix(
            SessionConfig.resolve(env=False, seed=7), models=["mlp"]
        ).scenarios[0]
        prints = {
            scenario_fingerprint(base),
            scenario_fingerprint(functional),
            scenario_fingerprint(tuned),
        }
        assert len(prints) == 3

    def test_target_scenarios_never_fingerprint(self):
        from repro.stonne.layer import ConvLayer

        layer = ConvLayer("c", C=4, H=8, W=8, K=4, R=3, S=3)
        plan = SweepPlan.single(SessionConfig(), kind="tune", target=layer)
        assert scenario_fingerprint(plan.scenarios[0]) is None

    def test_split_resume_partitions_and_relabels(self):
        plan = _plan(models=["mlp", "lenet"])
        mlp = plan.scenarios[0]
        archived = SweepReport(
            scenarios=[],
            counters={},
        )
        # Archive carries the mlp cell under a different name: matching
        # is by hash, so it still resumes, re-labelled to the new name.
        from repro.sweep import ScenarioResult

        archived.scenarios.append(
            ScenarioResult(
                name="old-name", kind="run", report=None, model="mlp",
                config_hash=scenario_fingerprint(mlp),
            )
        )
        pending, reused = split_resume(plan, archived)
        assert [s.name for s in pending] == ["lenet"]
        assert list(reused) == ["mlp"]
        assert reused["mlp"].name == "mlp"

    def test_archives_without_hashes_never_match(self):
        plan = _plan()
        from repro.sweep import ScenarioResult

        archived = SweepReport(
            scenarios=[
                ScenarioResult(name="mlp", kind="run", report=None,
                               model="mlp")
            ]
        )
        pending, reused = split_resume(plan, archived)
        assert len(pending) == 1 and not reused

    def test_config_hash_round_trips_json(self):
        with Session(SessionConfig()) as session:
            report = session.sweep(_plan())
        loaded = SweepReport.from_json(report.to_json())
        assert loaded.scenarios[0].config_hash
        assert (
            loaded.scenarios[0].config_hash
            == report.scenarios[0].config_hash
        )

    def test_session_sweep_resume_runs_only_missing(self):
        with Session(SessionConfig()) as session:
            first = session.sweep(_plan(models=["mlp"]))
        archive = SweepReport.from_json(first.to_json())
        with Session(SessionConfig()) as session:
            lenet_only = session.sweep(_plan(models=["lenet"]))
        with Session(SessionConfig()) as session:
            resumed = session.sweep(
                _plan(models=["mlp", "lenet"]), resume=archive
            )
            assert resumed.counters["resumed_scenarios"] == 1
            # Fresh session, no shared cache: only lenet's layers
            # simulated, mlp adopted without touching the engine.
            assert (
                session.counters()["num_simulations"]
                == lenet_only.counters["num_simulations"]
            )
        assert resumed.names == ["mlp", "lenet"]
        assert diff_reports(first, resumed.filter(model="mlp")).max_regression == 0

    def test_resume_everything_simulates_nothing(self):
        with Session(SessionConfig()) as session:
            first = session.sweep(_plan())
        with Session(SessionConfig()) as session:
            again = session.sweep(_plan(), resume=first)
            assert session.counters()["num_simulations"] == 0
        assert again.counters["resumed_scenarios"] == 1

    def test_progress_events_and_cancellation(self):
        events = []

        def progress(event):
            events.append(event)
            if event["event"] == "scenario":
                raise SweepCancelled("stop here")

        with Session(SessionConfig()) as session:
            with pytest.raises(SweepCancelled) as excinfo:
                session.sweep(_plan(models=["mlp", "lenet"]),
                              progress=progress)
        partial = excinfo.value.partial
        assert partial is not None and len(partial.scenarios) == 1
        assert partial.counters.get("cancelled") is True
        assert [e["event"] for e in events][:2] == ["start", "plan"]
        # The partial is resumable: only the missing scenario re-runs.
        with Session(SessionConfig()) as session:
            finished = session.sweep(
                _plan(models=["mlp", "lenet"]), resume=partial
            )
        assert finished.counters["resumed_scenarios"] == 1
        assert finished.names == ["mlp", "lenet"]


# ----------------------------------------------------------------------
# job queue state machine
# ----------------------------------------------------------------------
class TestJobQueue:
    def test_submit_list_get_in_order(self):
        queue = JobQueue()
        first = queue.submit(_plan())
        second = queue.submit(_plan(), label="two")
        assert [job.id for job in queue.list()] == [first.id, second.id]
        assert queue.get(second.id).label == "two"
        with pytest.raises(ServeError):
            queue.get("job-9999")

    def test_next_job_claims_fifo_and_marks_running(self):
        queue = JobQueue()
        first = queue.submit(_plan())
        queue.submit(_plan())
        claimed = queue.next_job(timeout=0)
        assert claimed is first and claimed.state == "running"
        assert queue.next_job(timeout=0).state == "running"
        assert queue.next_job(timeout=0) is None

    def test_cancel_queued_is_immediate(self):
        queue = JobQueue()
        job = queue.submit(_plan())
        queue.cancel(job.id)
        assert job.state == "cancelled" and job.terminal
        assert queue.next_job(timeout=0) is None

    def test_cancel_running_flips_flag_only(self):
        queue = JobQueue()
        job = queue.submit(_plan())
        queue.next_job(timeout=0)
        queue.cancel(job.id)
        assert job.state == "running" and job.cancel_event.is_set()
        queue.finish(job, "cancelled")
        with pytest.raises(ServeError):
            queue.cancel(job.id)

    def test_subscribers_get_events_then_sentinel(self):
        queue = JobQueue()
        job = queue.submit(_plan())
        events = queue.subscribe(job.id)
        queue.publish(job, {"event": "scenario", "completed": 1})
        queue.finish(job, "done")
        assert events.get(timeout=1)["completed"] == 1
        assert events.get(timeout=1) is None
        # Subscribing to a terminal job yields the sentinel immediately.
        assert queue.subscribe(job.id).get(timeout=1) is None

    def test_finish_requires_terminal_state(self):
        queue = JobQueue()
        job = queue.submit(_plan())
        with pytest.raises(ServeError):
            queue.finish(job, "running")


# ----------------------------------------------------------------------
# live service
# ----------------------------------------------------------------------
@pytest.fixture
def service(tmp_path):
    svc = SweepService(
        ("127.0.0.1", 0),
        config=SessionConfig(),
        archive_dir=str(tmp_path / "archive"),
    )
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    yield svc
    svc.close()


class TestServeService:
    def test_submit_wait_result_matches_local_sweep(self, service):
        with ServeClient(service.address) as client:
            job = client.submit(_plan(models=["mlp", "lenet"]))
            assert job["state"] in ("queued", "running")
            final = client.wait(job["id"], timeout=120)
            assert final["state"] == "done"
            served = client.result(job["id"])
        with Session(SessionConfig()) as session:
            local = session.sweep(_plan(models=["mlp", "lenet"]))
        # Bit-identical measurement: every scenario's per-layer stats
        # match the local run exactly, and the typed diff is all-zero.
        for name in local.names:
            assert [s.to_dict() for s in served[name].layer_stats] == [
                s.to_dict() for s in local[name].layer_stats
            ]
        diff = diff_reports(local, served)
        assert diff.max_regression == 0 and not diff.only_before

    def test_concurrent_clients_share_the_cache(self, service):
        """Two clients, overlapping matrices: the overlap simulates once."""
        reports = {}

        def run_client(tag, models):
            with ServeClient(service.address) as client:
                job = client.submit(_plan(models=models), label=tag)
                client.wait(job["id"], timeout=120)
                reports[tag] = client.result(job["id"])

        first = threading.Thread(
            target=run_client, args=("one", ["mlp", "lenet"])
        )
        second = threading.Thread(target=run_client, args=("two", ["mlp"]))
        first.start(); second.start()
        first.join(120); second.join(120)
        assert set(reports) == {"one", "two"}
        sims = [
            reports[tag].counters["num_simulations"] for tag in ("one", "two")
        ]
        # Jobs run sequentially against one shared cache: between them
        # the distinct layers simulate exactly once — whichever job ran
        # second scored its overlap as pure cache hits.
        with Session(SessionConfig()) as session:
            solo = session.sweep(_plan(models=["mlp", "lenet"]))
        assert sum(sims) == solo.counters["num_simulations"]
        assert min(sims) < solo.counters["num_simulations"]

    def test_watch_streams_scenario_events(self, service):
        with ServeClient(service.address) as client:
            # A blocker keeps the watched job queued until the watch
            # subscription is attached, so no events are missed.
            client.submit(_plan(models=["mlp", "lenet"]), label="blocker")
            job = client.submit(_plan())
            events = []
            final = client.watch(job["id"], callback=events.append)
        assert final["state"] == "done"
        kinds = [event.get("event") for event in events]
        assert "scenario" in kinds and kinds[-1] == "done"

    def test_cancel_lands_terminal(self, service):
        with ServeClient(service.address) as client:
            blocker = client.submit(_plan(models=["mlp", "lenet"]))
            victim = client.submit(_plan(models=["alexnet"]))
            cancelled = client.cancel(victim["id"])
            assert cancelled["state"] in ("queued", "running", "cancelled")
            final = client.wait(victim["id"], timeout=120)
            assert final["state"] == "cancelled"
            client.wait(blocker["id"], timeout=120)
            with pytest.raises(ServeError):
                client.result(victim["id"])

    def test_submit_with_resume_skips_matched_scenarios(self, service):
        with ServeClient(service.address) as client:
            job = client.submit(_plan())
            client.wait(job["id"], timeout=120)
            archive = client.result(job["id"])
            resumed = client.submit(
                _plan(models=["mlp", "lenet"]), resume=archive
            )
            client.wait(resumed["id"], timeout=120)
            report = client.result(resumed["id"])
        assert report.counters["resumed_scenarios"] == 1
        assert report.names == ["mlp", "lenet"]

    def test_archive_dir_holds_diffable_json(self, service):
        with ServeClient(service.address) as client:
            job = client.submit(_plan())
            final = client.wait(job["id"], timeout=120)
        path = Path(final["archive"])
        assert path.is_file() and path.suffix == ".json"
        archived = SweepReport.from_dict(json.loads(path.read_text()))
        assert archived.names == ["mlp"]
        assert diff_reports(archived, archived).max_regression == 0

    def test_unknown_job_is_an_error_frame_not_a_hangup(self, service):
        with ServeClient(service.address) as client:
            with pytest.raises(ServeError, match="unknown job"):
                client.status("job-9999")
            assert client.ping()  # connection survived the refusal

    def test_submit_frames_never_carry_the_secret(self):
        """The wire form of a plan holds only result-determining config
        sections — in particular no fleet section, whose secret in a
        plaintext frame would hand authentication to any observer."""
        config = SessionConfig.resolve(
            env=False,
            fleet_secret="hunter2",
            cache_path="private.sqlite",
            workers="hostA:9461",
        )
        plan = SweepPlan.matrix(config, models=["mlp"])
        wire = protocol.plan_to_wire(plan)
        blob = json.dumps(wire)
        assert "hunter2" not in blob
        assert "secret" not in blob
        assert "fleet" not in blob
        # The reduced form still round-trips to the same resume hash.
        rebuilt = protocol.plan_from_wire(wire)
        assert scenario_fingerprint(rebuilt.scenarios[0]) == (
            scenario_fingerprint(plan.scenarios[0])
        )

    def test_dead_watcher_unsubscribes_mid_job(self, tmp_path, monkeypatch):
        """A watcher that hangs up while its job is still running must
        be unsubscribed promptly, not pinned (buffering every progress
        event) until the job lands."""
        from repro.session.session import Session as RealSession
        from repro.sweep.report import SweepReport as Report

        release = threading.Event()

        def slow_sweep(self, plan, progress=None, resume=None):
            release.wait(30)
            return Report(scenarios=[], counters={})

        monkeypatch.setattr(RealSession, "sweep", slow_sweep)
        svc = SweepService(
            ("127.0.0.1", 0),
            config=SessionConfig(),
            archive_dir=str(tmp_path / "archive"),
        )
        threading.Thread(target=svc.serve_forever, daemon=True).start()
        try:
            sock = socket.create_connection(
                ("127.0.0.1", svc.port), timeout=5
            )
            assert protocol.recv_message(sock)["type"] == "hello"
            protocol.send_message(
                sock,
                protocol.submit_message(protocol.plan_to_wire(_plan())),
            )
            job_id = protocol.recv_message(sock)["job"]["id"]
            protocol.send_message(
                sock, protocol.job_request_message("job_watch", job_id)
            )
            deadline = time.monotonic() + 5
            while not svc.jobs.get(job_id).subscribers:
                assert time.monotonic() < deadline, "watch never attached"
                time.sleep(0.05)
            sock.close()  # watcher vanishes mid-job
            deadline = time.monotonic() + 10
            while svc.jobs.get(job_id).subscribers:
                assert time.monotonic() < deadline, (
                    "dead watcher still subscribed"
                )
                time.sleep(0.05)
            # The probe, not job completion, did the cleanup.
            assert svc.jobs.get(job_id).state == "running"
        finally:
            release.set()
            svc.close()

    def test_plans_with_targets_are_refused(self, service):
        from repro.stonne.layer import ConvLayer

        layer = ConvLayer("c", C=4, H=8, W=8, K=4, R=3, S=3)
        plan = SweepPlan.single(SessionConfig(), kind="tune", target=layer)
        with pytest.raises(protocol.ProtocolError, match="bare layer"):
            protocol.plan_to_wire(plan)


# ----------------------------------------------------------------------
# protocol edge cases on a live daemon
# ----------------------------------------------------------------------
class TestProtocolEdges:
    def _raw(self, service):
        sock = socket.create_connection(
            ("127.0.0.1", service.port), timeout=5
        )
        hello = protocol.recv_message(sock)
        assert hello["type"] == "hello"
        return sock

    def test_oversized_frame_drops_only_that_connection(self, service):
        bad = self._raw(service)
        bad.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
        bad.sendall(b"x" * 64)
        # The daemon refuses the frame and hangs up on this connection.
        try:
            reply = protocol.recv_message(bad)
        except (protocol.ProtocolError, OSError):
            reply = None
        assert reply is None
        bad.close()
        with ServeClient(service.address) as client:
            assert client.ping()

    def test_mid_frame_disconnect_leaves_daemon_serving(self, service):
        half = self._raw(service)
        frame = protocol.encode_frame({"type": "job_list"})
        half.sendall(frame[: len(frame) // 2])
        half.close()  # vanish mid-frame
        with ServeClient(service.address) as client:
            assert client.ping()
            assert client.jobs() == []

    def test_interleaved_clients_are_isolated(self, service):
        with ServeClient(service.address) as one, ServeClient(
            service.address
        ) as two:
            job = one.submit(_plan(), label="mine")
            # Interleave requests from both connections against the
            # shared queue; each connection's replies stay its own.
            assert two.status(job["id"])["label"] == "mine"
            with pytest.raises(ServeError):
                two.status("job-0042")
            assert one.status(job["id"])["id"] == job["id"]
            assert [j["id"] for j in two.jobs()] == [job["id"]]
            one.wait(job["id"], timeout=120)
            assert two.status(job["id"])["state"] == "done"

    def test_unknown_message_type_gets_error_frame(self, service):
        sock = self._raw(service)
        protocol.send_message(sock, {"type": "make_coffee"})
        reply = protocol.recv_message(sock)
        assert reply["type"] == "error"
        assert "make_coffee" in reply["error"]
        sock.close()


# ----------------------------------------------------------------------
# shared-secret auth
# ----------------------------------------------------------------------
class TestAuth:
    def test_digest_round_trip_and_mismatch(self):
        nonce = protocol.make_nonce()
        message = protocol.auth_message("hunter2", nonce)
        assert protocol.verify_auth("hunter2", nonce, message)
        assert not protocol.verify_auth("hunter3", nonce, message)
        assert not protocol.verify_auth("hunter2", protocol.make_nonce(),
                                        message)
        assert not protocol.verify_auth("hunter2", nonce, {"type": "auth"})

    def test_config_carries_fleet_secret(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_SECRET", "from-env")
        assert SessionConfig.resolve().fleet.secret == "from-env"
        monkeypatch.delenv("REPRO_FLEET_SECRET")
        assert SessionConfig.resolve(fleet_secret="direct").fleet.secret == (
            "direct"
        )

    @pytest.fixture
    def secured_worker(self):
        from repro.fleet.worker import FleetWorker

        worker = FleetWorker(("127.0.0.1", 0), secret="s3cret")
        thread = threading.Thread(target=worker.serve_forever, daemon=True)
        thread.start()
        yield worker
        worker.close()

    def test_worker_accepts_matching_secret(self, secured_worker):
        from repro.fleet.remote_backend import _WorkerLink

        link = _WorkerLink(secured_worker.address, secret="s3cret")
        assert link.ensure_connected() is not None
        assert link.request({"type": "ping"})["type"] == "pong"
        link.close()

    def test_worker_rejects_wrong_and_missing_secret(self, secured_worker):
        from repro.fleet.remote_backend import _WorkerLink

        wrong = _WorkerLink(secured_worker.address, secret="nope")
        with pytest.raises(protocol.ProtocolError, match="rejected"):
            wrong._connect()
        missing = _WorkerLink(secured_worker.address)
        with pytest.raises(protocol.ProtocolError, match="requires"):
            missing._connect()
        # No state was built for the refused connections.
        assert secured_worker.batches_served == 0
        assert not secured_worker._controllers

    def test_unsecured_worker_ignores_client_secret(self):
        from repro.fleet.remote_backend import _WorkerLink
        from repro.fleet.worker import start_worker

        worker, _ = start_worker()
        try:
            link = _WorkerLink(worker.address, secret="anything")
            assert link.ensure_connected() is not None
            link.close()
        finally:
            worker.close()

    def test_service_enforces_secret(self, tmp_path):
        svc = SweepService(
            ("127.0.0.1", 0),
            config=SessionConfig(),
            archive_dir=str(tmp_path),
            secret="s3cret",
        )
        threading.Thread(target=svc.serve_forever, daemon=True).start()
        try:
            with pytest.raises(protocol.ProtocolError, match="rejected"):
                ServeClient(svc.address, secret="wrong").jobs()
            with pytest.raises(protocol.ProtocolError, match="requires"):
                ServeClient(svc.address).jobs()
            assert not svc.jobs.list()  # refused hellos changed nothing
            with ServeClient(svc.address, secret="s3cret") as client:
                assert client.ping()
        finally:
            svc.close()

    def test_every_client_verb_resolves_config_file_secret(
        self, tmp_path, capsys
    ):
        """A secret configured via fleet.secret in a --config file (not
        the environment) must authenticate jobs/status/result/cancel the
        same way it authenticates submit."""
        from repro.cli import main

        svc = SweepService(
            ("127.0.0.1", 0),
            config=SessionConfig(),
            archive_dir=str(tmp_path),
            secret="cfg-secret",
        )
        threading.Thread(target=svc.serve_forever, daemon=True).start()
        cfg = tmp_path / "client.toml"
        cfg.write_text('[fleet]\nsecret = "cfg-secret"\n')
        try:
            assert main(
                ["jobs", "--connect", svc.address, "--config", str(cfg)]
            ) == 0
            # The other verbs authenticate too: they get past the
            # handshake and are refused only for the unknown job id.
            for verb in ("status", "result", "cancel"):
                assert main(
                    [verb, "job-9999", "--connect", svc.address,
                     "--config", str(cfg)]
                ) == 1
                assert "unknown job" in capsys.readouterr().err
            # Without the config file there is no secret to present.
            assert main(["jobs", "--connect", svc.address]) == 1
            assert "requires a shared secret" in capsys.readouterr().err
        finally:
            svc.close()

    def test_service_secret_defaults_from_config(self, tmp_path):
        config = SessionConfig.resolve(fleet_secret="cfg-secret")
        svc = SweepService(
            ("127.0.0.1", 0), config=config, archive_dir=str(tmp_path)
        )
        try:
            assert svc.secret == "cfg-secret"
        finally:
            svc.close()


# ----------------------------------------------------------------------
# graceful shutdown (subprocess daemons)
# ----------------------------------------------------------------------
_BANNER = re.compile(r"listening on (\S+)")


def _spawn(*argv):
    import repro

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    banner = process.stdout.readline()
    match = _BANNER.search(banner)
    assert match, f"no banner: {banner!r}"
    return process, match.group(1)


class TestGracefulShutdown:
    def test_worker_sigterm_exits_zero(self):
        process, address = _spawn("worker", "--listen", "127.0.0.1:0")
        try:
            # Prove it serves, then ask it to stop.
            host, port = address.rsplit(":", 1)
            sock = socket.create_connection((host, int(port)), timeout=5)
            assert protocol.recv_message(sock)["type"] == "hello"
            protocol.send_message(sock, {"type": "ping"})
            assert protocol.recv_message(sock)["type"] == "pong"
            sock.close()
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
            process.stdout.close()

    def test_serve_sigterm_exits_zero(self, tmp_path):
        process, address = _spawn(
            "serve", "--listen", "127.0.0.1:0",
            "--archive-dir", str(tmp_path / "archive"),
        )
        try:
            with ServeClient(address) as client:
                assert client.ping()
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
            process.stdout.close()


# ----------------------------------------------------------------------
# watch reconnect
# ----------------------------------------------------------------------
class TestWatchReconnect:
    def test_mid_stream_drop_resumes_with_a_notice(self, service, capsys):
        """Killing the transport mid-watch must not kill the stream: the
        client reconnects, resubscribes by job id, and still returns the
        job's final state — with a one-line stderr notice, no traceback."""
        dropped = []

        with ServeClient(service.address) as client:
            job = client.submit(_plan(models=["mlp", "lenet", "alexnet"]))

            def sabotage_once(event):
                # The callback runs inside the watch loop, so shutting
                # the socket down here is a deterministic mid-stream drop.
                if not dropped:
                    dropped.append(event)
                    client._sock.shutdown(socket.SHUT_RDWR)

            final = client.watch(job["id"], callback=sabotage_once,
                                 backoff_s=0.01)
        assert dropped, "watch never streamed an event to sabotage"
        assert final["state"] == "done"
        err = capsys.readouterr().err
        assert "reconnecting in" in err
        assert "Traceback" not in err

    def test_terminal_job_replayed_after_drop(self, service, capsys):
        """A job that finished during the outage is still reported —
        the service replays terminal state on resubscribe."""
        with ServeClient(service.address) as client:
            job = client.submit(_plan())
            client.wait(job["id"], timeout=120)

            original_recv = client._recv
            failed = []

            def recv_flaky():
                if not failed:
                    failed.append(True)
                    client._drop()
                    raise protocol.ProtocolError("synthetic drop")
                return original_recv()

            client._recv = recv_flaky
            final = client.watch(job["id"], backoff_s=0.01)
        assert failed and final["state"] == "done"
        assert "reconnecting in" in capsys.readouterr().err

    def test_server_refusals_are_never_retried(self, service, capsys):
        with ServeClient(service.address) as client:
            start = time.monotonic()
            with pytest.raises(ServeError):
                client.watch("job-9999", backoff_s=5.0)
        # No backoff sleep happened: the refusal surfaced immediately.
        assert time.monotonic() - start < 2.0
        assert "reconnecting" not in capsys.readouterr().err

    def test_gives_up_after_max_consecutive_failures(self, monkeypatch):
        # Nothing listens on this address: every connect attempt fails.
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        client = ServeClient(f"127.0.0.1:{port}")
        delays = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", delays.append
        )
        with pytest.raises((OSError, protocol.ProtocolError)):
            client.watch("job-0001", max_retries=3, backoff_s=0.5)
        # Exactly max_retries sleeps, exponentially backed off.
        assert delays == [0.5, 1.0, 2.0]
