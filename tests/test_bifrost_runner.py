"""End-to-end tests: whole models through Bifrost (the paper's §IV flow)."""

import numpy as np
import pytest

import repro.frontends.torchlike as tl
from repro.bifrost import (
    MappingStrategy,
    make_session,
    run_graph,
    run_layers,
    run_torch_stonne,
)
from repro.bifrost.strategies import active_session
from repro.models import lenet_graph
from repro.runtime import compile_graph
from repro.stonne.config import maeri_config, sigma_config, tpu_config
from repro.stonne.layer import ConvLayer, FcLayer


@pytest.fixture
def lenet_input(rng):
    return rng.normal(size=(1, 1, 28, 28))


class TestRunGraph:
    @pytest.mark.parametrize("config_fn", [maeri_config, sigma_config, tpu_config])
    def test_output_matches_cpu_execution(self, rng, lenet_input, config_fn):
        """Offloaded execution must be numerically identical to CPU-only
        (Bifrost's correctness-verification story)."""
        session = make_session(config_fn())
        offloaded = run_graph(lenet_graph(), {"data": lenet_input}, session)
        cpu = compile_graph(lenet_graph(), apply_passes=False)(lenet_input)
        np.testing.assert_allclose(offloaded.output, cpu, rtol=1e-9)

    def test_layer_stats_cover_accelerated_layers(self, lenet_input, maeri128):
        session = make_session(maeri128)
        result = run_graph(lenet_graph(), {"data": lenet_input}, session)
        names = [s.layer_name for s in result.layer_stats]
        assert names == ["conv1", "conv2", "fc1", "fc2", "fc3"]
        assert result.total_cycles > 0
        assert result.total_psums > 0

    def test_session_uninstalled_after_run(self, lenet_input, maeri128):
        session = make_session(maeri128)
        run_graph(lenet_graph(), {"data": lenet_input}, session)
        assert active_session() is None

    def test_session_uninstalled_after_failure(self, maeri128):
        session = make_session(maeri128)
        with pytest.raises(Exception):
            run_graph(lenet_graph(), {"wrong_feed": np.ones(1)}, session)
        assert active_session() is None

    def test_mrna_strategy_faster_than_default(self, lenet_input, maeri128):
        default = run_graph(
            lenet_graph(), {"data": lenet_input}, make_session(maeri128)
        )
        mrna = run_graph(
            lenet_graph(), {"data": lenet_input},
            make_session(maeri128, mapping_strategy="mrna"),
        )
        np.testing.assert_allclose(mrna.output, default.output, rtol=1e-9)
        assert mrna.total_cycles < default.total_cycles

    def test_combined_stats(self, lenet_input, maeri128):
        session = make_session(maeri128)
        result = run_graph(lenet_graph(), {"data": lenet_input}, session)
        combined = result.combined("lenet")
        assert combined.cycles == result.total_cycles
        assert combined.layer_name == "lenet"


class TestRunTorchStonne:
    def test_listing1_entry_point(self, rng, maeri128):
        model = tl.Sequential(
            tl.Conv2d(1, 4, 3, padding=1),
            tl.ReLU(),
            tl.Flatten(),
            tl.Linear(4 * 8 * 8, 10),
        )
        batch = rng.normal(size=(1, 1, 8, 8))
        session = make_session(maeri128)
        result = run_torch_stonne(model, batch, session)
        cpu = compile_graph(
            __import__("repro.frontends.torchlike", fromlist=["from_torchlike"])
            .from_torchlike(model, (1, 1, 8, 8)),
            apply_passes=False,
        )(batch)
        np.testing.assert_allclose(result.output, cpu, rtol=1e-9)
        assert len(result.layer_stats) == 2  # conv + dense


class TestRunLayers:
    def test_bare_descriptors(self, maeri128):
        session = make_session(maeri128, mapping_strategy=MappingStrategy.MRNA)
        layers = [
            ConvLayer("c1", C=4, H=10, W=10, K=8, R=3, S=3),
            FcLayer("f1", in_features=128, out_features=64),
        ]
        stats = run_layers(layers, session)
        assert [s.layer_name for s in stats] == ["c1", "f1"]
        assert session.stats == stats

    def test_sigma_descriptors_ignore_mappings(self):
        session = make_session(sigma_config(sparsity_ratio=50))
        stats = run_layers(
            [FcLayer("f", in_features=256, out_features=128)], session
        )
        assert stats[0].cycles > 0

    def test_rejects_unknown_descriptor(self, maeri128):
        session = make_session(maeri128)
        with pytest.raises(TypeError, match="ConvLayer/FcLayer"):
            run_layers(["not a layer"], session)
