"""Tests for the MAGMA sparse-dense GEMM extension (paper §IX)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.stonne import (
    ControllerType,
    FcLayer,
    GemmLayer,
    MagmaController,
    Stonne,
    magma_config,
    sigma_config,
)
from repro.stonne.layer import ConvLayer
from repro.topi import dense as dense_ref


@pytest.fixture
def gemm():
    return GemmLayer("g", M=128, K=1024, N=16)


class TestConfig:
    def test_magma_config_valid(self):
        config = magma_config(sparsity_ratio=50)
        assert config.controller_type is ControllerType.MAGMA_SPARSE_DENSE
        assert config.sparsity_ratio == 50

    def test_controller_rejects_wrong_config(self):
        with pytest.raises(ConfigError, match="MAGMA"):
            MagmaController(sigma_config())

    def test_magma_rejects_bad_sizes(self):
        with pytest.raises(ConfigError):
            magma_config(ms_size=100)


class TestCycles:
    def test_sparsity_monotone(self, gemm):
        cycles = [
            MagmaController(magma_config(sparsity_ratio=s)).run_gemm(gemm).cycles
            for s in (0, 25, 50, 75, 90)
        ]
        assert cycles == sorted(cycles, reverse=True)

    def test_psums_shrink_with_sparsity_unlike_sigma(self, gemm):
        """MAGMA row-packs non-zeros, so psum traffic scales with nnz;
        SIGMA's position folds keep psums sparsity-invariant."""
        magma_dense = MagmaController(magma_config(sparsity_ratio=0)).run_gemm(gemm)
        magma_sparse = MagmaController(magma_config(sparsity_ratio=50)).run_gemm(gemm)
        assert magma_sparse.psums < magma_dense.psums

        from repro.stonne.sigma import SigmaController

        sigma_dense = SigmaController(sigma_config(sparsity_ratio=0)).run_gemm(gemm)
        sigma_sparse = SigmaController(sigma_config(sparsity_ratio=50)).run_gemm(gemm)
        assert sigma_sparse.psums == sigma_dense.psums

    def test_dense_operand_traffic_sparsity_invariant_per_fold(self, gemm):
        dense = MagmaController(magma_config(sparsity_ratio=0)).run_gemm(gemm)
        sparse = MagmaController(magma_config(sparsity_ratio=50)).run_gemm(gemm)
        # per-fold streaming is identical; total folds halve with nnz
        assert sparse.traffic.inputs_distributed < dense.traffic.inputs_distributed
        assert sparse.traffic.weights_distributed == pytest.approx(
            dense.traffic.weights_distributed * 0.5, rel=0.01
        )

    @given(
        m=st.integers(1, 128),
        k=st.integers(1, 1024),
        n=st.integers(1, 32),
        sparsity=st.integers(0, 99),
    )
    @settings(max_examples=80, deadline=None)
    def test_physical_bounds_property(self, m, k, n, sparsity):
        controller = MagmaController(magma_config(sparsity_ratio=sparsity))
        stats = controller.run_gemm(GemmLayer("p", M=m, K=k, N=n))
        assert stats.cycles > 0
        assert stats.macs <= m * k * n
        assert stats.multipliers_used <= controller.config.ms_size


class TestFacadeIntegration:
    def test_stonne_dispatches_gemm(self, gemm):
        result = Stonne(magma_config(sparsity_ratio=50)).run_gemm(gemm)
        assert result.stats.controller == "MAGMA_SPARSE_DENSE"

    def test_fc_functional_output_exact(self, rng):
        layer = FcLayer("f", in_features=64, out_features=32)
        data = rng.normal(size=(1, 64))
        weights = rng.normal(size=(32, 64))
        result = Stonne(magma_config()).run_dense(layer, data=data, weights=weights)
        np.testing.assert_allclose(result.output, dense_ref(data, weights), rtol=1e-10)

    def test_conv_lowered_via_im2col(self):
        layer = ConvLayer("c", C=8, H=10, W=10, K=16, R=3, S=3)
        stats = Stonne(magma_config()).run_conv2d(layer).stats
        assert stats.macs == layer.macs

    def test_bifrost_api_prunes_for_magma(self, rng):
        from repro.bifrost import MappingConfigurator, StonneBifrostApi

        config = magma_config(sparsity_ratio=100)
        api = StonneBifrostApi(
            config=config, mappings=MappingConfigurator(config=config)
        )
        out = api.dense(rng.normal(size=(1, 16)), rng.normal(size=(8, 16)))
        np.testing.assert_array_equal(out, np.zeros((1, 8)))
