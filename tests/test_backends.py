"""Tests for executor backends, the persistent stats cache, batched
measurement, and GA determinism after vectorization."""

import json

import pytest

from repro.engine import (
    EvalRequest,
    EvaluationEngine,
    PersistentStatsCache,
    ProcessBackend,
    SerialBackend,
    StatsCache,
    ThreadBackend,
    make_backend,
    register_backend,
    registered_backends,
    unregister_backend,
)
from repro.errors import ConfigError
from repro.stonne.config import maeri_config, sigma_config
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer
from repro.stonne.mapping import ConvMapping
from repro.stonne.stats import SimulationStats
from repro.tuner.measure import CallableTask, MaeriConvTask
from repro.tuner.space import ConfigSpace
from repro.tuner.tuners.ga import GATuner


def _requests():
    reqs = [
        EvalRequest(
            ConvLayer(f"c{i}", C=2 + i, H=8, W=8, K=4, R=3, S=3),
            ConvMapping(T_R=3),
        )
        for i in range(5)
    ]
    reqs.append(EvalRequest(FcLayer("f", in_features=32, out_features=16)))
    return reqs


class TestBackendRegistry:
    def test_builtins_registered(self):
        assert {"serial", "thread", "process"} <= set(registered_backends())

    def test_make_backend_by_name(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("thread", max_workers=2), ThreadBackend)
        assert isinstance(make_backend("process"), ProcessBackend)

    def test_make_backend_passthrough(self):
        backend = SerialBackend()
        assert make_backend(backend) is backend

    def test_default_resolution_mirrors_history(self):
        """None -> serial, unless max_workers asks for parallelism."""
        assert isinstance(make_backend(None), SerialBackend)
        assert isinstance(make_backend(None, max_workers=1), SerialBackend)
        assert isinstance(make_backend(None, max_workers=4), ThreadBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="no executor backend"):
            make_backend("quantum")

    def test_custom_registration_roundtrip(self):
        @register_backend("test-inline")
        class InlineBackend(SerialBackend):
            pass

        try:
            assert "test-inline" in registered_backends()
            assert isinstance(make_backend("test-inline"), InlineBackend)
        finally:
            unregister_backend("test-inline")
        assert "test-inline" not in registered_backends()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_backend("serial")(ThreadBackend)

    def test_alias_registration_keeps_original_name(self):
        """Registering a built-in under a second name must not corrupt
        the name engines report through counters()."""
        register_backend("process-alias")(ProcessBackend)
        try:
            assert ProcessBackend.name == "process"
            assert isinstance(make_backend("process-alias"), ProcessBackend)
        finally:
            unregister_backend("process-alias")


class TestBackendParity:
    """Identical stats regardless of how the batch is executed."""

    def test_serial_thread_process_agree(self, maeri128):
        reqs = _requests()
        serial = EvaluationEngine(maeri128, executor="serial").evaluate_many(reqs)
        thread_engine = EvaluationEngine(
            maeri128, executor="thread", max_workers=4
        )
        process_engine = EvaluationEngine(
            maeri128, executor="process", max_workers=2
        )
        try:
            assert thread_engine.evaluate_many(reqs) == serial
            assert process_engine.evaluate_many(reqs) == serial
        finally:
            thread_engine.close()
            process_engine.close()

    def test_process_backend_counts_simulations(self, maeri128):
        engine = EvaluationEngine(maeri128, executor="process", max_workers=2)
        try:
            reqs = _requests()
            engine.evaluate_many(reqs)
            assert engine.num_simulations == len(reqs)
            # A second pass is served entirely from the parent cache.
            engine.evaluate_many(reqs)
            assert engine.num_simulations == len(reqs)
            assert engine.cache.hits == len(reqs)
        finally:
            engine.close()

    def test_process_backend_gemm(self):
        engine = EvaluationEngine(
            sigma_config(), executor="process", max_workers=2
        )
        try:
            serial = EvaluationEngine(sigma_config())
            layers = [GemmLayer(f"g{i}", M=4 + i, K=16, N=4) for i in range(4)]
            assert engine.evaluate_many(layers) == serial.evaluate_many(layers)
        finally:
            engine.close()

    def test_batch_duplicates_simulate_once(self, maeri128):
        engine = EvaluationEngine(maeri128)
        layer = FcLayer("dup", in_features=32, out_features=16)
        results = engine.evaluate_many([layer, layer, layer])
        assert engine.num_simulations == 1
        assert results[0] == results[1] == results[2]

    def test_duplicates_survive_immediate_eviction(self, maeri128):
        """A cache bound smaller than the batch's distinct misses must not
        break duplicate resolution (the key may already be evicted)."""
        engine = EvaluationEngine(maeri128, cache=StatsCache(max_entries=1))
        a = FcLayer("a", in_features=16, out_features=8)
        b = FcLayer("b", in_features=24, out_features=8)
        results = engine.evaluate_many([a, b, a])
        assert results[0] == results[2]
        assert results[0].layer_name == "a"
        assert engine.num_simulations == 2

    def test_per_item_errors_do_not_poison_batch(self, maeri128):
        from repro.errors import MappingError

        engine = EvaluationEngine(maeri128)
        good = ConvLayer("good", C=2, H=8, W=8, K=4, R=3, S=3)
        bad_mapping = ConvMapping(T_R=128, T_S=128)  # cannot fit 128 PEs
        outcomes = engine.evaluate_many(
            [
                EvalRequest(good, ConvMapping(T_R=3)),
                EvalRequest(good, bad_mapping),
            ],
            return_errors=True,
        )
        assert isinstance(outcomes[0], SimulationStats)
        assert isinstance(outcomes[1], MappingError)

    def test_errors_raise_by_default(self, maeri128):
        from repro.errors import MappingError

        engine = EvaluationEngine(maeri128)
        good = ConvLayer("good", C=2, H=8, W=8, K=4, R=3, S=3)
        with pytest.raises(MappingError):
            engine.evaluate_many(
                [EvalRequest(good, ConvMapping(T_R=128, T_S=128))]
            )

    def test_run_layers_executor_override(self, maeri128):
        from repro.bifrost.runner import make_session, run_layers

        layers = [
            ConvLayer(f"c{i}", C=2, H=8, W=8, K=4, R=3, S=3) for i in range(3)
        ]
        baseline = run_layers(layers, make_session(maeri128))
        session = make_session(maeri128)
        threaded = run_layers(layers, session, executor="thread")
        assert baseline == threaded
        # The override backend is cached on the engine (one pool across
        # calls) and released by close().
        assert session.engine._resolve_backend("thread", None) is (
            session.engine._resolve_backend("thread", None)
        )
        session.engine.close()
        assert session.engine._override_backends == {}


class TestPersistentCache:
    def test_round_trip(self, tmp_path, maeri128):
        path = tmp_path / "stats.jsonl"
        engine = EvaluationEngine(maeri128, cache=PersistentStatsCache(path))
        layer = ConvLayer("c", C=4, H=10, W=10, K=8, R=3, S=3)
        first = engine.evaluate(layer, ConvMapping(T_R=3, T_S=3))
        engine.cache.close()

        reopened = PersistentStatsCache(path)
        assert reopened.warm_entries == 1
        second = EvaluationEngine(maeri128, cache=reopened).evaluate(
            layer, ConvMapping(T_R=3, T_S=3)
        )
        assert second == first
        assert reopened.hits == 1 and reopened.misses == 0

    def test_warm_resume_across_engine_instances(self, tmp_path, maeri128):
        path = tmp_path / "stats.jsonl"
        reqs = _requests()
        cold_cache = PersistentStatsCache(path)
        cold = EvaluationEngine(maeri128, cache=cold_cache)
        cold_results = cold.evaluate_many(reqs)
        assert cold.num_simulations == len(reqs)
        cold_cache.close()

        warm_cache = PersistentStatsCache(path)
        warm = EvaluationEngine(maeri128, cache=warm_cache)
        warm_results = warm.evaluate_many(reqs)
        assert warm.num_simulations == 0
        assert warm_cache.hit_rate == 1.0
        assert warm_results == cold_results

    def test_no_duplicate_lines_on_reput(self, tmp_path, maeri128):
        path = tmp_path / "stats.jsonl"
        layer = FcLayer("f", in_features=16, out_features=8)
        cache = PersistentStatsCache(path)
        EvaluationEngine(maeri128, cache=cache).evaluate(layer)
        cache.close()
        cache2 = PersistentStatsCache(path)
        engine = EvaluationEngine(maeri128, cache=cache2, cache_enabled=False)
        stats = engine.evaluate(layer)
        from repro.engine import evaluation_key

        cache2.put(
            evaluation_key(engine.fingerprint, layer, None), stats
        )  # same key again
        cache2.close()
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        assert len(lines) == 1

    def test_corrupt_tail_line_skipped(self, tmp_path, maeri128):
        path = tmp_path / "stats.jsonl"
        cache = PersistentStatsCache(path)
        engine = EvaluationEngine(maeri128, cache=cache)
        engine.evaluate(FcLayer("f", in_features=16, out_features=8))
        engine.evaluate(FcLayer("g", in_features=24, out_features=8))
        cache.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": ["trunc')  # simulated crash mid-append

        reopened = PersistentStatsCache(path)
        assert reopened.warm_entries == 2

    def test_foreign_scalars_round_trip_exactly(self, tmp_path):
        path = tmp_path / "stats.jsonl"
        cache = PersistentStatsCache(path)
        key = ("fp", "ConvLayer", (1, 2, None), "ConvMapping", (3, 4))
        stats = SimulationStats(
            layer_name="x", controller="MAERI", cycles=10, psums=5,
            macs=20, iterations=1, multipliers_used=4, array_size=8,
        )
        cache.put(key, stats)
        cache.close()
        reopened = PersistentStatsCache(path)
        assert reopened.get(key) == stats

    def test_clear_truncates_spill(self, tmp_path, maeri128):
        path = tmp_path / "stats.jsonl"
        cache = PersistentStatsCache(path)
        EvaluationEngine(maeri128, cache=cache).evaluate(
            FcLayer("f", in_features=16, out_features=8)
        )
        cache.clear()
        cache.close()
        assert PersistentStatsCache(path).warm_entries == 0

    def test_memory_bound_respected_on_load(self, tmp_path, maeri128):
        path = tmp_path / "stats.jsonl"
        cache = PersistentStatsCache(path)
        engine = EvaluationEngine(maeri128, cache=cache)
        for i in range(5):
            engine.evaluate(FcLayer(f"f{i}", in_features=8 + i, out_features=4))
        cache.close()
        bounded = PersistentStatsCache(path, max_entries=2)
        assert bounded.warm_entries == 2
        assert len(bounded) == 2


class TestBatchedMeasurement:
    def test_measure_batch_matches_measure(self, maeri128):
        layer = ConvLayer("c", C=8, H=12, W=12, K=8, R=3, S=3)
        serial_task = MaeriConvTask(layer, maeri128, objective="cycles")
        batched_task = MaeriConvTask(layer, maeri128, objective="cycles")
        indices = list(range(24))
        singles = [
            serial_task.measure(serial_task.space.config_at(i)) for i in indices
        ]
        batched = batched_task.measure_batch(indices)
        assert [r.cost for r in batched] == [r.cost for r in singles]
        assert batched_task.num_measurements == len(indices)

    def test_cost_memo_skips_revisits(self):
        calls = []
        space = ConfigSpace()
        space.define_knob("x", [1, 2, 3, 4])

        def fn(config):
            calls.append(config["x"])
            return float(config["x"])

        task = CallableTask(space, fn)
        first = task.measure_batch([0, 1, 2])
        again = task.measure_batch([0, 1, 2])
        assert [r.cost for r in first] == [r.cost for r in again]
        assert calls == [1, 2, 3]  # revisits never re-evaluate
        assert task.num_measurements == 6  # but are still counted

    def test_memo_covers_invalid_configs(self):
        validity_checks = []
        space = ConfigSpace()
        space.define_knob("x", [1, 2, 3, 4])

        def constraint(config):
            validity_checks.append(config["x"])
            return config["x"] != 2

        space.add_constraint(constraint)
        task = CallableTask(space, lambda c: float(c["x"]))
        task.measure_batch([1, 1, 1])
        from repro.tuner.measure import INVALID_COST

        assert task.measure_batch([1])[0].cost == INVALID_COST
        assert validity_checks.count(2) == 1  # validated exactly once

    def test_tuning_through_process_backend_matches_serial(self, maeri128):
        layer = ConvLayer("c", C=8, H=12, W=12, K=8, R=3, S=3)
        serial = GATuner(
            MaeriConvTask(layer, maeri128, objective="cycles"), seed=7
        ).tune(n_trials=48)
        engine = EvaluationEngine(maeri128, executor="process", max_workers=2)
        try:
            process = GATuner(
                MaeriConvTask(
                    layer, maeri128, objective="cycles", engine=engine
                ),
                seed=7,
            ).tune(n_trials=48)
        finally:
            engine.close()
        assert process.best_cost == serial.best_cost
        assert [t.cost for t in process.records.trials] == [
            t.cost for t in serial.records.trials
        ]


class TestGADeterminism:
    def _task(self, maeri128):
        layer = ConvLayer("c", C=8, H=12, W=12, K=8, R=3, S=3)
        return MaeriConvTask(layer, maeri128, objective="psums")

    def test_identical_runs_per_seed(self, maeri128):
        runs = [
            GATuner(self._task(maeri128), seed=11).tune(n_trials=96)
            for _ in range(2)
        ]
        assert runs[0].best_cost == runs[1].best_cost
        assert [t.index for t in runs[0].records.trials] == [
            t.index for t in runs[1].records.trials
        ]

    def test_seeds_differ(self, maeri128):
        a = GATuner(self._task(maeri128), seed=1).tune(n_trials=64)
        b = GATuner(self._task(maeri128), seed=2).tune(n_trials=64)
        assert [t.index for t in a.records.trials] != [
            t.index for t in b.records.trials
        ]


class TestEngineRoutedApi:
    def test_repeated_conv_shapes_skip_cycle_model(self, maeri128, rng):
        from repro.bifrost.runner import make_session

        session = make_session(maeri128)
        data = rng.normal(size=(1, 4, 10, 10))
        weights = rng.normal(size=(8, 4, 3, 3))
        out1 = session.conv2d_nchw(data, weights)
        out2 = session.conv2d_nchw(data, weights)
        assert session.engine.num_simulations == 1  # second call cached
        assert len(session.stats) == 2
        assert session.stats[0].layer_name == "conv2d"
        assert session.stats[1].layer_name == "conv2d#1"
        assert session.stats[0].cycles == session.stats[1].cycles
        # The functional datapath executed both times.
        assert out1 == pytest.approx(out2)

    def test_repeated_dense_shapes_skip_cycle_model(self, maeri128, rng):
        from repro.bifrost.runner import make_session

        session = make_session(maeri128)
        data = rng.normal(size=(1, 32))
        weights = rng.normal(size=(16, 32))
        out1 = session.dense(data, weights)
        session.dense(data, weights)
        assert session.engine.num_simulations == 1
        assert out1 == pytest.approx(data @ weights.T)

    def test_run_graph_bad_executor_fails_before_install(self, maeri128):
        from repro.bifrost.runner import make_session, run_graph
        from repro.bifrost.strategies import active_session
        from repro.models import lenet_graph

        with pytest.raises(ConfigError, match="no executor backend"):
            run_graph(lenet_graph(), {}, make_session(maeri128),
                      executor="bogus")
        # The failure must not leave the session installed process-wide.
        assert active_session() is None

    def test_session_cache_path_persists(self, tmp_path, maeri128, rng):
        from repro.bifrost.runner import make_session

        path = tmp_path / "session.jsonl"
        data = rng.normal(size=(1, 4, 10, 10))
        weights = rng.normal(size=(8, 4, 3, 3))

        cold = make_session(maeri128, cache_path=str(path))
        cold.conv2d_nchw(data, weights)
        assert cold.engine.num_simulations == 1
        cold.engine.cache.close()

        warm = make_session(maeri128, cache_path=str(path))
        warm.conv2d_nchw(data, weights)
        assert warm.engine.num_simulations == 0
        assert warm.engine.cache.hit_rate == 1.0


class TestCliEngineFlags:
    def test_run_with_executor_and_cache(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "cli.jsonl"
        argv = ["run", "lenet", "--executor", "thread",
                "--cache-path", str(path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "stats cache:" in first
        assert path.exists()
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "(100.0%)" in second  # warm rerun fully cached

    def test_tune_with_cache(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "tune.jsonl"
        argv = ["tune", "lenet", "fc3", "--tuner", "random", "--trials", "20",
                "--objective", "cycles", "--cache-path", str(path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "(100.0%)" in out
