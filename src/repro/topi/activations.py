"""Elementwise activation operators (CPU-side in Bifrost)."""

from __future__ import annotations

import numpy as np

from repro.errors import LayerError


def relu(data: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(data, 0.0)


def leaky_relu(data: np.ndarray, alpha: float = 0.01) -> np.ndarray:
    """Leaky ReLU with negative slope ``alpha``."""
    return np.where(data >= 0.0, data, alpha * data)


def sigmoid(data: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(data, dtype=np.float64)
    pos = data >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-data[pos]))
    exp_x = np.exp(data[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)
    return out


def tanh(data: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(data)


def softmax(data: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = data - np.max(data, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(data: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = data - np.max(data, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def dropout_inference(data: np.ndarray) -> np.ndarray:
    """Dropout at inference time is the identity (scaling happened at train)."""
    return data


ACTIVATIONS = {
    "relu": relu,
    "leaky_relu": leaky_relu,
    "sigmoid": sigmoid,
    "tanh": tanh,
    "softmax": softmax,
    "log_softmax": log_softmax,
}


def apply_activation(name: str, data: np.ndarray) -> np.ndarray:
    """Dispatch an activation by name; raises on unknown names."""
    try:
        fn = ACTIVATIONS[name]
    except KeyError:
        raise LayerError(
            f"unknown activation {name!r}; expected one of {sorted(ACTIVATIONS)}"
        ) from None
    return fn(data)
