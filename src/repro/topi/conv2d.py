"""Reference conv2d implementations (the CPU "TOPI" operators).

Two algorithmic primitives, as TVM's operator inventory provides:

* :func:`conv2d_direct_nchw` — a straightforward 7-loop convolution,
  trusted as ground truth in the test suite;
* :func:`conv2d_im2col_nchw` — the GEMM-convolution primitive the
  accelerators use (§V-B2), vectorized with NumPy for actual speed.

Both support strides, zero padding, dilation and grouped convolution.
NHWC variants wrap the NCHW ones through the layout helpers.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import LayerError
from repro.topi.layout import kcrs_to_rsck, nchw_to_nhwc, nhwc_to_nchw, rsck_to_kcrs


def conv2d_output_shape(
    data_shape: Tuple[int, int, int, int],
    weight_shape: Tuple[int, int, int, int],
    strides: Tuple[int, int] = (1, 1),
    padding: Tuple[int, int] = (0, 0),
    dilation: Tuple[int, int] = (1, 1),
    groups: int = 1,
) -> Tuple[int, int, int, int]:
    """Output shape of an NCHW conv2d; raises on inconsistent shapes."""
    n, c, h, w = data_shape
    k, c_per_g, r, s = weight_shape
    if groups < 1:
        raise LayerError(f"groups must be >= 1, got {groups}")
    if c % groups or k % groups:
        raise LayerError(f"groups={groups} must divide C={c} and K={k}")
    if c_per_g != c // groups:
        raise LayerError(
            f"weight channels {c_per_g} != C/groups = {c // groups}"
        )
    stride_h, stride_w = strides
    pad_h, pad_w = padding
    dil_h, dil_w = dilation
    eff_r = (r - 1) * dil_h + 1
    eff_s = (s - 1) * dil_w + 1
    p = (h + 2 * pad_h - eff_r) // stride_h + 1
    q = (w + 2 * pad_w - eff_s) // stride_w + 1
    if p < 1 or q < 1:
        raise LayerError(
            f"conv2d output would be empty: input {h}x{w}, filter {r}x{s}, "
            f"stride {strides}, pad {padding}, dilation {dilation}"
        )
    return (n, k, p, q)


def conv2d_direct_nchw(
    data: np.ndarray,
    weights: np.ndarray,
    strides: Tuple[int, int] = (1, 1),
    padding: Tuple[int, int] = (0, 0),
    dilation: Tuple[int, int] = (1, 1),
    groups: int = 1,
) -> np.ndarray:
    """Direct (naive loop) NCHW convolution; the ground-truth operator."""
    n, k, p, q = conv2d_output_shape(
        data.shape, weights.shape, strides, padding, dilation, groups
    )
    c = data.shape[1]
    _, c_per_g, r, s = weights.shape
    stride_h, stride_w = strides
    pad_h, pad_w = padding
    dil_h, dil_w = dilation
    padded = np.pad(
        data, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)), mode="constant"
    )
    out = np.zeros((n, k, p, q), dtype=np.result_type(data, weights))
    k_per_g = k // groups
    for img in range(n):
        for ko in range(k):
            g = ko // k_per_g
            for pi in range(p):
                for qi in range(q):
                    acc = 0.0
                    for ci in range(c_per_g):
                        for ri in range(r):
                            for si in range(s):
                                hi = pi * stride_h + ri * dil_h
                                wi = qi * stride_w + si * dil_w
                                acc += (
                                    padded[img, g * c_per_g + ci, hi, wi]
                                    * weights[ko, ci, ri, si]
                                )
                    out[img, ko, pi, qi] = acc
    return out


def im2col_nchw(
    data: np.ndarray,
    filter_shape: Tuple[int, int],
    strides: Tuple[int, int] = (1, 1),
    padding: Tuple[int, int] = (0, 0),
    dilation: Tuple[int, int] = (1, 1),
) -> np.ndarray:
    """Unfold an NCHW tensor into the ``(N, C*R*S, P*Q)`` im2col matrix."""
    n, c, h, w = data.shape
    r, s = filter_shape
    stride_h, stride_w = strides
    pad_h, pad_w = padding
    dil_h, dil_w = dilation
    eff_r = (r - 1) * dil_h + 1
    eff_s = (s - 1) * dil_w + 1
    p = (h + 2 * pad_h - eff_r) // stride_h + 1
    q = (w + 2 * pad_w - eff_s) // stride_w + 1
    if p < 1 or q < 1:
        raise LayerError("im2col would produce an empty output")
    padded = np.pad(
        data, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)), mode="constant"
    )
    # Vectorized unfold: sliding_window_view materializes no copies; the
    # dilation/stride subsampling and one transpose+reshape produce the
    # (ci, ri, si)-ordered rows for every batch element at once.
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, (eff_r, eff_s), axis=(2, 3)
    )
    strided = windows[:, :, ::stride_h, ::stride_w, ::dil_h, ::dil_w]
    # (n, c, p, q, r, s) -> (n, c, r, s, p, q) -> (n, c*r*s, p*q)
    return np.ascontiguousarray(strided.transpose(0, 1, 4, 5, 2, 3)).reshape(
        n, c * r * s, p * q
    )


def conv2d_im2col_nchw(
    data: np.ndarray,
    weights: np.ndarray,
    strides: Tuple[int, int] = (1, 1),
    padding: Tuple[int, int] = (0, 0),
    dilation: Tuple[int, int] = (1, 1),
    groups: int = 1,
) -> np.ndarray:
    """NCHW convolution through the im2col GEMM primitive (fast path)."""
    n, k, p, q = conv2d_output_shape(
        data.shape, weights.shape, strides, padding, dilation, groups
    )
    c = data.shape[1]
    _, c_per_g, r, s = weights.shape
    k_per_g = k // groups
    out = np.empty((n, k, p, q), dtype=np.result_type(data, weights))
    for g in range(groups):
        cols = im2col_nchw(
            data[:, g * c_per_g : (g + 1) * c_per_g],
            (r, s),
            strides,
            padding,
            dilation,
        )
        w_mat = weights[g * k_per_g : (g + 1) * k_per_g].reshape(k_per_g, -1)
        out[:, g * k_per_g : (g + 1) * k_per_g] = np.einsum(
            "kc,ncp->nkp", w_mat, cols
        ).reshape(n, k_per_g, p, q)
    return out


def conv2d_nchw(
    data: np.ndarray,
    weights: np.ndarray,
    strides: Tuple[int, int] = (1, 1),
    padding: Tuple[int, int] = (0, 0),
    dilation: Tuple[int, int] = (1, 1),
    groups: int = 1,
) -> np.ndarray:
    """The default NCHW conv2d operator (im2col under the hood)."""
    return conv2d_im2col_nchw(data, weights, strides, padding, dilation, groups)


def conv2d_nhwc(
    data: np.ndarray,
    weights: np.ndarray,
    strides: Tuple[int, int] = (1, 1),
    padding: Tuple[int, int] = (0, 0),
    dilation: Tuple[int, int] = (1, 1),
    groups: int = 1,
) -> np.ndarray:
    """NHWC/RSCK conv2d, implemented by transposing around the NCHW core."""
    out_nchw = conv2d_nchw(
        nhwc_to_nchw(data), rsck_to_kcrs(weights), strides, padding, dilation, groups
    )
    return nchw_to_nhwc(out_nchw)
