"""Tensor layout transformations (paper §V-B, Figures 7 and 8).

Deep-learning frameworks disagree on memory layout: PyTorch defaults to
``NCHW`` activations with ``KCRS`` kernels, TensorFlow to ``NHWC`` with
``RSCK``.  MAERI only consumes ``NHWC``/``RSCK``, so the STONNE-Bifrost
API transposes on the way in and back on the way out; these helpers are
that conversion layer (executed on the CPU, not counted in cycle totals).
"""

from __future__ import annotations

import numpy as np

from repro.errors import LayerError

#: Supported activation layouts.
DATA_LAYOUTS = ("NCHW", "NHWC")
#: Supported kernel layouts and the data layout each pairs with.
KERNEL_LAYOUTS = {"KCRS": "NCHW", "RSCK": "NHWC"}


def _require_4d(name: str, tensor: np.ndarray) -> None:
    if tensor.ndim != 4:
        raise LayerError(f"{name} must be 4-D, got shape {tensor.shape}")


def nchw_to_nhwc(data: np.ndarray) -> np.ndarray:
    """Transpose activations ``(N, C, H, W) -> (N, H, W, C)``."""
    _require_4d("data", data)
    return np.ascontiguousarray(data.transpose(0, 2, 3, 1))


def nhwc_to_nchw(data: np.ndarray) -> np.ndarray:
    """Transpose activations ``(N, H, W, C) -> (N, C, H, W)``."""
    _require_4d("data", data)
    return np.ascontiguousarray(data.transpose(0, 3, 1, 2))


def kcrs_to_rsck(weights: np.ndarray) -> np.ndarray:
    """Transpose kernels ``(K, C, R, S) -> (R, S, C, K)``."""
    _require_4d("weights", weights)
    return np.ascontiguousarray(weights.transpose(2, 3, 1, 0))


def rsck_to_kcrs(weights: np.ndarray) -> np.ndarray:
    """Transpose kernels ``(R, S, C, K) -> (K, C, R, S)``."""
    _require_4d("weights", weights)
    return np.ascontiguousarray(weights.transpose(3, 2, 0, 1))


def nkpq_to_npqk(output: np.ndarray) -> np.ndarray:
    """Transpose conv outputs ``(N, K, P, Q) -> (N, P, Q, K)``."""
    _require_4d("output", output)
    return np.ascontiguousarray(output.transpose(0, 2, 3, 1))


def npqk_to_nkpq(output: np.ndarray) -> np.ndarray:
    """Transpose conv outputs ``(N, P, Q, K) -> (N, K, P, Q)``."""
    _require_4d("output", output)
    return np.ascontiguousarray(output.transpose(0, 3, 1, 2))


def check_layout_pair(data_layout: str, kernel_layout: str) -> None:
    """Validate a (data, kernel) layout combination.

    The API supports exactly the two complementary pairs the paper lists:
    ``NCHW``+``KCRS`` and ``NHWC``+``RSCK``.
    """
    if data_layout not in DATA_LAYOUTS:
        raise LayerError(
            f"unsupported data layout {data_layout!r}; expected one of {DATA_LAYOUTS}"
        )
    expected = KERNEL_LAYOUTS.get(kernel_layout)
    if expected is None:
        raise LayerError(
            f"unsupported kernel layout {kernel_layout!r}; "
            f"expected one of {sorted(KERNEL_LAYOUTS)}"
        )
    if expected != data_layout:
        raise LayerError(
            f"kernel layout {kernel_layout!r} pairs with {expected}, "
            f"not {data_layout}"
        )
