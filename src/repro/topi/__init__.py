"""Operator inventory (TOPI stand-in): NumPy reference implementations.

Operators are reached two ways: directly (tests and ground truth) or via
the strategy registry in :mod:`repro.topi.registry`, which the graph
executor queries per (op, target).
"""

from repro.topi.activations import (
    apply_activation,
    dropout_inference,
    leaky_relu,
    log_softmax,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from repro.topi.conv2d import (
    conv2d_direct_nchw,
    conv2d_im2col_nchw,
    conv2d_nchw,
    conv2d_nhwc,
    conv2d_output_shape,
    im2col_nchw,
)
from repro.topi.dense import bias_add, dense, matmul
from repro.topi.layout import (
    check_layout_pair,
    kcrs_to_rsck,
    nchw_to_nhwc,
    nhwc_to_nchw,
    nkpq_to_npqk,
    npqk_to_nkpq,
    rsck_to_kcrs,
)
from repro.topi.normalization import (
    batch_norm_inference,
    fold_batch_norm_into_conv,
    lrn,
)
from repro.topi.pooling import adaptive_avg_pool2d, avg_pool2d, flatten, max_pool2d
from repro.topi.registry import (
    has_op,
    lookup_op,
    register_op,
    registered_ops,
    unregister_op,
)

__all__ = [
    "adaptive_avg_pool2d",
    "apply_activation",
    "avg_pool2d",
    "batch_norm_inference",
    "bias_add",
    "check_layout_pair",
    "conv2d_direct_nchw",
    "conv2d_im2col_nchw",
    "conv2d_nchw",
    "conv2d_nhwc",
    "conv2d_output_shape",
    "dense",
    "dropout_inference",
    "flatten",
    "fold_batch_norm_into_conv",
    "has_op",
    "im2col_nchw",
    "kcrs_to_rsck",
    "leaky_relu",
    "log_softmax",
    "lookup_op",
    "lrn",
    "matmul",
    "max_pool2d",
    "nchw_to_nhwc",
    "nhwc_to_nchw",
    "nkpq_to_npqk",
    "npqk_to_nkpq",
    "register_op",
    "registered_ops",
    "relu",
    "rsck_to_kcrs",
    "sigmoid",
    "softmax",
    "tanh",
    "unregister_op",
]
