"""Operator strategy registry (TVM's "Relay Operator Strategy" analog).

The runtime never calls operator implementations directly: it asks the
registry for the implementation of an op on a *target* ("cpu" or
"stonne").  External libraries — in this reproduction, the STONNE-Bifrost
API — register themselves under the "stonne" target exactly the way TVM
external libraries hook into TOPI, and the executor transparently offloads
to them (§IV).

A strategy entry is a callable ``impl(attrs, inputs) -> np.ndarray`` where
``attrs`` is the node's attribute dict and ``inputs`` the already-computed
input tensors.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.errors import GraphError

_Impl = Callable[[dict, List[np.ndarray]], np.ndarray]

#: (op_name, target) -> implementation
_REGISTRY: Dict[Tuple[str, str], _Impl] = {}


def register_op(op_name: str, target: str, override: bool = False):
    """Decorator registering ``fn`` as the ``op_name`` strategy on ``target``."""

    def decorator(fn: _Impl) -> _Impl:
        key = (op_name, target)
        if key in _REGISTRY and not override:
            raise GraphError(
                f"operator {op_name!r} already registered for target {target!r}; "
                "pass override=True to replace it"
            )
        _REGISTRY[key] = fn
        return fn

    return decorator


def lookup_op(op_name: str, target: str) -> _Impl:
    """The implementation for ``op_name`` on ``target``; raises if missing."""
    try:
        return _REGISTRY[(op_name, target)]
    except KeyError:
        raise GraphError(
            f"no implementation of operator {op_name!r} for target {target!r}"
        ) from None


def has_op(op_name: str, target: str) -> bool:
    return (op_name, target) in _REGISTRY


def registered_ops(target: str) -> List[str]:
    """All op names with an implementation on ``target``, sorted."""
    return sorted(name for name, tgt in _REGISTRY if tgt == target)


def unregister_op(op_name: str, target: str) -> None:
    """Remove a registration (used by tests to isolate state)."""
    _REGISTRY.pop((op_name, target), None)


# ----------------------------------------------------------------------
# CPU strategies for every op in the inventory
# ----------------------------------------------------------------------
def _register_cpu_strategies() -> None:
    # Resolve the submodules through importlib: the package __init__
    # re-exports functions whose names shadow the submodule attributes
    # (e.g. ``repro.topi.dense``), which plain ``import ... as`` would bind.
    import importlib

    activations = importlib.import_module("repro.topi.activations")
    conv2d = importlib.import_module("repro.topi.conv2d")
    dense = importlib.import_module("repro.topi.dense")
    normalization = importlib.import_module("repro.topi.normalization")
    pooling = importlib.import_module("repro.topi.pooling")

    @register_op("conv2d", "cpu")
    def _conv2d_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        layout = attrs.get("data_layout", "NCHW")
        fn = conv2d.conv2d_nchw if layout == "NCHW" else conv2d.conv2d_nhwc
        return fn(
            inputs[0],
            inputs[1],
            strides=tuple(attrs.get("strides", (1, 1))),
            padding=tuple(attrs.get("padding", (0, 0))),
            dilation=tuple(attrs.get("dilation", (1, 1))),
            groups=attrs.get("groups", 1),
        )

    @register_op("dense", "cpu")
    def _dense_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return dense.dense(inputs[0], inputs[1])

    @register_op("bias_add", "cpu")
    def _bias_add_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return dense.bias_add(inputs[0], inputs[1], axis=attrs.get("axis", -1))

    @register_op("matmul", "cpu")
    def _matmul_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return dense.matmul(inputs[0], inputs[1])

    @register_op("relu", "cpu")
    def _relu_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return activations.relu(inputs[0])

    @register_op("leaky_relu", "cpu")
    def _leaky_relu_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return activations.leaky_relu(inputs[0], alpha=attrs.get("alpha", 0.01))

    @register_op("sigmoid", "cpu")
    def _sigmoid_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return activations.sigmoid(inputs[0])

    @register_op("tanh", "cpu")
    def _tanh_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return activations.tanh(inputs[0])

    @register_op("softmax", "cpu")
    def _softmax_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return activations.softmax(inputs[0], axis=attrs.get("axis", -1))

    @register_op("log_softmax", "cpu")
    def _log_softmax_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return activations.log_softmax(inputs[0], axis=attrs.get("axis", -1))

    @register_op("dropout", "cpu")
    def _dropout_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return activations.dropout_inference(inputs[0])

    @register_op("max_pool2d", "cpu")
    def _max_pool_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return pooling.max_pool2d(
            inputs[0],
            pool_size=tuple(attrs.get("pool_size", (2, 2))),
            strides=tuple(attrs.get("strides", (2, 2))),
            padding=tuple(attrs.get("padding", (0, 0))),
        )

    @register_op("avg_pool2d", "cpu")
    def _avg_pool_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return pooling.avg_pool2d(
            inputs[0],
            pool_size=tuple(attrs.get("pool_size", (2, 2))),
            strides=tuple(attrs.get("strides", (2, 2))),
            padding=tuple(attrs.get("padding", (0, 0))),
        )

    @register_op("adaptive_avg_pool2d", "cpu")
    def _adaptive_avg_pool_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return pooling.adaptive_avg_pool2d(
            inputs[0], output_size=tuple(attrs["output_size"])
        )

    @register_op("flatten", "cpu")
    def _flatten_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return pooling.flatten(inputs[0])

    @register_op("batch_norm", "cpu")
    def _batch_norm_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return normalization.batch_norm_inference(
            inputs[0], inputs[1], inputs[2], inputs[3], inputs[4],
            epsilon=attrs.get("epsilon", 1e-5),
            axis=attrs.get("axis", 1),
        )

    @register_op("lrn", "cpu")
    def _lrn_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return normalization.lrn(
            inputs[0],
            size=attrs.get("size", 5),
            alpha=attrs.get("alpha", 1e-4),
            beta=attrs.get("beta", 0.75),
            k=attrs.get("k", 2.0),
        )

    @register_op("add", "cpu")
    def _add_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return inputs[0] + inputs[1]

    @register_op("multiply", "cpu")
    def _multiply_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return inputs[0] * inputs[1]

    @register_op("reshape", "cpu")
    def _reshape_cpu(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        return inputs[0].reshape(tuple(attrs["newshape"]))


_register_cpu_strategies()
