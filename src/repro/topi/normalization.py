"""Normalization operators: batch norm (inference) and AlexNet's LRN."""

from __future__ import annotations

import numpy as np

from repro.errors import LayerError


def batch_norm_inference(
    data: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    epsilon: float = 1e-5,
    axis: int = 1,
) -> np.ndarray:
    """Inference-mode batch normalization along ``axis`` (channel)."""
    channels = data.shape[axis]
    for name, param in (("gamma", gamma), ("beta", beta), ("mean", mean), ("var", var)):
        if param.shape != (channels,):
            raise LayerError(
                f"batch_norm {name} shape {param.shape} does not match "
                f"channel count {channels}"
            )
    shape = [1] * data.ndim
    shape[axis] = channels
    scale = gamma / np.sqrt(var + epsilon)
    shift = beta - mean * scale
    return data * scale.reshape(shape) + shift.reshape(shape)


def fold_batch_norm_into_conv(
    weights: np.ndarray,
    bias: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    epsilon: float = 1e-5,
) -> tuple:
    """Fold an inference batch norm into the preceding conv's parameters.

    Returns ``(folded_weights, folded_bias)`` such that
    ``bn(conv(x, W) + b) == conv(x, W') + b'``.  This is the graph-level
    fusion Bifrost inherits from TVM (§IV: "fusion of batch normalization
    layers").
    """
    if weights.ndim != 4:
        raise LayerError(f"conv weights must be KCRS, got shape {weights.shape}")
    k = weights.shape[0]
    if bias.shape != (k,):
        raise LayerError(f"conv bias shape {bias.shape} does not match K={k}")
    scale = gamma / np.sqrt(var + epsilon)
    folded_weights = weights * scale.reshape(k, 1, 1, 1)
    folded_bias = (bias - mean) * scale + beta
    return folded_weights, folded_bias


def lrn(
    data: np.ndarray,
    size: int = 5,
    alpha: float = 1e-4,
    beta: float = 0.75,
    k: float = 2.0,
) -> np.ndarray:
    """Local response normalization across channels (AlexNet's LRN).

    PyTorch semantics: the squared sum over a window of ``size`` channels
    is averaged (divided by ``size``) before scaling.
    """
    if data.ndim != 4:
        raise LayerError(f"lrn expects NCHW input, got shape {data.shape}")
    if size < 1:
        raise LayerError(f"lrn size must be >= 1, got {size}")
    c = data.shape[1]
    squared = data.astype(np.float64) ** 2
    sums = np.zeros_like(squared)
    half = size // 2
    for ch in range(c):
        lo = max(0, ch - half)
        hi = min(c, ch + half + 1)
        sums[:, ch] = squared[:, lo:hi].sum(axis=1)
    denom = (k + alpha * sums / size) ** beta
    return (data / denom).astype(np.result_type(data))
