"""Dense (fully connected) reference operators.

TVM splits a fully connected layer into a ``dense`` matmul plus an
optional ``bias_add``/activation; only the matmul is offloaded to the
accelerator (§V-A), so the operators here mirror that split.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LayerError


def dense(data: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """``(batch, in) @ (out, in)^T -> (batch, out)`` (nn.Linear convention)."""
    if data.ndim != 2 or weights.ndim != 2:
        raise LayerError(
            f"dense expects 2-D tensors, got {data.shape} and {weights.shape}"
        )
    if data.shape[1] != weights.shape[1]:
        raise LayerError(
            f"dense reduction mismatch: data {data.shape} vs weights {weights.shape}"
        )
    return data @ weights.T


def bias_add(data: np.ndarray, bias: np.ndarray, axis: int = -1) -> np.ndarray:
    """Broadcast-add a 1-D bias along ``axis``."""
    if bias.ndim != 1:
        raise LayerError(f"bias must be 1-D, got shape {bias.shape}")
    axis = axis % data.ndim
    if data.shape[axis] != bias.shape[0]:
        raise LayerError(
            f"bias length {bias.shape[0]} does not match axis {axis} "
            f"of data shape {data.shape}"
        )
    shape = [1] * data.ndim
    shape[axis] = bias.shape[0]
    return data + bias.reshape(shape)


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Plain ``(M, K) @ (K, N)`` matrix multiplication."""
    if a.ndim != 2 or b.ndim != 2:
        raise LayerError(f"matmul expects 2-D tensors, got {a.shape} and {b.shape}")
    if a.shape[1] != b.shape[0]:
        raise LayerError(f"matmul shape mismatch: {a.shape} @ {b.shape}")
    return a @ b
