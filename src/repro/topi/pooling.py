"""Pooling and spatial reshaping operators.

These layers stay on the CPU in Bifrost (only conv2d/dense are
accelerated), but AlexNet needs them for end-to-end execution: max
pooling, average pooling, adaptive average pooling and flatten.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import LayerError


def _pool_prepare(
    data: np.ndarray,
    pool_size: Tuple[int, int],
    strides: Tuple[int, int],
    padding: Tuple[int, int],
    pad_value: float,
) -> Tuple[np.ndarray, int, int]:
    if data.ndim != 4:
        raise LayerError(f"pooling expects NCHW input, got shape {data.shape}")
    r, s = pool_size
    stride_h, stride_w = strides
    pad_h, pad_w = padding
    if r < 1 or s < 1 or stride_h < 1 or stride_w < 1:
        raise LayerError(
            f"pool_size and strides must be >= 1, got {pool_size}, {strides}"
        )
    h, w = data.shape[2], data.shape[3]
    p = (h + 2 * pad_h - r) // stride_h + 1
    q = (w + 2 * pad_w - s) // stride_w + 1
    if p < 1 or q < 1:
        raise LayerError(
            f"pooling output would be empty: input {h}x{w}, window {r}x{s}"
        )
    padded = np.pad(
        data,
        ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)),
        mode="constant",
        constant_values=pad_value,
    )
    return padded, p, q


def max_pool2d(
    data: np.ndarray,
    pool_size: Tuple[int, int] = (2, 2),
    strides: Tuple[int, int] = (2, 2),
    padding: Tuple[int, int] = (0, 0),
) -> np.ndarray:
    """NCHW max pooling (padding contributes -inf, never winning)."""
    padded, p, q = _pool_prepare(data, pool_size, strides, padding, -np.inf)
    r, s = pool_size
    stride_h, stride_w = strides
    n, c = data.shape[0], data.shape[1]
    out = np.full((n, c, p, q), -np.inf, dtype=np.float64)
    for ri in range(r):
        for si in range(s):
            window = padded[
                :, :, ri : ri + p * stride_h : stride_h, si : si + q * stride_w : stride_w
            ]
            np.maximum(out, window, out=out)
    return out.astype(np.result_type(data))


def avg_pool2d(
    data: np.ndarray,
    pool_size: Tuple[int, int] = (2, 2),
    strides: Tuple[int, int] = (2, 2),
    padding: Tuple[int, int] = (0, 0),
) -> np.ndarray:
    """NCHW average pooling (count includes padding, like PyTorch default)."""
    padded, p, q = _pool_prepare(data, pool_size, strides, padding, 0.0)
    r, s = pool_size
    stride_h, stride_w = strides
    n, c = data.shape[0], data.shape[1]
    out = np.zeros((n, c, p, q), dtype=np.float64)
    for ri in range(r):
        for si in range(s):
            out += padded[
                :, :, ri : ri + p * stride_h : stride_h, si : si + q * stride_w : stride_w
            ]
    return (out / (r * s)).astype(np.result_type(data))


def adaptive_avg_pool2d(data: np.ndarray, output_size: Tuple[int, int]) -> np.ndarray:
    """NCHW adaptive average pooling to a fixed spatial ``output_size``."""
    if data.ndim != 4:
        raise LayerError(f"pooling expects NCHW input, got shape {data.shape}")
    n, c, h, w = data.shape
    out_h, out_w = output_size
    if out_h < 1 or out_w < 1:
        raise LayerError(f"output_size must be >= 1, got {output_size}")
    out = np.empty((n, c, out_h, out_w), dtype=np.float64)
    for i in range(out_h):
        h0 = (i * h) // out_h
        h1 = -(-((i + 1) * h) // out_h)
        for j in range(out_w):
            w0 = (j * w) // out_w
            w1 = -(-((j + 1) * w) // out_w)
            out[:, :, i, j] = data[:, :, h0:h1, w0:w1].mean(axis=(2, 3))
    return out.astype(np.result_type(data))


def flatten(data: np.ndarray) -> np.ndarray:
    """Collapse all non-batch dimensions: ``(N, ...) -> (N, prod(...))``."""
    if data.ndim < 2:
        raise LayerError(f"flatten expects >= 2-D input, got shape {data.shape}")
    return data.reshape(data.shape[0], -1)
