"""mRNA's analytical MAERI performance model.

mRNA [Zhao et al., ISPASS'19] finds dataflow mappings for MAERI *without
running a simulator*: it encodes the architecture — virtual-neuron
partitioning, distribution/reduction bandwidth, accumulation behaviour —
as closed-form expressions and scores candidate mappings directly, which
is why it "takes minutes rather than hours" (§VIII-B).

This module is that encoding for our MAERI model: steady-state initiation
interval times iteration count.  It intentionally ignores second-order
terms the simulator charges (configuration loads, pipeline fill), exactly
the kind of abstraction a specialized analytical tool makes; tests verify
its estimates track simulated cycles within a few percent on realistic
layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stonne.config import SimulatorConfig
from repro.stonne.controller import _INT64_SAFE
from repro.stonne.layer import ConvLayer, FcLayer, ceil_div
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS


@dataclass(frozen=True)
class MaeriAnalyticalModel:
    """Closed-form cycle estimates for MAERI mappings."""

    config: SimulatorConfig
    params: CycleModelParams = DEFAULT_PARAMS

    def _ii(
        self,
        unique_weights: int,
        unique_inputs: int,
        outputs: int,
        partial: bool,
        has_temporal_reduction: bool,
    ) -> int:
        """Steady-state initiation interval of one tile iteration."""
        dn = ceil_div(unique_weights + unique_inputs, self.config.dn_bw)
        occupancy = self.params.rmw_occupancy if partial else 1
        rn = ceil_div(outputs * occupancy, self.config.rn_bw)
        raw = self.params.acc_raw_latency if has_temporal_reduction else 0
        return max(dn, rn, raw, 1)

    # ------------------------------------------------------------------
    def conv_cycles(self, layer: ConvLayer, mapping: ConvMapping) -> int:
        """Estimated cycles for a conv mapping."""
        folds = mapping.fold_counts(layer)
        red_folds = folds["R"] * folds["S"] * folds["C"]
        iterations = mapping.iterations(layer)
        out_iters = iterations // red_folds

        weights = (
            mapping.T_K * mapping.T_G * mapping.T_C * mapping.T_R * mapping.T_S
        )
        in_rows = (mapping.T_X - 1) * layer.stride_h + mapping.T_R
        in_cols = (mapping.T_Y - 1) * layer.stride_w + mapping.T_S
        inputs = mapping.T_G * mapping.T_C * in_rows * in_cols

        partial_iters = out_iters * (red_folds - 1)
        final_iters = iterations - partial_iters
        temporal = red_folds > 1
        ii_partial = self._ii(weights, inputs, mapping.num_vns, True, temporal)
        ii_final = self._ii(weights, inputs, mapping.num_vns, False, temporal)
        return partial_iters * ii_partial + final_iters * ii_final

    def fc_cycles(self, layer: FcLayer, mapping: FcMapping) -> int:
        """Estimated cycles for an FC mapping."""
        folds = mapping.fold_counts(layer)
        red_folds = folds["K"]
        iterations = mapping.iterations(layer)
        out_iters = iterations // red_folds

        weights = mapping.T_S * mapping.T_K
        inputs = mapping.T_K * mapping.T_N
        partial_iters = out_iters * (red_folds - 1)
        final_iters = iterations - partial_iters
        temporal = red_folds > 1
        ii_partial = self._ii(weights, inputs, mapping.num_vns, True, temporal)
        ii_final = self._ii(weights, inputs, mapping.num_vns, False, temporal)
        return partial_iters * ii_partial + final_iters * ii_final

    # ------------------------------------------------------------------
    # batch scorers: one numpy pass over a candidate grid, bit-identical
    # to the scalar estimates (integer-only array math; raises
    # OverflowError near int64 limits so callers replay the exact
    # scalar path instead of silently wrapping).
    # ------------------------------------------------------------------
    def conv_cycles_batch(self, layer: ConvLayer, tiles):
        """Vectorized :meth:`conv_cycles` over an ``(N, 8)`` int64 tile
        array in ``ConvMapping.as_tuple`` order; returns an int64 array."""
        import numpy as np

        bounds = np.array(
            (
                layer.R, layer.S, layer.C // layer.G, layer.K // layer.G,
                layer.G, layer.N, layer.P, layer.Q,
            ),
            dtype=np.int64,
        )
        if int(bounds.max()) >= 2 ** 62:
            raise OverflowError("layer dimensions too large for int64 folds")
        folds = -(-bounds[None, :] // tiles)
        tf = tiles.astype(np.float64)
        ff = folds.astype(np.float64)
        occ = self.params.rmw_occupancy
        raw_const = self.params.acc_raw_latency

        iter_f = ff.prod(axis=1)
        w_f = tf[:, 3] * tf[:, 4] * tf[:, 2] * tf[:, 0] * tf[:, 1]
        in_rows_f = (tf[:, 6] - 1.0) * layer.stride_h + tf[:, 0]
        in_cols_f = (tf[:, 7] - 1.0) * layer.stride_w + tf[:, 1]
        i_f = tf[:, 4] * tf[:, 2] * in_rows_f * in_cols_f
        num_f = tf[:, 3] * tf[:, 4] * tf[:, 5] * tf[:, 6] * tf[:, 7]
        # The per-iteration interval is bounded by dn + rn + raw + 1, so
        # this bounds the final cycle count.
        big = iter_f * (w_f + i_f + num_f * occ + raw_const + 1.0)
        if float(big.max(initial=0.0)) > _INT64_SAFE:
            raise OverflowError("cycle estimate would exceed int64")

        red = folds[:, 0] * folds[:, 1] * folds[:, 2]
        iterations = folds.prod(axis=1)
        out_iters = iterations // red
        weights = (
            tiles[:, 3] * tiles[:, 4] * tiles[:, 2] * tiles[:, 0] * tiles[:, 1]
        )
        in_rows = (tiles[:, 6] - 1) * layer.stride_h + tiles[:, 0]
        in_cols = (tiles[:, 7] - 1) * layer.stride_w + tiles[:, 1]
        inputs = tiles[:, 4] * tiles[:, 2] * in_rows * in_cols
        num_vns = (
            tiles[:, 3] * tiles[:, 4] * tiles[:, 5] * tiles[:, 6] * tiles[:, 7]
        )
        return self._cycles_from_terms(
            red, iterations, out_iters, weights, inputs, num_vns
        )

    def fc_cycles_batch(self, layer: FcLayer, tiles):
        """Vectorized :meth:`fc_cycles` over an ``(N, 3)`` int64 tile
        array in ``FcMapping.as_tuple`` order; returns an int64 array."""
        import numpy as np

        bounds = np.array(
            (layer.out_features, layer.in_features, layer.batch),
            dtype=np.int64,
        )
        if int(bounds.max()) >= 2 ** 62:
            raise OverflowError("layer dimensions too large for int64 folds")
        folds = -(-bounds[None, :] // tiles)
        tf = tiles.astype(np.float64)
        occ = self.params.rmw_occupancy
        raw_const = self.params.acc_raw_latency

        iter_f = folds.astype(np.float64).prod(axis=1)
        w_f = tf[:, 0] * tf[:, 1]
        i_f = tf[:, 1] * tf[:, 2]
        num_f = tf[:, 0] * tf[:, 2]
        big = iter_f * (w_f + i_f + num_f * occ + raw_const + 1.0)
        if float(big.max(initial=0.0)) > _INT64_SAFE:
            raise OverflowError("cycle estimate would exceed int64")

        red = folds[:, 1]
        iterations = folds.prod(axis=1)
        out_iters = iterations // red
        weights = tiles[:, 0] * tiles[:, 1]
        inputs = tiles[:, 1] * tiles[:, 2]
        num_vns = tiles[:, 0] * tiles[:, 2]
        return self._cycles_from_terms(
            red, iterations, out_iters, weights, inputs, num_vns
        )

    def _cycles_from_terms(
        self, red, iterations, out_iters, weights, inputs, num_vns
    ):
        """Shared tail of the batch scorers: fold the per-row traffic
        terms through the vectorized :meth:`_ii` arithmetic."""
        import numpy as np

        occ = self.params.rmw_occupancy
        raw_const = self.params.acc_raw_latency
        partial_iters = out_iters * (red - 1)
        final_iters = iterations - partial_iters
        dn = -(-(weights + inputs) // self.config.dn_bw)
        rn_partial = -(-(num_vns * occ) // self.config.rn_bw)
        rn_final = -(-num_vns // self.config.rn_bw)
        raw = np.where(red > 1, np.int64(raw_const), np.int64(0))
        one = np.ones_like(dn)
        ii_partial = np.maximum.reduce([dn, rn_partial, raw, one])
        ii_final = np.maximum.reduce([dn, rn_final, raw, one])
        return partial_iters * ii_partial + final_iters * ii_final

    # ------------------------------------------------------------------
    def conv_utilization(self, layer: ConvLayer, mapping: ConvMapping) -> float:
        """Fraction of the multiplier array the mapping occupies."""
        return mapping.multipliers_used / self.config.ms_size

    def fc_utilization(self, layer: FcLayer, mapping: FcMapping) -> float:
        return mapping.multipliers_used / self.config.ms_size
