"""mRNA's analytical MAERI performance model.

mRNA [Zhao et al., ISPASS'19] finds dataflow mappings for MAERI *without
running a simulator*: it encodes the architecture — virtual-neuron
partitioning, distribution/reduction bandwidth, accumulation behaviour —
as closed-form expressions and scores candidate mappings directly, which
is why it "takes minutes rather than hours" (§VIII-B).

This module is that encoding for our MAERI model: steady-state initiation
interval times iteration count.  It intentionally ignores second-order
terms the simulator charges (configuration loads, pipeline fill), exactly
the kind of abstraction a specialized analytical tool makes; tests verify
its estimates track simulated cycles within a few percent on realistic
layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stonne.config import SimulatorConfig
from repro.stonne.layer import ConvLayer, FcLayer, ceil_div
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS


@dataclass(frozen=True)
class MaeriAnalyticalModel:
    """Closed-form cycle estimates for MAERI mappings."""

    config: SimulatorConfig
    params: CycleModelParams = DEFAULT_PARAMS

    def _ii(
        self,
        unique_weights: int,
        unique_inputs: int,
        outputs: int,
        partial: bool,
        has_temporal_reduction: bool,
    ) -> int:
        """Steady-state initiation interval of one tile iteration."""
        dn = ceil_div(unique_weights + unique_inputs, self.config.dn_bw)
        occupancy = self.params.rmw_occupancy if partial else 1
        rn = ceil_div(outputs * occupancy, self.config.rn_bw)
        raw = self.params.acc_raw_latency if has_temporal_reduction else 0
        return max(dn, rn, raw, 1)

    # ------------------------------------------------------------------
    def conv_cycles(self, layer: ConvLayer, mapping: ConvMapping) -> int:
        """Estimated cycles for a conv mapping."""
        folds = mapping.fold_counts(layer)
        red_folds = folds["R"] * folds["S"] * folds["C"]
        iterations = mapping.iterations(layer)
        out_iters = iterations // red_folds

        weights = (
            mapping.T_K * mapping.T_G * mapping.T_C * mapping.T_R * mapping.T_S
        )
        in_rows = (mapping.T_X - 1) * layer.stride_h + mapping.T_R
        in_cols = (mapping.T_Y - 1) * layer.stride_w + mapping.T_S
        inputs = mapping.T_G * mapping.T_C * in_rows * in_cols

        partial_iters = out_iters * (red_folds - 1)
        final_iters = iterations - partial_iters
        temporal = red_folds > 1
        ii_partial = self._ii(weights, inputs, mapping.num_vns, True, temporal)
        ii_final = self._ii(weights, inputs, mapping.num_vns, False, temporal)
        return partial_iters * ii_partial + final_iters * ii_final

    def fc_cycles(self, layer: FcLayer, mapping: FcMapping) -> int:
        """Estimated cycles for an FC mapping."""
        folds = mapping.fold_counts(layer)
        red_folds = folds["K"]
        iterations = mapping.iterations(layer)
        out_iters = iterations // red_folds

        weights = mapping.T_S * mapping.T_K
        inputs = mapping.T_K * mapping.T_N
        partial_iters = out_iters * (red_folds - 1)
        final_iters = iterations - partial_iters
        temporal = red_folds > 1
        ii_partial = self._ii(weights, inputs, mapping.num_vns, True, temporal)
        ii_final = self._ii(weights, inputs, mapping.num_vns, False, temporal)
        return partial_iters * ii_partial + final_iters * ii_final

    # ------------------------------------------------------------------
    def conv_utilization(self, layer: ConvLayer, mapping: ConvMapping) -> float:
        """Fraction of the multiplier array the mapping occupies."""
        return mapping.multipliers_used / self.config.ms_size

    def fc_utilization(self, layer: FcLayer, mapping: FcMapping) -> float:
        return mapping.multipliers_used / self.config.ms_size
