"""The mRNA mapper: analytical mapping generation for MAERI.

For each layer the mapper enumerates *structured* candidates — tiles drawn
from the divisors of each dimension (perfect tilings waste no multiplier
slots on ragged edges, a rule mRNA derives from MAERI's VN packing) plus
the dimension bound itself — prunes by array capacity, scores every
survivor with the closed-form :class:`MaeriAnalyticalModel`, and returns
the argmin.  No simulation runs, so mapping a whole network takes
milliseconds; the resulting mappings vary per layer (Table VI), unlike
psum-guided tuning.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import MappingError, TuningError
from repro.mrna.model import MaeriAnalyticalModel
from repro.stonne.config import ControllerType, SimulatorConfig
from repro.stonne.layer import ConvLayer, FcLayer
from repro.stonne.mapping import (
    ConvMapping,
    FcMapping,
    conv_batch_invalid,
    fc_batch_invalid,
)
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS


def _divisor_options(bound: int, cap: int) -> List[int]:
    """Divisors of ``bound`` up to ``cap``, plus ``min(bound, cap)``."""
    options = {d for d in range(1, min(bound, cap) + 1) if bound % d == 0}
    options.add(min(bound, cap))
    return sorted(options)


def _divisors(bound: int) -> List[int]:
    """All divisors of ``bound``, ascending."""
    return [d for d in range(1, bound + 1) if bound % d == 0]


def _tile_grid(levels: Sequence[int], ms: int) -> List[Tuple[int, ...]]:
    """Every structured tile tuple over ``levels``, in exact nested-loop order.

    Level-wise prefix expansion of the mapper's nested divisor loops:
    each level's options are :func:`_divisor_options`\\ (bound, ms //
    prefix_product) — divisors ascending, with the capacity cap appended
    when it is not itself a divisor — so the flattened order (and hence
    argmin tie-breaking) is identical to iterating the loops.  Tuples
    only; mappings are constructed for the single winner.
    """
    prefixes: List[Tuple[int, ...]] = [()]
    products: List[int] = [1]
    for bound in levels:
        divisors = _divisors(bound)
        next_prefixes: List[Tuple[int, ...]] = []
        next_products: List[int] = []
        for prefix, product in zip(prefixes, products):
            limit = min(bound, ms // product)
            count = bisect_right(divisors, limit)
            options = divisors[:count]
            if not options or options[-1] != limit:
                options = options + [limit]
            for value in options:
                next_prefixes.append(prefix + (value,))
                next_products.append(product * value)
        prefixes, products = next_prefixes, next_products
    return prefixes


@dataclass
class MappingChoice:
    """A scored candidate mapping."""

    mapping: object
    estimated_cycles: int


class MrnaMapper:
    """Generates optimized MAERI mappings analytically (mRNA stand-in)."""

    def __init__(
        self,
        config: SimulatorConfig,
        params: CycleModelParams = DEFAULT_PARAMS,
    ) -> None:
        if config.controller_type is not ControllerType.MAERI_DENSE_WORKLOAD:
            raise TuningError(
                f"mRNA targets MAERI only, got {config.controller_type.value}"
            )
        self.config = config
        self.model = MaeriAnalyticalModel(config, params)

    # ------------------------------------------------------------------
    def conv_candidates(self, layer: ConvLayer) -> List[ConvMapping]:
        """Structured conv candidates pruned by array capacity."""
        ms = self.config.ms_size
        candidates: List[ConvMapping] = []
        for t_r in _divisor_options(layer.R, ms):
            for t_s in _divisor_options(layer.S, ms // t_r):
                for t_c in _divisor_options(layer.C // layer.G, ms // (t_r * t_s)):
                    vn = t_r * t_s * t_c
                    for t_k in _divisor_options(layer.K // layer.G, ms // vn):
                        for t_x in _divisor_options(layer.P, ms // (vn * t_k)):
                            cap_y = ms // (vn * t_k * t_x)
                            for t_y in _divisor_options(layer.Q, cap_y):
                                candidates.append(
                                    ConvMapping(
                                        T_R=t_r, T_S=t_s, T_C=t_c,
                                        T_K=t_k, T_X=t_x, T_Y=t_y,
                                    )
                                )
        return candidates

    def fc_candidates(self, layer: FcLayer) -> List[FcMapping]:
        """Structured FC candidates pruned by array capacity."""
        ms = self.config.ms_size
        candidates: List[FcMapping] = []
        for t_s in _divisor_options(layer.out_features, ms):
            for t_k in _divisor_options(layer.in_features, ms // t_s):
                candidates.append(FcMapping(T_S=t_s, T_K=t_k, T_N=1))
        return candidates

    # ------------------------------------------------------------------
    def map_conv(self, layer: ConvLayer) -> ConvMapping:
        """The analytically optimal conv mapping for ``layer``."""
        best = self.score_conv(layer)
        return best.mapping  # type: ignore[return-value]

    def map_fc(self, layer: FcLayer) -> FcMapping:
        """The analytically optimal FC mapping for ``layer``."""
        best = self.score_fc(layer)
        return best.mapping  # type: ignore[return-value]

    def score_conv(self, layer: ConvLayer) -> MappingChoice:
        """Best candidate with its estimated cycle count.

        One numpy pass: the divisor grid is enumerated as plain tuples
        (:func:`_tile_grid`), scored in a single
        :meth:`~repro.mrna.model.MaeriAnalyticalModel.conv_cycles_batch`
        call, and only the argmin row becomes a :class:`ConvMapping`.
        Bit-identical to the scalar scan (same candidate order, argmin
        keeps the first minimum); layers near int64 limits replay the
        exact scalar loop.
        """
        try:
            return self._score_conv_batch(layer)
        except OverflowError:
            return self._score_conv_scalar(layer)

    def score_fc(self, layer: FcLayer) -> MappingChoice:
        try:
            return self._score_fc_batch(layer)
        except OverflowError:
            return self._score_fc_scalar(layer)

    # ------------------------------------------------------------------
    def _score_conv_batch(self, layer: ConvLayer) -> MappingChoice:
        import numpy as np

        ms = self.config.ms_size
        grid = _tile_grid(
            (
                layer.R, layer.S, layer.C // layer.G,
                layer.K // layer.G, layer.P, layer.Q,
            ),
            ms,
        )
        # Grid order (T_R, T_S, T_C, T_K, T_X, T_Y) -> as_tuple order
        # with the fixed T_G = T_N = 1 columns inserted.
        packed = np.array(grid, dtype=np.int64).reshape(len(grid), 6)
        tiles = np.ones((len(grid), 8), dtype=np.int64)
        tiles[:, (0, 1, 2, 3)] = packed[:, (0, 1, 2, 3)]
        tiles[:, (6, 7)] = packed[:, (4, 5)]
        valid = np.flatnonzero(~conv_batch_invalid(layer, tiles, ms))
        if not valid.size:
            raise TuningError(f"no valid conv mapping for layer {layer.name!r}")
        cycles = self.model.conv_cycles_batch(layer, tiles[valid])
        pos = int(np.argmin(cycles))
        row = tiles[valid[pos]].tolist()
        mapping = ConvMapping(
            T_R=row[0], T_S=row[1], T_C=row[2], T_K=row[3],
            T_G=row[4], T_N=row[5], T_X=row[6], T_Y=row[7],
        )
        return MappingChoice(mapping=mapping, estimated_cycles=int(cycles[pos]))

    def _score_fc_batch(self, layer: FcLayer) -> MappingChoice:
        import numpy as np

        ms = self.config.ms_size
        grid = _tile_grid((layer.out_features, layer.in_features), ms)
        packed = np.array(grid, dtype=np.int64).reshape(len(grid), 2)
        tiles = np.ones((len(grid), 3), dtype=np.int64)
        tiles[:, (0, 1)] = packed
        valid = np.flatnonzero(~fc_batch_invalid(layer, tiles, ms))
        if not valid.size:
            raise TuningError(f"no valid FC mapping for layer {layer.name!r}")
        cycles = self.model.fc_cycles_batch(layer, tiles[valid])
        pos = int(np.argmin(cycles))
        row = tiles[valid[pos]].tolist()
        mapping = FcMapping(T_S=row[0], T_K=row[1], T_N=row[2])
        return MappingChoice(mapping=mapping, estimated_cycles=int(cycles[pos]))

    # ------------------------------------------------------------------
    def _score_conv_scalar(self, layer: ConvLayer) -> MappingChoice:
        """The original scalar scan (arbitrary-precision fallback)."""
        best: Optional[MappingChoice] = None
        for mapping in self.conv_candidates(layer):
            try:
                mapping.validate_for(layer, self.config.ms_size)
            except MappingError:
                continue
            cycles = self.model.conv_cycles(layer, mapping)
            if best is None or cycles < best.estimated_cycles:
                best = MappingChoice(mapping=mapping, estimated_cycles=cycles)
        if best is None:
            raise TuningError(f"no valid conv mapping for layer {layer.name!r}")
        return best

    def _score_fc_scalar(self, layer: FcLayer) -> MappingChoice:
        best: Optional[MappingChoice] = None
        for mapping in self.fc_candidates(layer):
            try:
                mapping.validate_for(layer, self.config.ms_size)
            except MappingError:
                continue
            cycles = self.model.fc_cycles(layer, mapping)
            if best is None or cycles < best.estimated_cycles:
                best = MappingChoice(mapping=mapping, estimated_cycles=cycles)
        if best is None:
            raise TuningError(f"no valid FC mapping for layer {layer.name!r}")
        return best
