"""The mRNA mapper: analytical mapping generation for MAERI.

For each layer the mapper enumerates *structured* candidates — tiles drawn
from the divisors of each dimension (perfect tilings waste no multiplier
slots on ragged edges, a rule mRNA derives from MAERI's VN packing) plus
the dimension bound itself — prunes by array capacity, scores every
survivor with the closed-form :class:`MaeriAnalyticalModel`, and returns
the argmin.  No simulation runs, so mapping a whole network takes
milliseconds; the resulting mappings vary per layer (Table VI), unlike
psum-guided tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import MappingError, TuningError
from repro.mrna.model import MaeriAnalyticalModel
from repro.stonne.config import ControllerType, SimulatorConfig
from repro.stonne.layer import ConvLayer, FcLayer
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS


def _divisor_options(bound: int, cap: int) -> List[int]:
    """Divisors of ``bound`` up to ``cap``, plus ``min(bound, cap)``."""
    options = {d for d in range(1, min(bound, cap) + 1) if bound % d == 0}
    options.add(min(bound, cap))
    return sorted(options)


@dataclass
class MappingChoice:
    """A scored candidate mapping."""

    mapping: object
    estimated_cycles: int


class MrnaMapper:
    """Generates optimized MAERI mappings analytically (mRNA stand-in)."""

    def __init__(
        self,
        config: SimulatorConfig,
        params: CycleModelParams = DEFAULT_PARAMS,
    ) -> None:
        if config.controller_type is not ControllerType.MAERI_DENSE_WORKLOAD:
            raise TuningError(
                f"mRNA targets MAERI only, got {config.controller_type.value}"
            )
        self.config = config
        self.model = MaeriAnalyticalModel(config, params)

    # ------------------------------------------------------------------
    def conv_candidates(self, layer: ConvLayer) -> List[ConvMapping]:
        """Structured conv candidates pruned by array capacity."""
        ms = self.config.ms_size
        candidates: List[ConvMapping] = []
        for t_r in _divisor_options(layer.R, ms):
            for t_s in _divisor_options(layer.S, ms // t_r):
                for t_c in _divisor_options(layer.C // layer.G, ms // (t_r * t_s)):
                    vn = t_r * t_s * t_c
                    for t_k in _divisor_options(layer.K // layer.G, ms // vn):
                        for t_x in _divisor_options(layer.P, ms // (vn * t_k)):
                            cap_y = ms // (vn * t_k * t_x)
                            for t_y in _divisor_options(layer.Q, cap_y):
                                candidates.append(
                                    ConvMapping(
                                        T_R=t_r, T_S=t_s, T_C=t_c,
                                        T_K=t_k, T_X=t_x, T_Y=t_y,
                                    )
                                )
        return candidates

    def fc_candidates(self, layer: FcLayer) -> List[FcMapping]:
        """Structured FC candidates pruned by array capacity."""
        ms = self.config.ms_size
        candidates: List[FcMapping] = []
        for t_s in _divisor_options(layer.out_features, ms):
            for t_k in _divisor_options(layer.in_features, ms // t_s):
                candidates.append(FcMapping(T_S=t_s, T_K=t_k, T_N=1))
        return candidates

    # ------------------------------------------------------------------
    def map_conv(self, layer: ConvLayer) -> ConvMapping:
        """The analytically optimal conv mapping for ``layer``."""
        best = self.score_conv(layer)
        return best.mapping  # type: ignore[return-value]

    def map_fc(self, layer: FcLayer) -> FcMapping:
        """The analytically optimal FC mapping for ``layer``."""
        best = self.score_fc(layer)
        return best.mapping  # type: ignore[return-value]

    def score_conv(self, layer: ConvLayer) -> MappingChoice:
        """Best candidate with its estimated cycle count."""
        best: Optional[MappingChoice] = None
        for mapping in self.conv_candidates(layer):
            try:
                mapping.validate_for(layer, self.config.ms_size)
            except MappingError:
                continue
            cycles = self.model.conv_cycles(layer, mapping)
            if best is None or cycles < best.estimated_cycles:
                best = MappingChoice(mapping=mapping, estimated_cycles=cycles)
        if best is None:
            raise TuningError(f"no valid conv mapping for layer {layer.name!r}")
        return best

    def score_fc(self, layer: FcLayer) -> MappingChoice:
        best: Optional[MappingChoice] = None
        for mapping in self.fc_candidates(layer):
            try:
                mapping.validate_for(layer, self.config.ms_size)
            except MappingError:
                continue
            cycles = self.model.fc_cycles(layer, mapping)
            if best is None or cycles < best.estimated_cycles:
                best = MappingChoice(mapping=mapping, estimated_cycles=cycles)
        if best is None:
            raise TuningError(f"no valid FC mapping for layer {layer.name!r}")
        return best
