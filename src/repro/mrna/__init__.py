"""mRNA stand-in: specialized analytical mapping tool for MAERI."""

from repro.mrna.mapper import MappingChoice, MrnaMapper
from repro.mrna.model import MaeriAnalyticalModel

__all__ = ["MaeriAnalyticalModel", "MappingChoice", "MrnaMapper"]
