"""The Session facade: one object that owns the whole measurement stack.

The paper's Bifrost frontend is "one API, seven steps" (§V); three PRs
of growth scattered that API across ``make_session``, engine kwargs,
fleet flags and tuner options.  :class:`Session` restores the single
surface: build it from a :class:`~repro.session.config.SessionConfig`
(or any of that class's layers), use it as a context manager, and every
resource — the :class:`~repro.engine.EvaluationEngine`, the cache
tiers, the fleet client, the packed-func registration — is created in
one place and torn down deterministically by :meth:`close`.

Typical use::

    from repro.session import Session

    with Session.from_file("repro.toml") as s:
        report = s.run("alexnet")          # zoo model -> RunReport
        print(report.total_cycles)
        print(report.to_json())

    with Session(executor="process", max_workers=4) as s:
        tuned = s.tune("lenet", "conv1")   # -> TuneReport
        print(tuned.best_mapping, tuned.best_cost)

Graph workloads go through the same object::

    with Session(arch="maeri", mapping="mrna") as s:
        report = s.run(model, input_batch)       # torch-like module
        report = s.run_graph(graph, {"data": x}) # raw IR graph

Teardown is guaranteed: ``close()`` (or leaving the ``with`` block)
drains executor pools (thread/process workers), disconnects fleet
workers, closes SQLite connections and JSONL spills, and uninstalls
packed functions — the resource leaks of the pre-Session entry points
cannot recur.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.errors import ReproError, TuningError
from repro.obs.trace import TRACER
from repro.session.config import SessionConfig
from repro.session.reports import CompareReport, RunReport, TuneReport

#: The classic paper models (compat export).  The authoritative model
#: list is the zoo registry — :func:`repro.zoo.zoo_models` — which also
#: carries the modern workloads and any user/fuzz registrations.
ZOO_MODELS = ("alexnet", "lenet", "vgg_small", "mlp")


def zoo_layers(model: str) -> List:
    """Layer descriptors of a zoo model (delegates to :mod:`repro.zoo`)."""
    from repro.zoo import zoo_layers as registry_layers

    return registry_layers(model)


class Session:
    """A configured measurement session over one simulated accelerator.

    Args:
        config: A resolved :class:`SessionConfig`.  When omitted, one is
            built from ``overrides`` (kwargs layer) over the ``REPRO_*``
            environment over defaults.
        simulator_config: A prebuilt (validated) hardware config that
            bypasses the architecture section — the adapter path used by
            the legacy ``make_session`` shim and by tests that hand-roll
            :class:`~repro.stonne.config.SimulatorConfig` objects.
        params: Cycle-model calibration constants.
        **overrides: Flat config keys (see
            :func:`repro.session.config.known_keys`) overriding
            ``config``.

    Attributes:
        config: The resolved :class:`SessionConfig`.
        simulator_config: The validated hardware configuration.
        corrections: Auto-corrections the configurator applied.
        engine: The session's :class:`~repro.engine.EvaluationEngine`.
        api: The :class:`~repro.bifrost.api.StonneBifrostApi` packed-func
            endpoint bound to this session's engine.
    """

    def __init__(
        self,
        config: Optional[SessionConfig] = None,
        *,
        simulator_config=None,
        params=None,
        **overrides: Any,
    ) -> None:
        from repro.bifrost.api import StonneBifrostApi
        from repro.bifrost.mapping_config import MappingConfigurator, MappingStrategy
        from repro.engine import EvaluationEngine, StatsCache, make_stats_cache
        from repro.fleet.remote_backend import resolve_executor
        from repro.stonne.params import DEFAULT_PARAMS

        if config is None:
            config = SessionConfig.resolve(**overrides)
        elif overrides:
            config = config.with_overrides(**overrides)
        self.config = config
        self.params = params if params is not None else DEFAULT_PARAMS

        # [observability] trace: this session owns the global tracer's
        # lifecycle only if it was the one to enable it — nested
        # sessions inside an already-traced program contribute spans
        # without clearing or closing the outer trace.
        self._trace_owner = False
        self._trace_path: Optional[str] = None
        self._last_metrics: Dict[str, Any] = {}
        if config.observability.trace and not TRACER.enabled:
            TRACER.enable()
            self._trace_owner = True

        if simulator_config is not None:
            self.simulator_config = simulator_config
            self.corrections: List[str] = []
        else:
            self.simulator_config, self.corrections = (
                config.build_simulator_config()
            )

        cache_cfg = config.cache
        if cache_cfg.path is not None:
            self._cache = make_stats_cache(
                cache_cfg.path,
                max_entries=cache_cfg.max_entries,
                max_rows=cache_cfg.max_rows,
            )
        else:
            self._cache = StatsCache(max_entries=cache_cfg.max_entries)

        # fleet.autostart: spawn local worker daemons on free ports and
        # fold their addresses into the fleet, so `fleet_autostart = N`
        # is all a config needs for a self-contained distributed session.
        # Skipped when a non-remote executor is explicitly requested —
        # daemons nothing would talk to must not be spawned.
        self._fleet_procs: List[Any] = []
        workers = list(config.fleet.workers)
        if config.fleet.autostart > 0 and config.engine.executor in (
            None, "remote",
        ):
            from repro.fleet.worker import spawn_local_workers

            try:
                self._fleet_procs = spawn_local_workers(
                    config.fleet.autostart,
                    cache_path=cache_cfg.path,
                    cache_max_rows=cache_cfg.max_rows,
                    capacity=config.fleet.capacity,
                    secret=config.fleet.secret,
                )
            except BaseException:
                close = getattr(self._cache, "close", None)
                if close is not None:
                    close()
                raise
            workers.extend(proc.address for proc in self._fleet_procs)

        # From here on a failure must not leak what was already built:
        # close() can never run on a half-constructed session, so reap
        # the autostarted daemons and the cache tier in place.
        try:
            executor = resolve_executor(
                config.engine.executor,
                workers or None,
                config.engine.max_workers,
                shard_timeout=config.fleet.shard_timeout,
                secret=config.fleet.secret,
            )
            self.engine = EvaluationEngine(
                self.simulator_config,
                self.params,
                cache=self._cache,
                executor=executor,
                max_workers=config.engine.max_workers,
                functional=config.engine.functional,
                chunk_size=config.engine.chunk_size,
                steal_deadline=config.engine.steal_deadline,
            )
            self.mappings = MappingConfigurator(
                config=self.simulator_config,
                strategy=MappingStrategy(config.tuning.mapping),
                objective=config.tuning.objective,
                tuner_trials=config.tuning.trials,
                tuner_early_stopping=config.tuning.early_stopping,
                seed=config.tuning.seed,
                engine=self.engine,
            )
            self.api = StonneBifrostApi(
                config=self.simulator_config,
                mappings=self.mappings,
                params=self.params,
                _engine=self.engine,
            )
        except BaseException:
            for proc in self._fleet_procs:
                proc.stop()
            engine = getattr(self, "engine", None)
            if engine is not None:
                engine.close()
            close = getattr(self._cache, "close", None)
            if close is not None:
                close()
            raise
        self._installed = False
        self._closed = False

    # ------------------------------------------------------------------
    # construction layers
    # ------------------------------------------------------------------
    @classmethod
    def from_file(cls, path, **overrides: Any) -> "Session":
        """A session from a TOML/JSON config file (kwargs override it)."""
        return cls(SessionConfig.resolve(file=path, **overrides))

    @classmethod
    def from_env(cls, environ=None, **overrides: Any) -> "Session":
        """A session from the ``REPRO_*`` environment (kwargs override)."""
        return cls(SessionConfig.resolve(env=environ, **overrides))

    @classmethod
    def from_dict(cls, data: Dict[str, Any], **overrides: Any) -> "Session":
        """A session from a nested config dict (kwargs override it)."""
        return cls(SessionConfig.from_dict(data).with_overrides(**overrides))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "Session":
        self._check_open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Deterministic teardown (idempotent).

        Uninstalls packed functions if installed, drains the engine's
        executor pools (thread/process workers, fleet connections),
        closes persistent cache tiers (SQLite connections, JSONL
        spills), and reaps any worker daemons ``fleet.autostart``
        spawned — no lingering processes survive a closed session.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if self._installed:
                self.uninstall()
            self.engine.close()
            close = getattr(self._cache, "close", None)
            if close is not None:
                close()
        finally:
            for proc in self._fleet_procs:
                proc.stop()
            if self._trace_owner:
                self._finalize_trace()

    def _finalize_trace(self) -> None:
        """Write the trace file and release the global tracer."""
        from repro.obs.trace import write_trace

        path = self.config.observability.trace_path or "repro_trace.json"
        try:
            self._trace_path = write_trace(
                path,
                TRACER.spans(),
                metrics=self._last_metrics,
                meta={
                    "arch": self.config.architecture.arch,
                    "executor": self.engine.backend.name,
                },
            )
        finally:
            TRACER.disable()

    @property
    def trace_path(self) -> Optional[str]:
        """Where :meth:`close` wrote the trace file (None until then,
        and None unless this session enabled tracing)."""
        return self._trace_path

    @property
    def fleet_workers(self) -> List[str]:
        """Addresses of the worker daemons this session autostarted."""
        return [proc.address for proc in self._fleet_procs]

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ReproError("this Session is closed")

    # ------------------------------------------------------------------
    # packed-func registration
    # ------------------------------------------------------------------
    def install(self) -> "Session":
        """Bind this session's API as the global "stonne" target and
        register its packed functions (``tvm.contrib.stonne.*``).

        Graph runs do this automatically for their own duration; call it
        directly only to drive the packed-func registry by hand.
        """
        from repro.bifrost.strategies import install_session

        self._check_open()
        install_session(self.api)
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Remove this session's global registrations (idempotent)."""
        from repro.bifrost.strategies import active_session, uninstall_session

        if active_session() is self.api:
            uninstall_session()
        self._installed = False

    # ------------------------------------------------------------------
    # measurement entry points
    # ------------------------------------------------------------------
    def run(self, model, input_batch=None) -> RunReport:
        """Run a model and return a structured :class:`RunReport`.

        Two forms:

        * ``run("alexnet")`` — a zoo model name: executed as a
          single-scenario sweep, so its layer descriptors are simulated
          in one engine batch (repeated shapes served from the stats
          cache, misses fanned out on the configured executor) on the
          same path multi-scenario matrices use.
        * ``run(module, input_batch)`` — a torch-like module tree plus a
          real input batch: the graph executes end to end with
          conv2d/dense offloaded to the simulated accelerator, and the
          report carries the real output tensors.
        """
        self._check_open()
        label = model if isinstance(model, str) else type(model).__name__
        with TRACER.span("session.run", category="session", model=label):
            if isinstance(model, str):
                from repro.sweep import SweepPlan

                zoo_layers(model)  # validate the name before planning
                return self.sweep(
                    SweepPlan.single(self.config, model=model)
                ).scenarios[0].report
            if input_batch is None:
                raise ReproError(
                    "Session.run(model, input_batch) requires an input "
                    "batch for non-zoo models"
                )
            import numpy as np

            from repro.frontends.torchlike import from_torchlike

            shape = tuple(np.asarray(input_batch).shape)
            graph = from_torchlike(model, shape)
            first_input = graph.nodes[graph.input_ids[0]].name
            return self.run_graph(
                graph, {first_input: np.asarray(input_batch)}
            )

    def run_layers(self, layers) -> List:
        """Simulate bare layer descriptors through the session engine
        in one batch (repeated shapes served from the stats cache).

        One implementation serves both API generations:
        :func:`repro.bifrost.runner.run_layers` does the work, and this
        method is its session-scoped spelling.
        """
        from repro.bifrost.runner import run_layers as _run_layers

        self._check_open()
        return _run_layers(layers, self.api)

    def run_graph(self, graph, feeds: Dict[str, Any]) -> RunReport:
        """Execute an IR graph with conv2d/dense offloaded to this
        session; returns a :class:`RunReport` carrying the outputs."""
        from repro.bifrost.runner import run_graph as _run_graph

        self._check_open()
        result = _run_graph(graph, feeds, self.api)
        return RunReport(
            model=None,
            architecture=str(self.simulator_config.controller_type.value),
            layer_stats=result.layer_stats,
            counters=self.engine.counters(),
            outputs=result.outputs,
        )

    def tune(
        self,
        model,
        layer: Optional[str] = None,
        *,
        tuner: Optional[str] = None,
        objective: Optional[str] = None,
        trials: Optional[int] = None,
        early_stopping: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> TuneReport:
        """Tune one layer's mapping; keyword overrides beat the config.

        ``model`` is a zoo model name (then ``layer`` names the layer)
        or a bare :class:`~repro.stonne.layer.ConvLayer` /
        :class:`~repro.stonne.layer.FcLayer` descriptor.  Executes as a
        single-scenario sweep, so standalone tunes and tune matrices
        share one measurement path (and one cache key space).
        """
        from repro.sweep import SweepPlan

        self._check_open()
        model_name: Optional[str] = None
        target = None
        if isinstance(model, str):
            model_name = model
            layers = {l.name: l for l in zoo_layers(model)}
            if layer not in layers:
                raise TuningError(
                    f"model {model!r} has no layer {layer!r}; "
                    f"choose from {sorted(layers)}"
                )
        else:
            target = model
        overrides = {
            key: value
            for key, value in (
                ("tuner", tuner),
                ("objective", objective),
                ("trials", trials),
                ("early_stopping", early_stopping),
                ("seed", seed),
            )
            if value is not None
        }
        config = (
            self.config.with_overrides(**overrides) if overrides
            else self.config
        )
        plan = SweepPlan.single(
            config, model=model_name, kind="tune", layer=layer, target=target,
        )
        with TRACER.span(
            "session.tune", category="session",
            model=model_name, layer=layer,
        ):
            return self.sweep(plan).scenarios[0].report

    def compare(self, model: str) -> CompareReport:
        """Default vs AutoTVM vs mRNA mappings for a zoo model's
        accelerated layers (the Figure 12 view), as a
        :class:`CompareReport`.  Executes as a single-scenario sweep."""
        from repro.sweep import SweepPlan

        self._check_open()
        plan = SweepPlan.single(self.config, model=model, kind="compare")
        with TRACER.span("session.compare", category="session", model=model):
            return self.sweep(plan).scenarios[0].report

    def sweep(self, plan, progress=None, resume=None) -> "SweepReport":
        """Execute a :class:`~repro.sweep.SweepPlan` across scenarios.

        All scenarios run against this session's resources — one stats
        cache, one executor backend (process pool / fleet), one engine
        per distinct hardware configuration — and their pending
        evaluations are flattened into shared engine batches, so layers
        shared between scenarios simulate exactly once and the executor
        tiers stay saturated across the whole matrix.  Returns a
        :class:`~repro.sweep.SweepReport`.

        ``progress`` is an optional per-milestone event callback (see
        :class:`~repro.sweep.SweepRunner`); raising
        :class:`~repro.errors.SweepCancelled` from it aborts between
        scenarios with a resumable partial report attached.  ``resume``
        is an archived :class:`~repro.sweep.SweepReport` whose
        config-hash-matched scenarios are adopted instead of re-run.
        """
        from repro.sweep import SweepPlan
        from repro.sweep.runner import SweepRunner

        self._check_open()
        if not isinstance(plan, SweepPlan):
            raise ReproError(
                f"Session.sweep expects a SweepPlan, got {type(plan).__name__}"
            )
        with TRACER.span(
            "session.sweep", category="session",
            scenarios=len(plan.scenarios),
        ):
            return SweepRunner(self, progress=progress).execute(
                plan, resume=resume
            )

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, Any]:
        """Engine bookkeeping snapshot (evaluations, simulations, cache
        hits/misses, executor name)."""
        return self.engine.counters()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (
            f"Session({self.config.architecture.arch}, "
            f"executor={self.engine.backend.name!r}, {state})"
        )
