"""The one typed configuration object behind every entry point.

Three PRs of growth scattered the measurement stack's knobs —
``executor=``, ``cache_path=``, ``workers=``, architecture fields,
tuner options — across ``make_session``, ``StonneBifrostApi``,
``TuningTask``, the fleet worker and ~20 CLI flags.
:class:`SessionConfig` gathers them into six frozen sections
(:class:`ArchitectureConfig`, :class:`EngineConfig`,
:class:`CacheConfig`, :class:`FleetConfig`, :class:`TuningConfig`,
:class:`ObservabilityConfig`) with
*layered* construction and one documented precedence order::

    CLI flags  >  explicit kwargs  >  REPRO_* environment  >  config file  >  defaults

Each layer is a flat mapping of the keys listed by
:func:`field_specs`; :meth:`SessionConfig.resolve` merges them.  The
same field metadata drives the CLI (every flag in ``repro run --help``
is *derived* from it via :func:`add_config_arguments`) and the
``REPRO_*`` environment variables, so the three spellings of one knob
can never drift apart.

Construction forms::

    SessionConfig()                           # defaults
    SessionConfig.resolve(executor="process") # kwargs layer
    SessionConfig.from_file("repro.toml")     # TOML or JSON file
    SessionConfig.from_env()                  # REPRO_* variables
    SessionConfig.from_dict({...})            # nested dict (round-trips
                                              #   repro config show --json)

Unknown sections or keys raise :class:`~repro.errors.ConfigError` —
a typo'd ``[cach]`` heading fails loudly instead of being ignored.

One config file can also carry named **profiles** — ``[profile.edge]``
/ ``[profile.cloud]`` tables holding partial section overlays — so one
``repro.toml`` describes a whole sweep matrix.  A profile is selected
with ``--profile`` (or ``SessionConfig.from_file(path, profile=...)``)
and merges over the file's base sections *inside* the file layer, so
env/kwargs/CLI still win; :func:`load_profiles` returns every overlay
for matrix expansion (:meth:`repro.sweep.SweepPlan.matrix`).
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigError

#: Architectures the config accepts (mirrors the CLI's historical set).
ARCHITECTURES = ("maeri", "sigma", "tpu", "magma")
MAPPING_STRATEGIES = ("default", "tuned", "mrna")
OBJECTIVES = ("cycles", "psums", "energy")
TUNERS = ("grid", "random", "ga", "xgb")

#: Prefix of every configuration environment variable.
ENV_PREFIX = "REPRO_"


def _meta(
    key: Optional[str] = None,
    kind: str = "str",
    help: str = "",
    choices: Union[Sequence[str], Callable[[], Sequence[str]], None] = None,
    env: Optional[str] = None,
    cli: bool = True,
    metavar: Optional[str] = None,
) -> Dict[str, Any]:
    """Field metadata: the single source the CLI and env layers read.

    Args:
        key: Flat key (kwargs/env/CLI spelling); defaults to the field
            name.
        kind: Coercion rule — "str", "optstr", "int", "optint",
            "float", "bool", or "workers" (comma list <-> tuple).
        help: CLI help text.
        choices: Allowed values (or a callable producing them, resolved
            at parser-build time so late registrations are included).
        env: Environment variable override (default ``REPRO_<KEY>``).
        cli: Whether to expose the field as a CLI flag.
        metavar: CLI metavar override.
    """
    return {
        "key": key,
        "kind": kind,
        "help": help,
        "choices": choices,
        "env": env,
        "cli": cli,
        "metavar": metavar,
    }


def _registered_backends() -> Sequence[str]:
    from repro.engine import registered_backends

    return registered_backends()


@dataclass(frozen=True)
class ArchitectureConfig:
    """The simulated accelerator (paper Table III knobs)."""

    arch: str = field(
        default="maeri",
        metadata=_meta(kind="str", choices=ARCHITECTURES,
                       help="simulated accelerator architecture"),
    )
    ms_size: int = field(
        default=128,
        metadata=_meta(kind="int",
                       help="multiplier switches (LINEAR networks)"),
    )
    ms_rows: int = field(
        default=16, metadata=_meta(kind="int", help="TPU mesh rows"),
    )
    ms_cols: int = field(
        default=16, metadata=_meta(kind="int", help="TPU mesh columns"),
    )
    dn_bw: int = field(
        default=64,
        metadata=_meta(kind="int", help="distribution network bandwidth"),
    )
    rn_bw: int = field(
        default=16,
        metadata=_meta(kind="int", help="reduction network bandwidth"),
    )
    sparsity: int = field(
        default=0,
        metadata=_meta(kind="int",
                       help="weight sparsity percentage (SIGMA/MAGMA)"),
    )
    sparsity_ratio: float = field(
        default=0.0,
        metadata=_meta(key="sparsity_ratio", kind="float",
                       help="weight sparsity as a ratio in [0, 1) "
                            "(SIGMA/MAGMA); a non-zero value takes "
                            "precedence over the percentage form and is "
                            "the spelling sweep axes use "
                            "(--axis architecture.sparsity_ratio=0,0.5,0.9)"),
    )

    def __post_init__(self) -> None:
        if self.arch not in ARCHITECTURES:
            raise ConfigError(
                f"arch must be one of {ARCHITECTURES}, got {self.arch!r}"
            )
        if not 0 <= self.sparsity <= 100:
            raise ConfigError(
                f"sparsity must be a percentage in [0, 100], "
                f"got {self.sparsity}"
            )
        if not 0.0 <= self.sparsity_ratio < 1.0:
            raise ConfigError(
                f"sparsity_ratio must be in [0.0, 1.0), "
                f"got {self.sparsity_ratio}"
            )


@dataclass(frozen=True)
class EngineConfig:
    """How the evaluation engine executes cache-missing simulations."""

    executor: Optional[str] = field(
        default=None,
        metadata=_meta(kind="optstr", choices=_registered_backends,
                       help="executor backend for batched evaluations: "
                            "serial (inline), thread (GIL-bound pool), "
                            "process (parallel worker processes), or "
                            "remote (shard across fleet workers)"),
    )
    max_workers: Optional[int] = field(
        default=None,
        metadata=_meta(kind="optint",
                       help="pool width for the thread/process backends"),
    )
    functional: bool = field(
        default=False,
        metadata=_meta(kind="bool",
                       help="also execute the exact im2col datapath per "
                            "simulation (real STONNE's cost profile)"),
    )
    chunk_size: Optional[int] = field(
        default=None,
        metadata=_meta(key="chunk_size", kind="optint",
                       help="items per work-stealing scheduler chunk on "
                            "pull-capable backends (unset: sized "
                            "automatically from the batch and slot "
                            "count)"),
    )
    steal_deadline: float = field(
        default=5.0,
        metadata=_meta(key="steal_deadline", kind="float",
                       help="seconds before an idle scheduler slot "
                            "re-splits a straggler's unfinished chunk"),
    )

    def __post_init__(self) -> None:
        if self.executor is not None and self.executor not in _registered_backends():
            raise ConfigError(
                f"executor must be one of {sorted(_registered_backends())}, "
                f"got {self.executor!r}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.steal_deadline <= 0:
            raise ConfigError(
                f"steal_deadline must be > 0, got {self.steal_deadline}"
            )


@dataclass(frozen=True)
class CacheConfig:
    """The stats-cache tiers (in-memory L1 + optional persistent tier)."""

    path: Optional[str] = field(
        default=None,
        metadata=_meta(key="cache_path", kind="optstr", metavar="FILE",
                       help="persist the simulation-stats cache here; "
                            ".sqlite/.sqlite3/.db selects the shared "
                            "WAL-mode tier, anything else the JSONL "
                            "warm-start spill"),
    )
    max_rows: Optional[int] = field(
        default=None,
        metadata=_meta(key="cache_max_rows", kind="optint",
                       help="row-count cap for the SQLite tier; least "
                            "recently accessed rows are evicted past it "
                            "(unbounded when unset)"),
    )
    max_entries: int = field(
        default=65536,
        metadata=_meta(key="cache_max_entries", kind="int",
                       help="in-memory L1 LRU bound (records)"),
    )

    def __post_init__(self) -> None:
        if self.max_rows is not None and self.max_rows < 1:
            raise ConfigError(f"cache_max_rows must be >= 1, got {self.max_rows}")
        if self.max_entries < 1:
            raise ConfigError(
                f"cache_max_entries must be >= 1, got {self.max_entries}"
            )


@dataclass(frozen=True)
class FleetConfig:
    """The distributed tier: worker addresses for the remote backend."""

    workers: Tuple[str, ...] = field(
        default=(),
        metadata=_meta(kind="workers", env="REPRO_FLEET_WORKERS",
                       metavar="HOST:PORT,...",
                       help="fleet worker addresses for the remote "
                            "executor (implies --executor remote; start "
                            "them with: repro worker --listen HOST:PORT)"),
    )
    autostart: int = field(
        default=0,
        metadata=_meta(key="fleet_autostart", kind="int",
                       help="spawn this many local worker daemons on "
                            "free ports when the session opens (reaped "
                            "at close; implies the remote executor "
                            "unless another one is named)"),
    )

    capacity: int = field(
        default=1,
        metadata=_meta(key="fleet_capacity", kind="int",
                       help="scheduling weight a worker advertises in "
                            "its hello (repro worker) and autostarted "
                            "workers inherit; the remote backend sizes "
                            "shards and scheduler slots proportionally"),
    )
    shard_timeout: float = field(
        default=600.0,
        metadata=_meta(key="fleet_shard_timeout", kind="float",
                       help="seconds the remote backend waits for one "
                            "shard's results before declaring the "
                            "connection dead (slow-but-alive workers "
                            "are handled by the much shorter "
                            "steal_deadline instead)"),
    )

    secret: Optional[str] = field(
        default=None,
        metadata=_meta(key="fleet_secret", kind="optstr", metavar="SECRET",
                       help="opt-in shared secret for the wire protocol: "
                            "repro worker and repro serve challenge "
                            "every connection (HMAC-SHA256 over a "
                            "per-connection nonce; the secret never "
                            "crosses the wire) and clients must answer "
                            "before anything else runs"),
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "workers", _coerce_workers(self.workers))
        if self.autostart < 0:
            raise ConfigError(
                f"fleet_autostart must be >= 0, got {self.autostart}"
            )
        if self.capacity < 1:
            raise ConfigError(
                f"fleet_capacity must be >= 1, got {self.capacity}"
            )
        if self.shard_timeout <= 0:
            raise ConfigError(
                f"fleet_shard_timeout must be > 0, got {self.shard_timeout}"
            )


@dataclass(frozen=True)
class TuningConfig:
    """Mapping-strategy and tuner options (§VII of the paper)."""

    mapping: str = field(
        default="mrna",
        metadata=_meta(kind="str", choices=MAPPING_STRATEGIES,
                       help="mapping source for MAERI layers"),
    )
    objective: str = field(
        default="psums",
        metadata=_meta(kind="str", choices=OBJECTIVES,
                       help="tuning cost to minimize"),
    )
    tuner: str = field(
        default="xgb",
        metadata=_meta(kind="str", choices=TUNERS,
                       help="search strategy for repro tune"),
    )
    trials: int = field(
        default=400,
        metadata=_meta(kind="int", help="measurement budget per layer"),
    )
    early_stopping: int = field(
        default=120,
        metadata=_meta(kind="int",
                       help="stop after this many trials without "
                            "improvement"),
    )
    seed: int = field(
        default=0,
        metadata=_meta(kind="int", help="RNG seed for stochastic tuners"),
    )
    speculation: bool = field(
        default=False,
        metadata=_meta(kind="bool",
                       help="let the GA tuner enqueue its predicted next "
                            "generation at low scheduler priority while "
                            "the current one finishes (cache-warming "
                            "only; never changes the chosen best "
                            "config)"),
    )

    def __post_init__(self) -> None:
        if self.mapping not in MAPPING_STRATEGIES:
            raise ConfigError(
                f"mapping must be one of {MAPPING_STRATEGIES}, got {self.mapping!r}"
            )
        if self.objective not in OBJECTIVES:
            raise ConfigError(
                f"objective must be one of {OBJECTIVES}, got {self.objective!r}"
            )
        if self.tuner not in TUNERS:
            raise ConfigError(
                f"tuner must be one of {TUNERS}, got {self.tuner!r}"
            )
        if self.trials < 1:
            raise ConfigError(f"trials must be >= 1, got {self.trials}")
        if self.early_stopping < 1:
            raise ConfigError(
                f"early_stopping must be >= 1, got {self.early_stopping}"
            )


@dataclass(frozen=True)
class ObservabilityConfig:
    """Tracing and metrics (the ``repro.obs`` subsystem)."""

    trace: bool = field(
        default=False,
        metadata=_meta(kind="bool",
                       help="record spans across session/engine/"
                            "scheduler/cache/fleet and write a Chrome "
                            "trace-event JSON (chrome://tracing or "
                            "Perfetto) when the session closes"),
    )
    trace_path: Optional[str] = field(
        default=None,
        metadata=_meta(key="trace_path", kind="optstr", metavar="FILE",
                       help="where --trace writes the trace file "
                            "(default: repro_trace.json)"),
    )
    metrics: bool = field(
        default=False,
        metadata=_meta(kind="bool",
                       help="attach a metrics section (per-tier cache "
                            "hit rates, simulations/sec, chunk-latency "
                            "histogram, fleet worker health) to run and "
                            "sweep reports"),
    )


# ----------------------------------------------------------------------
# coercion (one rule per `kind`, shared by the env, file and CLI layers)
# ----------------------------------------------------------------------
_TRUE = ("1", "true", "yes", "on")
_FALSE = ("0", "false", "no", "off")


def _coerce_workers(value) -> Tuple[str, ...]:
    if value is None:
        return ()
    if isinstance(value, str):
        return tuple(part.strip() for part in value.split(",") if part.strip())
    return tuple(str(part) for part in value)


def _coerce(key: str, kind: str, value):
    """Apply a field's coercion rule to a raw layer value."""
    if kind == "workers":
        return _coerce_workers(value)
    if value is None:
        if kind in ("optstr", "optint"):
            return None
        raise ConfigError(f"config key {key!r} does not accept null")
    if kind in ("optstr", "optint") and isinstance(value, str) and (
        not value.strip() or value.strip().lower() == "none"
    ):
        return None
    if kind in ("int", "optint"):
        if isinstance(value, bool):
            raise ConfigError(f"config key {key!r} expects an integer, got {value!r}")
        try:
            return int(value)
        except (TypeError, ValueError):
            raise ConfigError(
                f"config key {key!r} expects an integer, got {value!r}"
            ) from None
    if kind == "float":
        if isinstance(value, bool):
            raise ConfigError(f"config key {key!r} expects a number, got {value!r}")
        try:
            return float(value)
        except (TypeError, ValueError):
            raise ConfigError(
                f"config key {key!r} expects a number, got {value!r}"
            ) from None
    if kind == "bool":
        if isinstance(value, bool):
            return value
        text = str(value).strip().lower()
        if text in _TRUE:
            return True
        if text in _FALSE:
            return False
        raise ConfigError(
            f"config key {key!r} expects a boolean "
            f"({'/'.join(_TRUE)} or {'/'.join(_FALSE)}), got {value!r}"
        )
    return str(value)


# ----------------------------------------------------------------------
# field specs: the flattened view every layer speaks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FieldSpec:
    """One configuration knob, with its spelling in every layer."""

    section: str       #: section attribute on SessionConfig ("engine", ...)
    name: str          #: dataclass field name inside the section
    key: str           #: flat key (kwargs layer, CLI dest)
    kind: str          #: coercion rule
    help: str
    choices: Union[Sequence[str], Callable[[], Sequence[str]], None]
    env: str           #: environment variable name
    cli: bool          #: exposed as a CLI flag?
    metavar: Optional[str]

    @property
    def flag(self) -> str:
        """The CLI flag spelling (``--cache-max-rows``)."""
        return "--" + self.key.replace("_", "-")

    def resolved_choices(self) -> Optional[Sequence[str]]:
        if callable(self.choices):
            return tuple(self.choices())
        return self.choices


_SECTION_TYPES = (
    ("architecture", ArchitectureConfig),
    ("engine", EngineConfig),
    ("cache", CacheConfig),
    ("fleet", FleetConfig),
    ("tuning", TuningConfig),
    ("observability", ObservabilityConfig),
)


def field_specs() -> List[FieldSpec]:
    """Every configuration knob, in declaration order."""
    specs: List[FieldSpec] = []
    for section_name, section_type in _SECTION_TYPES:
        for f in fields(section_type):
            meta = f.metadata
            key = meta.get("key") or f.name
            specs.append(
                FieldSpec(
                    section=section_name,
                    name=f.name,
                    key=key,
                    kind=meta.get("kind", "str"),
                    help=meta.get("help", ""),
                    choices=meta.get("choices"),
                    env=meta.get("env") or (ENV_PREFIX + key.upper()),
                    cli=meta.get("cli", True),
                    metavar=meta.get("metavar"),
                )
            )
    return specs


_SPECS_BY_KEY: Dict[str, FieldSpec] = {spec.key: spec for spec in field_specs()}


def known_keys() -> List[str]:
    """The flat key namespace (kwargs / env / CLI dests)."""
    return list(_SPECS_BY_KEY)


# ----------------------------------------------------------------------
# the config object
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SessionConfig:
    """The complete, immutable configuration of one measurement session.

    See the module docstring for the layering rules.  Instances are
    value objects: derive variants with :meth:`with_overrides`, never
    mutation.
    """

    architecture: ArchitectureConfig = field(default_factory=ArchitectureConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    fleet: FleetConfig = field(default_factory=FleetConfig)
    tuning: TuningConfig = field(default_factory=TuningConfig)
    observability: ObservabilityConfig = field(
        default_factory=ObservabilityConfig
    )

    # ------------------------------------------------------------------
    # flat view
    # ------------------------------------------------------------------
    def to_flat(self) -> Dict[str, Any]:
        """The config as one flat ``{key: value}`` mapping."""
        flat: Dict[str, Any] = {}
        for spec in field_specs():
            flat[spec.key] = getattr(getattr(self, spec.section), spec.name)
        return flat

    def with_overrides(self, **overrides: Any) -> "SessionConfig":
        """A copy with flat-key overrides applied (unknown keys raise)."""
        if not overrides:
            return self
        updates: Dict[str, Dict[str, Any]] = {}
        for key, value in overrides.items():
            spec = _SPECS_BY_KEY.get(key)
            if spec is None:
                raise ConfigError(
                    f"unknown config key {key!r}; known keys: "
                    f"{', '.join(known_keys())}"
                )
            updates.setdefault(spec.section, {})[spec.name] = _coerce(
                key, spec.kind, value
            )
        sections = {
            section: replace(getattr(self, section), **changes)
            for section, changes in updates.items()
        }
        return replace(self, **sections)

    # ------------------------------------------------------------------
    # nested (file / JSON) view
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """Nested plain-type dict; round-trips through :meth:`from_dict`
        (and therefore through ``repro config show --json``)."""
        data: Dict[str, Dict[str, Any]] = {}
        for spec in field_specs():
            value = getattr(getattr(self, spec.section), spec.name)
            if spec.kind == "workers":
                value = list(value)
            data.setdefault(spec.section, {})[spec.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SessionConfig":
        """Build from the nested section form (bad keys rejected)."""
        return cls().merged_with_dict(data)

    def merged_with_dict(self, data: Mapping[str, Any]) -> "SessionConfig":
        """Overlay a nested section dict on this config."""
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"config data must be a mapping of sections, got {type(data).__name__}"
            )
        flat: Dict[str, Any] = {}
        section_fields = {
            section: {f.name for f in fields(section_type)}
            for section, section_type in _SECTION_TYPES
        }
        for section, values in data.items():
            if section not in section_fields:
                raise ConfigError(
                    f"unknown config section {section!r}; expected one of "
                    f"{sorted(section_fields)}"
                )
            if not isinstance(values, Mapping):
                raise ConfigError(
                    f"config section {section!r} must be a table/mapping, "
                    f"got {type(values).__name__}"
                )
            for name, value in values.items():
                if name not in section_fields[section]:
                    raise ConfigError(
                        f"unknown key {name!r} in config section {section!r}; "
                        f"expected one of {sorted(section_fields[section])}"
                    )
                spec = next(
                    s for s in _SPECS_BY_KEY.values()
                    if s.section == section and s.name == name
                )
                flat[spec.key] = value
        return self.with_overrides(**flat)

    # ------------------------------------------------------------------
    # file / env layers
    # ------------------------------------------------------------------
    @classmethod
    def from_file(
        cls,
        path: Union[str, os.PathLike],
        profile: Optional[str] = None,
    ) -> "SessionConfig":
        """Defaults overlaid with a TOML (or ``.json``) config file.

        ``profile`` selects a named ``[profile.X]`` overlay from the
        same file, merged on top of the file's base sections (still
        below the env/kwargs/CLI layers).
        """
        base, profiles = _split_profiles(_load_config_file(path), path)
        config = cls().merged_with_dict(base)
        if profile is not None:
            config = config.merged_with_dict(
                _lookup_profile(profiles, profile, path)
            )
        return config

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> "SessionConfig":
        """Defaults overlaid with the ``REPRO_*`` environment variables."""
        return cls().with_overrides(**env_overrides(environ))

    @classmethod
    def resolve(
        cls,
        file: Union[str, os.PathLike, None] = None,
        env: Union[Mapping[str, str], bool, None] = None,
        cli: Optional[Mapping[str, Any]] = None,
        profile: Optional[str] = None,
        **kwargs: Any,
    ) -> "SessionConfig":
        """Merge every layer with the documented precedence.

        ``CLI > kwargs > env > file (profile over base) > defaults``.
        ``env`` is ``os.environ`` when None, a mapping to substitute
        one, or False to skip the environment layer entirely (hermetic
        construction).  ``profile`` selects a ``[profile.X]`` overlay
        from ``file`` — it is part of the file layer, so env/kwargs/CLI
        still win over it.
        """
        config = cls()
        if file is not None:
            config = cls.from_file(file, profile=profile)
        elif profile is not None:
            raise ConfigError(
                f"profile {profile!r} requested but no config file given"
            )
        if env is not False:
            config = config.with_overrides(
                **env_overrides(None if env is None else env)
            )
        if kwargs:
            config = config.with_overrides(**kwargs)
        if cli:
            config = config.with_overrides(**cli)
        return config

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_toml(
        self, profiles: Optional[Mapping[str, Mapping[str, Any]]] = None
    ) -> str:
        """Render as TOML text that :meth:`from_file` accepts, so
        ``repro config show > repro.toml`` produces a working file.

        Unset optional keys are emitted as comments (TOML has no null).
        ``profiles`` (name -> nested section overlay, the shape returned
        by :func:`load_profiles`) are appended as ``[profile.X.section]``
        tables, so a snapshot of a profile-bearing file keeps its
        profiles selectable via ``--profile``.
        """
        lines: List[str] = []
        for section, _ in _SECTION_TYPES:
            lines.append(f"[{section}]")
            for spec in field_specs():
                if spec.section != section:
                    continue
                value = getattr(getattr(self, section), spec.name)
                if value is None:
                    lines.append(f"# {spec.name} = (unset)")
                else:
                    lines.append(f"{spec.name} = {_toml_value(value)}")
            lines.append("")
        if profiles:
            lines.append(render_profiles_toml(profiles))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # hardware resolution
    # ------------------------------------------------------------------
    def build_simulator_config(self):
        """Resolve the architecture section into a validated
        :class:`~repro.stonne.config.SimulatorConfig`.

        Returns:
            ``(config, corrections)`` — the immutable hardware config and
            the list of auto-corrections the configurator applied.
        """
        from repro.bifrost.architecture import Architecture

        arch = Architecture()
        a = self.architecture
        # The ratio spelling (sweep-axis friendly) wins over the legacy
        # percentage when set; both resolve to the same percent knob.
        sparsity = (
            int(round(a.sparsity_ratio * 100))
            if a.sparsity_ratio > 0
            else a.sparsity
        )
        if a.arch == "maeri":
            arch.maeri()
        elif a.arch == "sigma":
            arch.sigma(sparsity)
        elif a.arch == "magma":
            arch.magma(sparsity)
        else:
            arch.tpu(a.ms_rows, a.ms_cols)
        if a.arch != "tpu":
            arch.ms_size = a.ms_size
            arch.dn_bw = a.dn_bw
            arch.rn_bw = a.rn_bw
        config = arch.create_config_file()
        return config, arch.corrections


#: File section holding the named config overlays (``[profile.X]``).
PROFILE_SECTION = "profile"

#: Profile names renderable as bare TOML keys; anything else is quoted.
_BARE_KEY = re.compile(r"^[A-Za-z0-9_-]+$")


def _toml_value(value: Any) -> str:
    """One TOML value literal (the subset the config uses)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, (tuple, list)):
        return "[" + ", ".join(json.dumps(v) for v in value) + "]"
    return json.dumps(value)


def _toml_key(name: str) -> str:
    return name if _BARE_KEY.match(name) else json.dumps(name)


def render_profiles_toml(
    profiles: Mapping[str, Mapping[str, Any]]
) -> str:
    """``[profile.X.section]`` tables that :meth:`SessionConfig.from_file`
    accepts back, so ``repro config show`` snapshots keep their profiles."""
    lines: List[str] = []
    for name, overlay in profiles.items():
        for section, values in overlay.items():
            lines.append(f"[{PROFILE_SECTION}.{_toml_key(name)}.{section}]")
            for key, value in values.items():
                if value is None:
                    lines.append(f"# {key} = (unset)")
                else:
                    lines.append(f"{key} = {_toml_value(value)}")
            lines.append("")
    return "\n".join(lines)


def _split_profiles(
    data: Mapping[str, Any], path: Union[str, os.PathLike, None] = None
) -> Tuple[Dict[str, Any], Dict[str, Dict[str, Any]]]:
    """Separate a raw config-file dict into (base sections, profiles).

    Every profile overlay is validated eagerly (a typo'd key in an
    *unselected* profile still fails loudly), so any profile the file
    offers is known-good by the time a sweep expands over it.
    """
    if not isinstance(data, Mapping):
        raise ConfigError(
            f"config data must be a mapping of sections, got {type(data).__name__}"
        )
    base = {k: v for k, v in data.items() if k != PROFILE_SECTION}
    raw = data.get(PROFILE_SECTION, {})
    if not isinstance(raw, Mapping):
        raise ConfigError(
            f"config section {PROFILE_SECTION!r} must be a table of named "
            f"profiles, got {type(raw).__name__}"
        )
    profiles: Dict[str, Dict[str, Any]] = {}
    for name, overlay in raw.items():
        if not isinstance(overlay, Mapping):
            raise ConfigError(
                f"profile {name!r} must be a table of config sections, "
                f"got {type(overlay).__name__}"
            )
        try:
            SessionConfig().merged_with_dict(overlay)
        except ConfigError as exc:
            where = f" in {path}" if path is not None else ""
            raise ConfigError(f"invalid profile {name!r}{where}: {exc}") from None
        profiles[name] = {
            section: dict(values) for section, values in overlay.items()
        }
    return base, profiles


def _lookup_profile(
    profiles: Mapping[str, Dict[str, Any]],
    name: str,
    path: Union[str, os.PathLike, None] = None,
) -> Dict[str, Any]:
    if name not in profiles:
        where = f"config file {path}" if path is not None else "config data"
        known = ", ".join(sorted(profiles)) or "(none)"
        raise ConfigError(
            f"{where} defines no profile {name!r}; available profiles: {known}"
        )
    return profiles[name]


def load_profiles(
    path: Union[str, os.PathLike]
) -> Dict[str, Dict[str, Any]]:
    """The validated ``[profile.X]`` overlays of a config file.

    Returns ``{name: nested section dict}`` in declaration order —
    the shape :meth:`SessionConfig.merged_with_dict` accepts and
    sweep matrices expand over.  Files without profiles return ``{}``.
    """
    _, profiles = _split_profiles(_load_config_file(path), path)
    return profiles


def _load_config_file(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Parse a config file: ``.json`` as JSON, anything else as TOML."""
    p = Path(path)
    if not p.exists():
        raise ConfigError(f"config file not found: {p}")
    if p.suffix.lower() == ".json":
        try:
            return json.loads(p.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise ConfigError(f"invalid JSON in config file {p}: {exc}") from None
    import tomllib

    try:
        with open(p, "rb") as handle:
            return tomllib.load(handle)
    except tomllib.TOMLDecodeError as exc:
        raise ConfigError(f"invalid TOML in config file {p}: {exc}") from None


def env_overrides(
    environ: Optional[Mapping[str, str]] = None
) -> Dict[str, Any]:
    """The flat overrides present in the environment (coerced)."""
    source = os.environ if environ is None else environ
    overrides: Dict[str, Any] = {}
    for spec in field_specs():
        raw = source.get(spec.env)
        if raw is None or raw == "":
            continue
        overrides[spec.key] = _coerce(spec.key, spec.kind, raw)
    return overrides


# ----------------------------------------------------------------------
# CLI derivation
# ----------------------------------------------------------------------
def add_config_arguments(parser) -> None:
    """Add every config knob (plus ``--config``) to an argparse parser.

    Flags are derived from the field metadata, so the CLI surface is a
    projection of :class:`SessionConfig` — there is no second list of
    flags to keep in sync.  Defaults are ``argparse.SUPPRESS`` so only
    flags the user actually passed enter the CLI layer (which is what
    lets file/env values show through unless overridden).
    """
    import argparse

    parser.add_argument(
        "--config", metavar="PATH", default=None,
        help="layered config file (TOML, or .json); flags given on the "
             "command line override it, which overrides REPRO_* "
             "environment variables")
    parser.add_argument(
        "--profile", metavar="NAME", default=None,
        help="named [profile.NAME] overlay from the --config file, "
             "merged over its base sections (env and flags still win)")
    for spec in field_specs():
        if not spec.cli:
            continue
        kwargs: Dict[str, Any] = {
            "dest": spec.key,
            "default": argparse.SUPPRESS,
            "help": spec.help + f" [env: {spec.env}]",
        }
        if spec.kind == "bool":
            kwargs["action"] = "store_true"
        else:
            if spec.kind in ("int", "optint"):
                kwargs["type"] = int
            elif spec.kind == "float":
                kwargs["type"] = float
            choices = spec.resolved_choices()
            if choices:
                kwargs["choices"] = choices
            if spec.metavar:
                kwargs["metavar"] = spec.metavar
        parser.add_argument(spec.flag, **kwargs)


def cli_overrides(args) -> Dict[str, Any]:
    """The flat CLI layer: every config flag the user explicitly passed."""
    return {
        key: getattr(args, key)
        for key in _SPECS_BY_KEY
        if hasattr(args, key)
    }


def config_from_args(args) -> SessionConfig:
    """The fully-resolved config for a parsed CLI namespace."""
    return SessionConfig.resolve(
        file=getattr(args, "config", None),
        profile=getattr(args, "profile", None),
        cli=cli_overrides(args),
    )
