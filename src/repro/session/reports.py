"""Structured results returned by :class:`repro.session.Session`.

Every report is a plain dataclass with ``to_dict``/``from_dict`` and
``to_json``/``from_json``, so runs can be archived, diffed, and shipped
between machines.  Numpy outputs (when a run produces tensors) are kept
on the in-memory object but excluded from the JSON form — reports
serialize *measurements*, not activations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.stonne.stats import SimulationStats, combine_stats


@dataclass
class RunReport:
    """One model run: per-layer statistics plus engine bookkeeping.

    Attributes:
        model: Zoo model name, or None for ad-hoc graphs.
        architecture: Controller type that executed the run.
        layer_stats: One :class:`~repro.stonne.stats.SimulationStats`
            per offloaded layer, in execution order.
        counters: Bookkeeping for this run.  Sweep-built reports (which
            includes ``Session.run("<zoo model>")``) carry the
            *scenario-scoped* plan counters (evaluations, plan-time
            cache hits, unique misses, executor); graph runs carry the
            engine's cumulative snapshot.
        metrics: Observability section (``--metrics``): per-tier cache
            hit rates, simulations/sec, scheduler latency histogram —
            see :mod:`repro.obs`.  Empty unless metrics were enabled;
            omitted from the JSON form when empty, so archives from
            metrics-less runs are byte-stable.
        outputs: Model output tensors (graph runs only; not serialized).
    """

    model: Optional[str]
    architecture: str
    layer_stats: List[SimulationStats]
    counters: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    outputs: Optional[List[Any]] = field(default=None, repr=False, compare=False)

    @property
    def output(self):
        """First output tensor (graph runs)."""
        if not self.outputs:
            raise ValueError("this report has no output tensors")
        return self.outputs[0]

    @property
    def total_cycles(self) -> int:
        return sum(s.cycles for s in self.layer_stats)

    @property
    def total_psums(self) -> int:
        return sum(s.psums for s in self.layer_stats)

    def combined(self, name: str = "model") -> SimulationStats:
        return combine_stats(name, self.layer_stats)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "kind": "run",
            "model": self.model,
            "architecture": self.architecture,
            "layer_stats": [s.to_dict() for s in self.layer_stats],
            "counters": dict(self.counters),
            "total_cycles": self.total_cycles,
            "total_psums": self.total_psums,
        }
        if self.metrics:
            data["metrics"] = dict(self.metrics)
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunReport":
        return cls(
            model=data.get("model"),
            architecture=data.get("architecture", ""),
            layer_stats=[
                SimulationStats.from_dict(s) for s in data.get("layer_stats", [])
            ],
            counters=dict(data.get("counters", {})),
            metrics=dict(data.get("metrics", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))


@dataclass
class TuneReport:
    """One mapping-tuning run for a single layer.

    ``records`` (the full per-trial history) stays on the in-memory
    object for ``--log`` dumps; the JSON form carries the outcome.
    """

    model: Optional[str]
    layer: str
    objective: str
    tuner: str
    seed: int
    best_mapping: Tuple[int, ...]
    best_cost: float
    num_trials: int
    stopped_early: bool
    records: Optional[Any] = field(default=None, repr=False, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "tune",
            "model": self.model,
            "layer": self.layer,
            "objective": self.objective,
            "tuner": self.tuner,
            "seed": self.seed,
            "best_mapping": list(self.best_mapping),
            "best_cost": self.best_cost,
            "num_trials": self.num_trials,
            "stopped_early": self.stopped_early,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TuneReport":
        return cls(
            model=data.get("model"),
            layer=data["layer"],
            objective=data["objective"],
            tuner=data["tuner"],
            seed=data.get("seed", 0),
            best_mapping=tuple(data["best_mapping"]),
            best_cost=data["best_cost"],
            num_trials=data["num_trials"],
            stopped_early=data.get("stopped_early", False),
        )

    @classmethod
    def from_json(cls, text: str) -> "TuneReport":
        return cls.from_dict(json.loads(text))


@dataclass
class CompareReport:
    """Per-layer cycle counts under several mapping schemes (Figure 12).

    ``rows`` maps layer name -> {scheme: cycles}, in layer order.
    """

    model: str
    schemes: Tuple[str, ...]
    rows: List[Dict[str, Any]]  # [{"layer": name, "cycles": {scheme: int}}]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "compare",
            "model": self.model,
            "schemes": list(self.schemes),
            "rows": [dict(row) for row in self.rows],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CompareReport":
        return cls(
            model=data["model"],
            schemes=tuple(data["schemes"]),
            rows=[dict(row) for row in data["rows"]],
        )

    @classmethod
    def from_json(cls, text: str) -> "CompareReport":
        return cls.from_dict(json.loads(text))


def report_from_dict(data: Dict[str, Any]):
    """Rebuild any single-scenario report from its ``to_dict`` form.

    Dispatches on the ``kind`` tag every report serializes
    (``run``/``tune``/``compare``); sweep reports nest these per
    scenario, so :class:`repro.sweep.SweepReport` round-trips through
    this dispatcher too.
    """
    kinds = {
        "run": RunReport,
        "tune": TuneReport,
        "compare": CompareReport,
    }
    kind = data.get("kind", "run")
    if kind not in kinds:
        raise ValueError(
            f"unknown report kind {kind!r}; expected one of {sorted(kinds)}"
        )
    return kinds[kind].from_dict(data)
