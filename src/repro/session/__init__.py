"""repro.session — the unified public API of the measurement stack.

One typed config, one lifecycle facade::

    from repro.session import Session, SessionConfig

    with Session.from_file("repro.toml") as s:
        report = s.run("alexnet")
        print(report.total_cycles, report.to_json())

:class:`SessionConfig` is a frozen dataclass with six sections
(architecture, engine, cache, fleet, tuning, observability) and
layered construction —
``from_file`` (TOML/JSON), ``from_env`` (``REPRO_*``), ``from_dict``,
explicit kwargs — merged with the documented precedence
``CLI > kwargs > env > file > defaults``.  The CLI's flags are derived
from its field metadata (:func:`add_config_arguments`), so the flag
surface and the config object cannot drift apart.

:class:`Session` owns every resource (evaluation engine, cache tiers,
fleet client, packed-func registration), exposes ``run`` / ``run_graph``
/ ``tune`` / ``compare`` returning structured
:class:`RunReport` / :class:`TuneReport` / :class:`CompareReport`
objects with ``to_json``/``from_json``, and guarantees deterministic
teardown via ``close()`` / the context-manager protocol.

The legacy entry points (``make_session``, ``run_layers`` with
``executor=``, ``StonneBifrostApi(executor=...)``) keep working as
deprecation shims that forward here.
"""

from repro.session.config import (
    ARCHITECTURES,
    ArchitectureConfig,
    CacheConfig,
    EngineConfig,
    FieldSpec,
    FleetConfig,
    ObservabilityConfig,
    SessionConfig,
    TuningConfig,
    add_config_arguments,
    cli_overrides,
    config_from_args,
    env_overrides,
    field_specs,
    known_keys,
    load_profiles,
    render_profiles_toml,
)
from repro.session.reports import CompareReport, RunReport, TuneReport
from repro.session.session import Session, ZOO_MODELS, zoo_layers

__all__ = [
    "ARCHITECTURES",
    "ZOO_MODELS",
    "ArchitectureConfig",
    "CacheConfig",
    "CompareReport",
    "EngineConfig",
    "FieldSpec",
    "FleetConfig",
    "ObservabilityConfig",
    "RunReport",
    "Session",
    "SessionConfig",
    "TuneReport",
    "TuningConfig",
    "add_config_arguments",
    "cli_overrides",
    "config_from_args",
    "env_overrides",
    "field_specs",
    "known_keys",
    "load_profiles",
    "render_profiles_toml",
    "zoo_layers",
]
