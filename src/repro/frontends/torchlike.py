"""Torch-like frontend: imports a PyTorch-style module tree.

PyTorch itself is unavailable offline, so this frontend consumes a
faithful miniature of ``torch.nn``: module classes with the same names,
constructor arguments and parameter conventions (``Conv2d`` weights are
KCRS, ``Linear`` weights are ``(out, in)``), composed with
``Sequential``.  Parsing walks the module tree exactly the way TVM's
PyTorch importer walks a traced module, emitting IR nodes and capturing
parameters as graph constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import FrontendError
from repro.ir.graph import Graph
from repro.ir.tensor_type import TensorType


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    return (int(value[0]), int(value[1]))


class Module:
    """Base class of the torch-like module mini-framework."""

    def children(self) -> List["Module"]:
        return []


@dataclass
class Conv2d(Module):
    """``torch.nn.Conv2d`` twin (NCHW / KCRS)."""

    in_channels: int
    out_channels: int
    kernel_size: object
    stride: object = 1
    padding: object = 0
    groups: int = 1
    bias: bool = True
    weight: Optional[np.ndarray] = None
    bias_value: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        k = _pair(self.kernel_size)
        if self.weight is None:
            rng = np.random.default_rng(self.in_channels * 31 + self.out_channels)
            self.weight = rng.normal(
                0, 0.05, (self.out_channels, self.in_channels // self.groups, *k)
            )
        if self.bias and self.bias_value is None:
            self.bias_value = np.zeros(self.out_channels)


@dataclass
class Linear(Module):
    """``torch.nn.Linear`` twin (weight shape ``(out, in)``)."""

    in_features: int
    out_features: int
    bias: bool = True
    weight: Optional[np.ndarray] = None
    bias_value: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.weight is None:
            rng = np.random.default_rng(self.in_features * 17 + self.out_features)
            self.weight = rng.normal(0, 0.05, (self.out_features, self.in_features))
        if self.bias and self.bias_value is None:
            self.bias_value = np.zeros(self.out_features)


@dataclass
class ReLU(Module):
    inplace: bool = False


@dataclass
class Dropout(Module):
    p: float = 0.5


@dataclass
class Softmax(Module):
    dim: int = -1


@dataclass
class MaxPool2d(Module):
    kernel_size: object = 2
    stride: Optional[object] = None
    padding: object = 0


@dataclass
class AvgPool2d(Module):
    kernel_size: object = 2
    stride: Optional[object] = None
    padding: object = 0


@dataclass
class AdaptiveAvgPool2d(Module):
    output_size: object = (1, 1)


@dataclass
class Flatten(Module):
    start_dim: int = 1


@dataclass
class LocalResponseNorm(Module):
    size: int = 5
    alpha: float = 1e-4
    beta: float = 0.75
    k: float = 2.0


class Sequential(Module):
    """``torch.nn.Sequential`` twin."""

    def __init__(self, *modules: Module) -> None:
        self._modules = list(modules)

    def children(self) -> List[Module]:
        return list(self._modules)


def _flatten_modules(module: Module) -> List[Module]:
    children = module.children()
    if not children:
        return [module]
    flat: List[Module] = []
    for child in children:
        flat.extend(_flatten_modules(child))
    return flat


def from_torchlike(
    model: Module, input_shape: Tuple[int, ...], name: str = "torch_model"
) -> Graph:
    """Import a torch-like module tree into a finalized IR graph."""
    graph = Graph(name)
    current = graph.add_input("data", TensorType(tuple(input_shape)))
    index = 0
    for module in _flatten_modules(model):
        index += 1
        if isinstance(module, Conv2d):
            layer = f"conv{index}"
            weight = graph.add_const(f"{layer}.weight", module.weight)
            current = graph.add_op(
                "conv2d",
                [current, weight],
                attrs={
                    "strides": _pair(module.stride),
                    "padding": _pair(module.padding),
                    "dilation": (1, 1),
                    "groups": module.groups,
                    "data_layout": "NCHW",
                    "kernel_layout": "KCRS",
                },
                name=layer,
            )
            if module.bias:
                bias = graph.add_const(f"{layer}.bias", module.bias_value)
                current = graph.add_op(
                    "bias_add", [current, bias], attrs={"axis": 1},
                    name=f"{layer}.bias_add",
                )
        elif isinstance(module, Linear):
            layer = f"fc{index}"
            weight = graph.add_const(f"{layer}.weight", module.weight)
            current = graph.add_op("dense", [current, weight], name=layer)
            if module.bias:
                bias = graph.add_const(f"{layer}.bias", module.bias_value)
                current = graph.add_op(
                    "bias_add", [current, bias], attrs={"axis": -1},
                    name=f"{layer}.bias_add",
                )
        elif isinstance(module, ReLU):
            current = graph.add_op("relu", [current], name=f"relu{index}")
        elif isinstance(module, Dropout):
            current = graph.add_op("dropout", [current], name=f"dropout{index}")
        elif isinstance(module, Softmax):
            current = graph.add_op(
                "softmax", [current], attrs={"axis": module.dim},
                name=f"softmax{index}",
            )
        elif isinstance(module, MaxPool2d):
            stride = module.stride if module.stride is not None else module.kernel_size
            current = graph.add_op(
                "max_pool2d",
                [current],
                attrs={
                    "pool_size": _pair(module.kernel_size),
                    "strides": _pair(stride),
                    "padding": _pair(module.padding),
                },
                name=f"maxpool{index}",
            )
        elif isinstance(module, AvgPool2d):
            stride = module.stride if module.stride is not None else module.kernel_size
            current = graph.add_op(
                "avg_pool2d",
                [current],
                attrs={
                    "pool_size": _pair(module.kernel_size),
                    "strides": _pair(stride),
                    "padding": _pair(module.padding),
                },
                name=f"avgpool{index}",
            )
        elif isinstance(module, AdaptiveAvgPool2d):
            current = graph.add_op(
                "adaptive_avg_pool2d",
                [current],
                attrs={"output_size": _pair(module.output_size)},
                name=f"adaptivepool{index}",
            )
        elif isinstance(module, Flatten):
            if module.start_dim != 1:
                raise FrontendError(
                    f"Flatten(start_dim={module.start_dim}) unsupported; only 1"
                )
            current = graph.add_op("flatten", [current], name=f"flatten{index}")
        elif isinstance(module, LocalResponseNorm):
            current = graph.add_op(
                "lrn",
                [current],
                attrs={
                    "size": module.size,
                    "alpha": module.alpha,
                    "beta": module.beta,
                    "k": module.k,
                },
                name=f"lrn{index}",
            )
        else:
            raise FrontendError(
                f"unsupported torch-like module: {type(module).__name__}"
            )
    graph.set_outputs([current])
    return graph.finalize()
