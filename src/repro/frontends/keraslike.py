"""Keras-like frontend: imports a ``model.get_config()``-style dict.

The schema mirrors what ``tf.keras.Sequential.get_config()`` produces:
``{"class_name": "Sequential", "config": {"layers": [...]}}`` with layer
entries like ``{"class_name": "Conv2D", "config": {...}}``.  Keras is
channels-last (NHWC); the importer converts to the IR's NCHW internally —
the same layout bridging TVM's Keras frontend performs — so imported
models compose with the NCHW operator inventory and the NHWC path of the
STONNE-Bifrost API can be tested against it.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import FrontendError
from repro.ir.builder import GraphBuilder
from repro.ir.graph import Graph


def _pair(value, name: str) -> Tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    pair = tuple(int(v) for v in value)
    if len(pair) != 2:
        raise FrontendError(f"{name} must be an int or pair, got {value!r}")
    return pair


def _padding_for(cfg: Dict, kernel: Tuple[int, int]) -> Tuple[int, int]:
    mode = cfg.get("padding", "valid")
    if mode == "valid":
        return (0, 0)
    if mode == "same":
        if kernel[0] % 2 == 0 or kernel[1] % 2 == 0:
            raise FrontendError(
                f"'same' padding needs odd kernels, got {kernel}"
            )
        return (kernel[0] // 2, kernel[1] // 2)
    raise FrontendError(f"unsupported Keras padding mode {mode!r}")


def from_keraslike(model: Dict) -> Graph:
    """Import a Keras-like Sequential config into a finalized IR graph."""
    if model.get("class_name") != "Sequential":
        raise FrontendError(
            f"only Sequential models supported, got {model.get('class_name')!r}"
        )
    layers = model.get("config", {}).get("layers", [])
    if not layers:
        raise FrontendError("keras-like model has no layers")

    first_cfg = layers[0].get("config", {})
    shape = first_cfg.get("batch_input_shape")
    if shape is None:
        raise FrontendError("first layer must declare batch_input_shape")
    if len(shape) == 4:
        n, h, w, c = (1 if shape[0] is None else int(shape[0]),
                      int(shape[1]), int(shape[2]), int(shape[3]))
        input_shape: Tuple[int, ...] = (n, c, h, w)  # NHWC -> NCHW
    elif len(shape) == 2:
        input_shape = (1 if shape[0] is None else int(shape[0]), int(shape[1]))
    else:
        raise FrontendError(f"unsupported batch_input_shape {shape!r}")

    builder = GraphBuilder(
        model.get("config", {}).get("name", "keras_model"), input_shape
    )

    def maybe_activation(cfg: Dict) -> None:
        activation = cfg.get("activation", "linear")
        if activation in ("linear", None):
            return
        if activation == "relu":
            builder.relu()
        elif activation == "softmax":
            builder.softmax()
        else:
            raise FrontendError(f"unsupported Keras activation {activation!r}")

    for entry in layers:
        class_name = entry.get("class_name")
        cfg = entry.get("config", {})
        if class_name == "Conv2D":
            kernel = _pair(cfg.get("kernel_size", 3), "kernel_size")
            builder.conv2d(
                channels=int(cfg["filters"]),
                kernel_size=kernel,
                strides=_pair(cfg.get("strides", 1), "strides"),
                padding=_padding_for(cfg, kernel),
                bias=bool(cfg.get("use_bias", True)),
                name=cfg.get("name"),
            )
            maybe_activation(cfg)
        elif class_name == "Dense":
            builder.dense(
                units=int(cfg["units"]),
                bias=bool(cfg.get("use_bias", True)),
                name=cfg.get("name"),
            )
            maybe_activation(cfg)
        elif class_name == "MaxPooling2D":
            pool = _pair(cfg.get("pool_size", 2), "pool_size")
            builder.max_pool2d(
                pool_size=pool,
                strides=_pair(cfg.get("strides", pool), "strides"),
            )
        elif class_name == "AveragePooling2D":
            pool = _pair(cfg.get("pool_size", 2), "pool_size")
            builder.avg_pool2d(
                pool_size=pool,
                strides=_pair(cfg.get("strides", pool), "strides"),
            )
        elif class_name == "GlobalAveragePooling2D":
            builder.adaptive_avg_pool2d((1, 1)).flatten()
        elif class_name == "Flatten":
            builder.flatten()
        elif class_name == "Dropout":
            builder.dropout()
        elif class_name == "ReLU":
            builder.relu()
        elif class_name == "Softmax":
            builder.softmax()
        elif class_name == "BatchNormalization":
            builder.batch_norm(name=cfg.get("name"))
        elif class_name == "InputLayer":
            continue
        else:
            raise FrontendError(f"unsupported Keras layer {class_name!r}")
    return builder.build()
