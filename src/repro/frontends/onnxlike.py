"""ONNX-like frontend: imports a node/initializer protobuf-style graph.

The schema mirrors what ``onnx.ModelProto`` serializes to: a graph with
``input`` value infos, ``initializer`` tensors and a list of ``node``
entries, each with ``op_type``, named inputs/outputs and attributes.
Unlike the sequential frontends this one resolves arbitrary DAG wiring by
name, exercising the same importer machinery TVM's ONNX frontend uses.

Supported op_types: Conv, Gemm, Relu, MaxPool, AveragePool,
GlobalAveragePool, Flatten, Softmax, Dropout, Add, LRN.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import FrontendError
from repro.ir.graph import Graph
from repro.ir.tensor_type import TensorType


def _attr(node: Dict, name: str, default=None):
    return node.get("attributes", {}).get(name, default)


def _pair_attr(node: Dict, name: str, default) -> tuple:
    value = _attr(node, name, default)
    if isinstance(value, int):
        return (value, value)
    pair = tuple(int(v) for v in value)
    if len(pair) == 4:  # ONNX pads: [top, left, bottom, right]
        if pair[0] != pair[2] or pair[1] != pair[3]:
            raise FrontendError(f"asymmetric {name} unsupported: {value}")
        return (pair[0], pair[1])
    if len(pair) != 2:
        raise FrontendError(f"attribute {name} must have 2 values, got {value}")
    return pair


def from_onnxlike(model: Dict) -> Graph:
    """Import an ONNX-like model dict into a finalized IR graph."""
    try:
        onnx_graph = model["graph"]
        graph_inputs = onnx_graph["input"]
        nodes = onnx_graph["node"]
    except (KeyError, TypeError):
        raise FrontendError(
            "onnx-like model must have graph.input and graph.node"
        ) from None

    graph = Graph(model.get("name", onnx_graph.get("name", "onnx_model")))
    env: Dict[str, int] = {}

    for value_info in graph_inputs:
        name = value_info["name"]
        shape = tuple(int(d) for d in value_info["shape"])
        env[name] = graph.add_input(name, TensorType(shape))

    for init in onnx_graph.get("initializer", []):
        name = init["name"]
        value = np.asarray(init["data"], dtype=np.float64).reshape(
            tuple(int(d) for d in init["shape"])
        )
        env[name] = graph.add_const(name, value)

    def resolve(names: List[str]) -> List[int]:
        refs = []
        for name in names:
            if name not in env:
                raise FrontendError(f"node input {name!r} is not defined yet")
            refs.append(env[name])
        return refs

    for node in nodes:
        op_type = node.get("op_type")
        inputs = node.get("input", [])
        outputs = node.get("output", [])
        if not outputs:
            raise FrontendError(f"node {node!r} has no outputs")
        out_name = outputs[0]
        node_name = node.get("name", out_name)

        if op_type == "Conv":
            data, weight = resolve(inputs[:2])
            conv = graph.add_op(
                "conv2d",
                [data, weight],
                attrs={
                    "strides": _pair_attr(node, "strides", 1),
                    "padding": _pair_attr(node, "pads", 0),
                    "dilation": _pair_attr(node, "dilations", 1),
                    "groups": int(_attr(node, "group", 1)),
                    "data_layout": "NCHW",
                    "kernel_layout": "KCRS",
                },
                name=node_name,
            )
            if len(inputs) > 2:
                (bias,) = resolve(inputs[2:3])
                conv = graph.add_op(
                    "bias_add", [conv, bias], attrs={"axis": 1},
                    name=f"{node_name}.bias",
                )
            env[out_name] = conv
        elif op_type == "Gemm":
            if _attr(node, "transB", 1) != 1 or _attr(node, "transA", 0) != 0:
                raise FrontendError("Gemm only supported with transA=0, transB=1")
            data, weight = resolve(inputs[:2])
            gemm = graph.add_op("dense", [data, weight], name=node_name)
            if len(inputs) > 2:
                (bias,) = resolve(inputs[2:3])
                gemm = graph.add_op(
                    "bias_add", [gemm, bias], attrs={"axis": -1},
                    name=f"{node_name}.bias",
                )
            env[out_name] = gemm
        elif op_type == "Relu":
            env[out_name] = graph.add_op("relu", resolve(inputs[:1]), name=node_name)
        elif op_type == "Softmax":
            env[out_name] = graph.add_op(
                "softmax", resolve(inputs[:1]),
                attrs={"axis": int(_attr(node, "axis", -1))}, name=node_name,
            )
        elif op_type == "Dropout":
            env[out_name] = graph.add_op(
                "dropout", resolve(inputs[:1]), name=node_name
            )
        elif op_type in ("MaxPool", "AveragePool"):
            op_name = "max_pool2d" if op_type == "MaxPool" else "avg_pool2d"
            env[out_name] = graph.add_op(
                op_name,
                resolve(inputs[:1]),
                attrs={
                    "pool_size": _pair_attr(node, "kernel_shape", 2),
                    "strides": _pair_attr(node, "strides", 2),
                    "padding": _pair_attr(node, "pads", 0),
                },
                name=node_name,
            )
        elif op_type == "GlobalAveragePool":
            env[out_name] = graph.add_op(
                "adaptive_avg_pool2d",
                resolve(inputs[:1]),
                attrs={"output_size": (1, 1)},
                name=node_name,
            )
        elif op_type == "Flatten":
            env[out_name] = graph.add_op(
                "flatten", resolve(inputs[:1]), name=node_name
            )
        elif op_type == "Add":
            env[out_name] = graph.add_op("add", resolve(inputs[:2]), name=node_name)
        elif op_type == "LRN":
            env[out_name] = graph.add_op(
                "lrn",
                resolve(inputs[:1]),
                attrs={
                    "size": int(_attr(node, "size", 5)),
                    "alpha": float(_attr(node, "alpha", 1e-4)),
                    "beta": float(_attr(node, "beta", 0.75)),
                    "k": float(_attr(node, "bias", 2.0)),
                },
                name=node_name,
            )
        else:
            raise FrontendError(f"unsupported ONNX op_type {op_type!r}")

    declared_outputs = onnx_graph.get("output")
    if declared_outputs:
        graph.set_outputs(resolve([o["name"] for o in declared_outputs]))
    else:
        graph.set_outputs([env[nodes[-1]["output"][0]]])
    return graph.finalize()
