"""Native frontend: a declarative layer-list model format.

The simplest way to hand a model to Bifrost — a list of layer dicts::

    spec = {
        "name": "tiny",
        "input_shape": [1, 3, 32, 32],
        "layers": [
            {"op": "conv2d", "channels": 8, "kernel_size": [3, 3]},
            {"op": "relu"},
            {"op": "flatten"},
            {"op": "dense", "units": 10},
        ],
    }
    graph = from_native(spec)

Weights are generated deterministically unless the layer provides
explicit ``weight``/``bias`` arrays.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import FrontendError
from repro.ir.builder import GraphBuilder
from repro.ir.graph import Graph


def _pair(value, name: str) -> tuple:
    if isinstance(value, int):
        return (value, value)
    pair = tuple(int(v) for v in value)
    if len(pair) != 2:
        raise FrontendError(f"{name} must be an int or a pair, got {value!r}")
    return pair


def from_native(spec: Dict) -> Graph:
    """Parse a native layer-list spec into a finalized graph."""
    if "input_shape" not in spec:
        raise FrontendError("native spec needs an 'input_shape'")
    layers = spec.get("layers")
    if not layers:
        raise FrontendError("native spec needs a non-empty 'layers' list")
    builder = GraphBuilder(
        spec.get("name", "native_model"), tuple(spec["input_shape"])
    )
    for index, layer in enumerate(layers):
        if "op" not in layer:
            raise FrontendError(f"layer {index} has no 'op' field: {layer!r}")
        op = layer["op"]
        if op == "conv2d":
            builder.conv2d(
                channels=int(layer["channels"]),
                kernel_size=_pair(layer.get("kernel_size", 3), "kernel_size"),
                strides=_pair(layer.get("strides", 1), "strides"),
                padding=_pair(layer.get("padding", 0), "padding"),
                groups=int(layer.get("groups", 1)),
                bias=bool(layer.get("bias", True)),
                name=layer.get("name"),
            )
        elif op == "dense":
            builder.dense(
                units=int(layer["units"]),
                bias=bool(layer.get("bias", True)),
                name=layer.get("name"),
            )
        elif op == "relu":
            builder.relu()
        elif op == "softmax":
            builder.softmax()
        elif op == "dropout":
            builder.dropout()
        elif op == "lrn":
            builder.lrn(
                size=int(layer.get("size", 5)),
                alpha=float(layer.get("alpha", 1e-4)),
                beta=float(layer.get("beta", 0.75)),
                k=float(layer.get("k", 2.0)),
            )
        elif op == "batch_norm":
            builder.batch_norm(name=layer.get("name"))
        elif op == "max_pool2d":
            builder.max_pool2d(
                pool_size=_pair(layer.get("pool_size", 2), "pool_size"),
                strides=_pair(layer.get("strides", 2), "strides"),
                padding=_pair(layer.get("padding", 0), "padding"),
            )
        elif op == "avg_pool2d":
            builder.avg_pool2d(
                pool_size=_pair(layer.get("pool_size", 2), "pool_size"),
                strides=_pair(layer.get("strides", 2), "strides"),
                padding=_pair(layer.get("padding", 0), "padding"),
            )
        elif op == "adaptive_avg_pool2d":
            builder.adaptive_avg_pool2d(
                output_size=_pair(layer["output_size"], "output_size")
            )
        elif op == "flatten":
            builder.flatten()
        else:
            raise FrontendError(f"layer {index}: unsupported op {op!r}")

        # Optional explicit parameters override the generated ones.
        if "weight" in layer or "bias_value" in layer:
            _override_params(builder.graph, layer)
    return builder.build()


def _override_params(graph: Graph, layer: Dict) -> None:
    """Replace the most recently created weight/bias constants."""
    const_ids = sorted(graph.params)
    if "weight" in layer:
        weight = np.asarray(layer["weight"], dtype=np.float64)
        target = None
        for node_id in reversed(const_ids):
            if graph.nodes[node_id].name.endswith(".weight"):
                target = node_id
                break
        if target is None:
            raise FrontendError("no weight constant to override")
        if graph.params[target].shape != weight.shape:
            raise FrontendError(
                f"weight override shape {weight.shape} != "
                f"{graph.params[target].shape}"
            )
        graph.params[target] = weight
    if "bias_value" in layer:
        bias = np.asarray(layer["bias_value"], dtype=np.float64)
        target = None
        for node_id in reversed(const_ids):
            if graph.nodes[node_id].name.endswith(".bias"):
                target = node_id
                break
        if target is None:
            raise FrontendError("no bias constant to override")
        if graph.params[target].shape != bias.shape:
            raise FrontendError(
                f"bias override shape {bias.shape} != {graph.params[target].shape}"
            )
        graph.params[target] = bias
