"""Model frontends: import models from multiple framework dialects.

Bifrost's headline usability win over raw STONNE is that "the user
provides a DNN model from any deep learning framework supported by TVM";
these importers reproduce that property for four model-description
dialects (native layer lists, torch-like module trees, ONNX-like graphs,
Keras-like configs), all landing in the same IR.
"""

from repro.frontends.keraslike import from_keraslike
from repro.frontends.native import from_native
from repro.frontends.onnxlike import from_onnxlike
from repro.frontends.torchlike import from_torchlike

__all__ = [
    "from_keraslike",
    "from_native",
    "from_onnxlike",
    "from_torchlike",
]
