"""The shared SQLite stats-cache tier (WAL mode, fleet-safe).

:class:`~repro.engine.cache.PersistentStatsCache` makes measurement
history durable, but its JSONL spill is read once at open: two processes
sharing one file only see each other's records across *runs*.  A fleet
sweeping one design space wants more — when worker A measures a
configuration, worker B should skip it *in the same sweep*.

:class:`SqliteStatsCache` provides that: the in-memory LRU is a private
L1, and every L1 miss falls through to a shared SQLite database opened in
WAL mode (concurrent readers never block the single writer; writers
queue on the file lock with a busy timeout).  Keys are the same
content-addressed tuples as every other tier, serialized to canonical
JSON text; values round-trip through
:meth:`~repro.stonne.stats.SimulationStats.to_dict`.  Records are
deterministic functions of their key, so ``INSERT OR REPLACE`` races
between writers are harmless — both sides write identical bytes.

Select it by extension: :func:`repro.engine.cache.make_stats_cache`
returns this class for ``.sqlite``/``.sqlite3``/``.db`` paths and the
JSONL tier otherwise, which is what the CLI's ``--cache-path`` does.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from pathlib import Path
from typing import Dict, Hashable, Optional, Tuple, Union

from repro.engine.cache import DEFAULT_MAX_ENTRIES, StatsCache, _freeze
from repro.obs.trace import TRACER
from repro.stonne.stats import SimulationStats

#: Seconds a writer waits on a locked database before giving up.
BUSY_TIMEOUT_S = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS stats (
    key         TEXT PRIMARY KEY,
    stats       TEXT NOT NULL,
    accessed_at REAL NOT NULL DEFAULT 0
)
"""

_ACCESS_INDEX = (
    "CREATE INDEX IF NOT EXISTS stats_accessed_at ON stats (accessed_at)"
)


def encode_key(key: Hashable) -> str:
    """Canonical JSON text of a content-addressed cache key.

    Keys are tuples of scalars and nested tuples (see
    :func:`repro.engine.evaluation.evaluation_key`); tuples serialize as
    JSON arrays, deterministically, so the text form is itself
    content-addressed.
    """
    return json.dumps(key, default=str)


def decode_key(text: str) -> Hashable:
    """Invert :func:`encode_key` (JSON arrays frozen back to tuples)."""
    return _freeze(json.loads(text))


class SqliteStatsCache(StatsCache):
    """A :class:`StatsCache` backed by a shared WAL-mode SQLite database.

    The in-memory LRU is a per-process L1; the database is the shared
    tier.  ``get`` consults L1 first and falls through to the database on
    a miss, so inserts from *other* processes become visible mid-sweep
    without any refresh protocol.  ``put`` writes both tiers and commits
    immediately — one simulation result is one durable transaction.

    The shared tier grows without bound by default; ``max_rows`` caps it
    with LRU eviction: with a cap set, every get and put stamps the
    row's ``accessed_at`` column (a shared logical clock), and a put
    that pushes the row count past the cap deletes the least recently
    accessed overflow.  Without a cap, gets stay read-only — stamping
    would turn every shared-tier read into a write transaction for a
    column eviction never consults.  Databases created before the
    column existed are migrated in place on open.

    Args:
        path: The database file; created (with parents) when missing.
        max_entries: L1 LRU bound, as for :class:`StatsCache`.
        max_rows: Row-count cap for the shared database tier; ``None``
            (the default) keeps the historical unbounded behaviour.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_rows: Optional[int] = None,
    ) -> None:
        super().__init__(max_entries=max_entries)
        if max_rows is not None and max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        self.max_rows = max_rows
        # ``hits`` (inherited) stays the total; these split it by tier so
        # a shared-database fallthrough is distinguishable from an L1 hit.
        self.l1_hits = 0
        self.db_hits = 0
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # One connection per cache instance, shared across the engine's
        # worker threads under the cache lock (SQLite serializes anyway;
        # the lock also protects the LRU and the counters).
        self._conn = sqlite3.connect(
            str(self.path), timeout=BUSY_TIMEOUT_S, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(_SCHEMA)
        self._migrate_schema()
        self._conn.execute(_ACCESS_INDEX)
        self._conn.commit()
        self._closed = False

    def _migrate_schema(self) -> None:
        """Add ``accessed_at`` to databases from before eviction existed.

        ``CREATE TABLE IF NOT EXISTS`` never alters an existing table,
        so a pre-eviction file still lacks the column; rows it already
        holds start with access time 0 (oldest, evicted first), which is
        the right prior for records nothing has touched since.
        """
        columns = {
            row[1] for row in self._conn.execute("PRAGMA table_info(stats)")
        }
        if "accessed_at" not in columns:
            self._conn.execute(
                "ALTER TABLE stats ADD COLUMN accessed_at REAL NOT NULL DEFAULT 0"
            )

    # ------------------------------------------------------------------
    def _touch(self, encoded: str) -> None:
        """Refresh a row's LRU stamp (cap-enabled caches only).

        The stamp is a shared logical clock (MAX+1), not wall time: it
        is monotone under concurrent writers and immune to clock skew
        between fleet members.  Uncapped caches skip it entirely so
        reads stay read-only — no writer lock, no WAL growth, and
        read-only database files keep working.
        """
        if self.max_rows is None:
            return
        self._conn.execute(
            "UPDATE stats SET accessed_at = "
            "(SELECT MAX(accessed_at) FROM stats) + 1 WHERE key = ?",
            (encoded,),
        )
        self._conn.commit()

    def get(self, key: Hashable) -> Optional[SimulationStats]:
        """L1 first, then the shared database; a database hit warms L1.

        When a row cap is set, *both* hit paths refresh the shared
        ``accessed_at`` stamp — an L1 hit must still count as fleet-wide
        access, or the hottest keys (absorbed by L1 after first read)
        would look cold to every other process's eviction.
        """
        with self._lock:
            record = self._records.get(key)
            if record is not None:
                self._records.move_to_end(key)
                self.hits += 1
                self.l1_hits += 1
                if self.max_rows is not None:  # keep L1 hits encode-free
                    self._touch(encode_key(key))
                return record.clone()
            encoded = encode_key(key)
            row = self._conn.execute(
                "SELECT stats FROM stats WHERE key = ?", (encoded,)
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
            self._touch(encoded)
            stats = SimulationStats.from_dict(json.loads(row[0]))
            self._records[key] = stats
            self._records.move_to_end(key)
            while len(self._records) > self.max_entries:
                self._records.popitem(last=False)
            self.hits += 1
            self.db_hits += 1
            if TRACER.enabled:
                TRACER.instant(
                    "cache.fallthrough", category="cache", tier="sqlite")
            return stats.clone()

    def put(self, key: Hashable, stats: SimulationStats) -> None:
        """Write both tiers; the database commit makes the record visible
        to every other process sharing the file immediately."""
        with self._lock:
            self._records[key] = stats.clone()
            self._records.move_to_end(key)
            while len(self._records) > self.max_entries:
                self._records.popitem(last=False)
            self._conn.execute(
                "INSERT OR REPLACE INTO stats (key, stats, accessed_at) "
                "VALUES (?, ?, (SELECT COALESCE(MAX(accessed_at), 0) + 1 "
                "FROM stats))",
                (encode_key(key), json.dumps(stats.to_dict(), default=str)),
            )
            self._evict_overflow()
            self._conn.commit()

    def _evict_overflow(self) -> None:
        """Delete least-recently-accessed rows past ``max_rows``.

        Called under the lock with a transaction open.  The fresh write
        carries the newest stamp, so it can never evict itself; ties on
        ``accessed_at`` (pre-migration rows at 0) break on ``rowid``,
        oldest insert first.
        """
        if self.max_rows is None:
            return
        count = self._conn.execute("SELECT COUNT(*) FROM stats").fetchone()[0]
        overflow = count - self.max_rows
        if overflow <= 0:
            return
        self._conn.execute(
            "DELETE FROM stats WHERE key IN ("
            "SELECT key FROM stats ORDER BY accessed_at ASC, rowid ASC "
            "LIMIT ?)",
            (overflow,),
        )
        self.evictions += overflow
        if TRACER.enabled:
            TRACER.instant(
                "cache.evict", category="cache",
                tier="sqlite", count=overflow)

    # ------------------------------------------------------------------
    def __contains__(self, key: Hashable) -> bool:
        if key in self._records:
            return True
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM stats WHERE key = ?", (encode_key(key),)
            ).fetchone()
        return row is not None

    def disk_entries(self) -> int:
        """Number of records in the shared database tier."""
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM stats").fetchone()[0]

    def clear(self) -> None:
        """Drop both tiers (affects every process sharing the file)."""
        with self._lock:
            self._records.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.l1_hits = 0
            self.db_hits = 0
            self._conn.execute("DELETE FROM stats")
            self._conn.commit()

    def tier_counters(self) -> "Dict[str, int]":
        """Per-tier accounting: L1 hits vs shared-database fallthrough.

        ``l1_hits + db_hits == hits`` — the inherited total is preserved
        so ``hit_rate`` and every existing consumer keep their meaning.
        """
        return {
            "l1_hits": self.l1_hits,
            "db_hits": self.db_hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def compact(self) -> Tuple[int, int]:
        """Reclaim free pages (VACUUM).  SQLite keys are primary keys, so
        there are no duplicate records to drop — returns (live, 0) for
        symmetry with :meth:`PersistentStatsCache.compact`."""
        with self._lock:
            live = self._conn.execute("SELECT COUNT(*) FROM stats").fetchone()[0]
            self._conn.commit()
            self._conn.execute("VACUUM")
        return live, 0

    def close(self) -> None:
        """Commit and close the database connection (idempotent)."""
        with self._lock:
            if not self._closed:
                self._conn.commit()
                self._conn.close()
                self._closed = True

    def __enter__(self) -> "SqliteStatsCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort close on GC
        try:
            self.close()
        except Exception:
            pass
