"""The content-addressed simulation-stats cache (LRU-bounded) and its
disk-persistent variant.

Keys are produced by :func:`repro.engine.evaluation.evaluation_key`;
values are :class:`~repro.stonne.stats.SimulationStats`.  The cache
stores and returns independent copies, so neither the producer nor any
consumer can mutate a cached record (several controllers rename
``stats.layer_name`` in place, and reports attach energy records).

:class:`PersistentStatsCache` adds an append-only JSONL spill: every new
record is appended to disk as one line, and opening a cache on an
existing file warm-starts it with everything previously measured — so
tuning sessions resume warm across processes and a fleet of workers can
share one measurement history.  The keys are already content-addressed
(config/params digest plus structural layer/mapping tuples of plain
scalars), so they round-trip through JSON exactly: tuples become lists
on the way out and are frozen back into tuples on the way in.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Hashable, Optional, Tuple, Union

from repro.obs.trace import TRACER
from repro.stonne.stats import SimulationStats

#: Default maximum number of cached records.  A record is a few hundred
#: bytes, so the default bound stays in the low tens of megabytes.
DEFAULT_MAX_ENTRIES = 65536


class StatsCache:
    """Thread-safe LRU cache of simulation statistics.

    Args:
        max_entries: LRU bound; the least recently used record is evicted
            once the cache grows past it.  Must be positive.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._records: "OrderedDict[Hashable, SimulationStats]" = OrderedDict()

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[SimulationStats]:
        """The cached stats for ``key`` (an independent copy), or None.

        Counts a hit or a miss and refreshes the entry's LRU position.
        """
        with self._lock:
            record = self._records.get(key)
            if record is None:
                self.misses += 1
                return None
            self._records.move_to_end(key)
            self.hits += 1
            return record.clone()

    def put(self, key: Hashable, stats: SimulationStats) -> None:
        """Store a copy of ``stats`` under ``key``, evicting LRU overflow."""
        with self._lock:
            self._records[key] = stats.clone()
            self._records.move_to_end(key)
            evicted = 0
            while len(self._records) > self.max_entries:
                self._records.popitem(last=False)
                evicted += 1
            if evicted:
                self.evictions += evicted
                if TRACER.enabled:
                    TRACER.instant(
                        "cache.evict", category="cache",
                        tier="memory", count=evicted)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._records

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every record and reset the counters."""
        with self._lock:
            self._records.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def counters(self) -> Tuple[int, int]:
        """(hits, misses) as a snapshot tuple."""
        return self.hits, self.misses

    def tier_counters(self) -> "Dict[str, int]":
        """Per-tier lookup accounting.

        The base in-memory cache has one tier, so every hit is an L1
        hit.  Persistent subclasses extend this with their second tier
        (``db_hits`` for SQLite fallthrough, ``warm_entries`` for the
        JSONL warm start) — the distinction ``hits``/``misses`` alone
        cannot make.
        """
        return {
            "l1_hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


# ----------------------------------------------------------------------
# disk persistence
# ----------------------------------------------------------------------
def _freeze(value):
    """Recursively turn JSON lists back into the tuples they were."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


class PersistentStatsCache(StatsCache):
    """A :class:`StatsCache` with an append-only JSONL spill file.

    Opening a cache on an existing file loads every record it holds
    (warm start); every *new* key stored afterwards is appended as one
    ``{"key": ..., "stats": ...}`` line and flushed, so a crash loses at
    most the line being written — and a truncated or corrupt tail line
    is skipped on the next load rather than poisoning the file.

    Appends are single ``write`` calls on a file opened in append mode,
    so several engine processes may share one path: the kernel serializes
    the appends, and duplicate keys (two processes measuring the same
    thing) are harmless — the last record wins on load, and records are
    deterministic functions of their key anyway.

    The LRU bound applies to the in-memory tier only; the spill file is
    append-only history.  Re-storing a key already on disk does not
    rewrite it (records are content-addressed, so the bytes would be
    identical).

    Args:
        path: The JSONL spill file; created (with parents) when missing.
        max_entries: In-memory LRU bound, as for :class:`StatsCache`.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        super().__init__(max_entries=max_entries)
        self.path = Path(path)
        self.warm_entries = 0
        self._persisted: set = set()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._load()
        self._file = open(self.path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    def _load(self) -> None:
        """Warm-start from the spill file (counters untouched)."""
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = _freeze(record["key"])
                    stats = SimulationStats.from_dict(record["stats"])
                except (ValueError, KeyError, TypeError):
                    continue  # truncated tail or foreign line; skip
                self._records[key] = stats
                self._records.move_to_end(key)
                self._persisted.add(key)
                # The LRU bound applies to memory only; evicted keys stay
                # in _persisted because their lines remain on disk.
                while len(self._records) > self.max_entries:
                    self._records.popitem(last=False)
        self.warm_entries = len(self._records)

    def put(self, key: Hashable, stats: SimulationStats) -> None:
        """Store a copy of ``stats`` and append new keys to the spill."""
        with self._lock:
            self._records[key] = stats.clone()
            self._records.move_to_end(key)
            evicted = 0
            while len(self._records) > self.max_entries:
                self._records.popitem(last=False)
                evicted += 1
            if evicted:
                self.evictions += evicted
                if TRACER.enabled:
                    TRACER.instant(
                        "cache.evict", category="cache",
                        tier="jsonl-l1", count=evicted)
            if key not in self._persisted:
                line = json.dumps(
                    {"key": key, "stats": stats.to_dict()}, default=str
                )
                self._file.write(line + "\n")
                self._file.flush()
                self._persisted.add(key)

    def clear(self) -> None:
        """Drop the in-memory tier and truncate the spill file."""
        with self._lock:
            self._records.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self._persisted.clear()
            self.warm_entries = 0
            self._file.truncate(0)
            self._file.seek(0)

    def tier_counters(self) -> Dict[str, int]:
        """Per-tier accounting; the JSONL spill is read once at open, so
        its contribution is the warm start rather than live fallthrough."""
        counters = super().tier_counters()
        counters["warm_entries"] = self.warm_entries
        return counters

    def compact(self) -> Tuple[int, int]:
        """Rewrite the spill keeping only live, deduplicated records.

        The spill is append-only, so a long-lived fleet cache accretes
        duplicate lines (several processes measuring the same key) and
        corrupt tails from crashes.  Compaction re-reads the file,
        keeps the *last* record per key (records are deterministic, so
        any survivor is correct), rewrites them to a temporary file and
        atomically replaces the spill — a crash mid-compaction leaves
        the original intact.  Safe to call on a live cache: the append
        handle is reopened on the new file.

        Returns:
            ``(kept, dropped)`` line counts.
        """
        with self._lock:
            self._file.flush()
            live: "OrderedDict[str, str]" = OrderedDict()
            total = 0
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    total += 1
                    try:
                        record = json.loads(line)
                        encoded = json.dumps(record["key"], default=str)
                        SimulationStats.from_dict(record["stats"])
                    except (ValueError, KeyError, TypeError):
                        continue  # corrupt line: dropped by compaction
                    # Last write wins; re-append to keep file order stable.
                    live.pop(encoded, None)
                    live[encoded] = line
            tmp_path = self.path.with_name(self.path.name + ".compact.tmp")
            with open(tmp_path, "w", encoding="utf-8") as handle:
                for line in live.values():
                    handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            self._file.close()
            os.replace(tmp_path, self.path)
            self._file = open(self.path, "a", encoding="utf-8")
            self._persisted = {_freeze(json.loads(k)) for k in live}
            return len(live), total - len(live)

    def close(self) -> None:
        """Flush and close the spill file (the cache stays readable)."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "PersistentStatsCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort flush on GC
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# tier dispatch
# ----------------------------------------------------------------------
#: Path suffixes that select the shared SQLite tier.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def make_stats_cache(
    path: Union[str, os.PathLike],
    max_entries: int = DEFAULT_MAX_ENTRIES,
    max_rows: Optional[int] = None,
) -> StatsCache:
    """The persistent cache tier for ``path``, dispatched by extension.

    ``.sqlite``/``.sqlite3``/``.db`` paths get the shared
    :class:`~repro.engine.sqlite_cache.SqliteStatsCache` (WAL mode —
    concurrent processes see each other's inserts mid-sweep); anything
    else gets the append-only JSONL :class:`PersistentStatsCache`
    (warm start across runs).  This is the single rule behind the CLI's
    ``--cache-path`` and the worker daemon's local cache.

    ``max_rows`` bounds the SQLite tier with LRU eviction
    (``--cache-max-rows``); the JSONL spill is append-only history and
    ignores it — bound that tier with ``compact()`` instead.
    """
    suffix = Path(path).suffix.lower()
    if suffix in SQLITE_SUFFIXES:
        from repro.engine.sqlite_cache import SqliteStatsCache

        return SqliteStatsCache(path, max_entries=max_entries, max_rows=max_rows)
    return PersistentStatsCache(path, max_entries=max_entries)
