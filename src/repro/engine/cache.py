"""The content-addressed simulation-stats cache (LRU-bounded).

Keys are produced by :func:`repro.engine.evaluation.evaluation_key`;
values are :class:`~repro.stonne.stats.SimulationStats`.  The cache
stores and returns independent copies, so neither the producer nor any
consumer can mutate a cached record (several controllers rename
``stats.layer_name`` in place, and reports attach energy records).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional, Tuple

from repro.stonne.stats import SimulationStats

#: Default maximum number of cached records.  A record is a few hundred
#: bytes, so the default bound stays in the low tens of megabytes.
DEFAULT_MAX_ENTRIES = 65536


class StatsCache:
    """Thread-safe LRU cache of simulation statistics.

    Args:
        max_entries: LRU bound; the least recently used record is evicted
            once the cache grows past it.  Must be positive.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._records: "OrderedDict[Hashable, SimulationStats]" = OrderedDict()

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[SimulationStats]:
        """The cached stats for ``key`` (an independent copy), or None.

        Counts a hit or a miss and refreshes the entry's LRU position.
        """
        with self._lock:
            record = self._records.get(key)
            if record is None:
                self.misses += 1
                return None
            self._records.move_to_end(key)
            self.hits += 1
            return record.clone()

    def put(self, key: Hashable, stats: SimulationStats) -> None:
        """Store a copy of ``stats`` under ``key``, evicting LRU overflow."""
        with self._lock:
            self._records[key] = stats.clone()
            self._records.move_to_end(key)
            while len(self._records) > self.max_entries:
                self._records.popitem(last=False)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._records

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every record and reset the counters."""
        with self._lock:
            self._records.clear()
            self.hits = 0
            self.misses = 0

    def counters(self) -> Tuple[int, int]:
        """(hits, misses) as a snapshot tuple."""
        return self.hits, self.misses
