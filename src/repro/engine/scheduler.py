"""Pull-based work-queue scheduling across engines, plans and backends.

The executor backends historically received one static stride per worker
and barriered per engine group: a sweep over three hardware configs ran
three fan-outs back to back, and within each fan-out the fastest worker
idled until the slowest finished its pre-assigned chunk.  This module
replaces that with one global queue of ``(engine, chunk)`` items drained
by *pullers* — one per backend slot — so

* engine groups overlap: a slot that finishes config A's chunks
  immediately pulls config B's instead of waiting for the group barrier;
* fast slots steal the tail of slow slots' load: chunks carry a *home*
  slot (the static assignment they would have had) and a pull by any
  other slot counts as a steal;
* stragglers re-split: when an idle slot finds no queued work but a
  chunk has been in flight past ``steal_deadline`` seconds, it clones
  the chunk's still-unfilled items and races the straggler — first
  writer wins per item, so results stay deterministic;
* speculative work rides at low priority: priority-1 chunks (e.g. a GA
  tuner's predicted next generation) are pulled only when no normal
  work is queued, their results warm the cache without touching any
  plan, and whatever is still queued when the normal work completes is
  cancelled.

Determinism: every simulation is a pure function of (config, params,
layer, mapping), so results are bit-identical to ``--executor serial``
no matter which slot runs a chunk or how often a straggler's items are
duplicated — first-writer-wins only ever picks between identical
payloads.  Counters (pulls, steals, re-splits, idle time) are exact
under an injectable clock, which is how the test suite pins them.

Chunk grouping: a chunk is executed by the backend's ``run_chunk``,
which groups the chunk's items by layer (dataclass equality) and makes
one controller batch-kernel call per multi-item group — each chunk
already belongs to exactly one engine, so (engine fingerprint,
structural layer) is the effective grouping key.  Singleton groups run
through the scalar ``simulate_layer`` seam; results are bit-identical
either way (see :func:`repro.engine.backends.simulate_chunk`).

:func:`run_plan_groups` is the entry point: the sweep runner hands it
every engine's plans at once; ``EvaluationEngine.run_plans`` is the
single-group special case.  Backends opt in by returning two or more
slot tokens from ``pull_slots``; everything else (serial, third-party
backends, single-worker pools) keeps the legacy one-batch-per-group
path, bit-for-bit.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACER

#: Seconds a chunk may be in flight before idle slots re-split it.
DEFAULT_STEAL_DEADLINE_S = 5.0

#: Auto chunk sizing: aim for this many chunks per slot per group (load
#: balancing granularity) ...
DEFAULT_CHUNKS_PER_SLOT = 4

#: ... without ever exceeding this many items per chunk (bounds the
#: work lost to a straggler and the latency of a steal).
MAX_CHUNK_ITEMS = 32

#: Seconds an idle puller sleeps between straggler checks.
_IDLE_POLL_S = 0.02

#: Every counter the scheduler reports (and accumulates per backend).
COUNTER_KEYS = (
    "chunks_pulled",
    "steals",
    "resplits",
    "speculative_pulled",
    "speculative_cancelled",
    "speculative_simulations",
    "idle_time_s",
)


def zero_counters() -> Dict[str, Any]:
    """A fresh all-zero scheduler counter dict."""
    return {key: 0.0 if key == "idle_time_s" else 0 for key in COUNTER_KEYS}


class Chunk:
    """One pullable unit: a few work items of one engine group.

    ``slots`` are the items' positions in the group's flattened work
    list; ``home`` is the slot the chunk would have belonged to under
    static fan-out (the steal baseline).  Priority 0 is normal work,
    1 is speculative.  A re-split duplicate records its original in
    ``resplit_of`` so it is never itself re-split.
    """

    __slots__ = (
        "engine",
        "group",
        "slots",
        "items",
        "home",
        "priority",
        "started_at",
        "puller",
        "resplit_of",
        "resplit_issued",
    )

    def __init__(
        self,
        engine,
        group: Optional[int],
        slots: Optional[List[int]],
        items: List[Tuple[Optional[Hashable], Any]],
        home: Optional[int] = None,
        priority: int = 0,
        resplit_of: Optional["Chunk"] = None,
    ) -> None:
        self.engine = engine
        self.group = group
        self.slots = slots
        self.items = items
        self.home = home
        self.priority = priority
        self.started_at: Optional[float] = None
        self.puller = None
        self.resplit_of = resplit_of
        self.resplit_issued = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "spec" if self.priority else "work"
        return (
            f"Chunk({kind}, group={self.group}, items={len(self.items)}, "
            f"home={self.home})"
        )


class WorkQueue:
    """The shared pull queue: priorities, steal accounting, re-splits.

    Thread-safe; all bookkeeping happens under one condition variable.
    ``clock`` is injectable so tests can pin steal/re-split decisions
    (and the idle-time estimate) exactly.  The queue owns the per-group
    result arrays: :meth:`complete` fills them first-writer-wins, which
    is what makes racing re-split duplicates safe.
    """

    def __init__(
        self,
        num_groups: int,
        group_sizes: Sequence[int],
        clock=None,
        steal_deadline: Optional[float] = None,
    ) -> None:
        self._clock = clock if clock is not None else time.monotonic
        self.steal_deadline = (
            steal_deadline
            if steal_deadline is not None
            else DEFAULT_STEAL_DEADLINE_S
        )
        self._cond = threading.Condition()
        self._normal: deque = deque()
        self._spec: deque = deque()
        self._in_flight: Dict[int, Chunk] = {}
        self._filled: List[List[bool]] = [
            [False] * size for size in group_sizes
        ]
        #: Per-group result arrays, filled first-writer-wins.
        self.results: List[List[Optional[Tuple]]] = [
            [None] * size for size in group_sizes
        ]
        #: Completed speculative items, cache-merge only.
        self.spec_results: List[Tuple] = []
        self._pending_slots = sum(group_sizes)
        self.counters = zero_counters()
        assert num_groups == len(group_sizes)

    # ------------------------------------------------------------------
    def add(self, chunk: Chunk) -> None:
        """Enqueue a chunk (normal or speculative by its priority)."""
        with self._cond:
            if chunk.priority == 0:
                self._normal.append(chunk)
            else:
                self._spec.append(chunk)
            self._cond.notify()

    @property
    def done(self) -> bool:
        with self._cond:
            return self._pending_slots == 0

    # ------------------------------------------------------------------
    def pull(self, slot_id) -> Optional[Chunk]:
        """The next chunk for ``slot_id``; None when all work is done.

        Order of preference: queued normal work (counting a steal when
        the chunk's home is another slot), then a re-split of the oldest
        straggler past the deadline, then queued speculative work, then
        wait.  Returns None — cancelling any still-queued speculation —
        once every normal item has a result.
        """
        with self._cond:
            idle_started: Optional[float] = None
            while True:
                chunk = self._next_locked(slot_id)
                if chunk is not _WAIT:
                    if idle_started is not None:
                        self.counters["idle_time_s"] += (
                            self._clock() - idle_started
                        )
                    return chunk
                if idle_started is None:
                    idle_started = self._clock()
                self._cond.wait(timeout=_IDLE_POLL_S)

    def _next_locked(self, slot_id):
        if self._pending_slots == 0:
            # Normal work complete: queued-but-unstarted speculation is
            # cancelled (its losers never run); in-flight speculative
            # chunks finish and still warm the cache.
            if self._spec:
                self.counters["speculative_cancelled"] += len(self._spec)
                self._spec.clear()
            self._cond.notify_all()
            return None
        if self._normal:
            chunk = self._normal.popleft()
            self.counters["chunks_pulled"] += 1
            if chunk.home is not None and chunk.home != slot_id:
                self.counters["steals"] += 1
            return self._start(chunk, slot_id)
        resplit = self._make_resplit(slot_id)
        if resplit is not None:
            return resplit
        if self._spec:
            chunk = self._spec.popleft()
            self.counters["chunks_pulled"] += 1
            self.counters["speculative_pulled"] += 1
            return self._start(chunk, slot_id)
        return _WAIT

    def _start(self, chunk: Chunk, slot_id) -> Chunk:
        chunk.started_at = self._clock()
        chunk.puller = slot_id
        self._in_flight[id(chunk)] = chunk
        return chunk

    def _make_resplit(self, slot_id) -> Optional[Chunk]:
        """Duplicate the oldest over-deadline straggler's unfilled items.

        Each original chunk is re-split at most once, and duplicates are
        never re-split themselves, so duplication is bounded at 2x.
        """
        now = self._clock()
        straggler: Optional[Chunk] = None
        for chunk in self._in_flight.values():
            if (
                chunk.priority != 0
                or chunk.resplit_of is not None
                or chunk.resplit_issued
                or chunk.started_at is None
                or now - chunk.started_at < self.steal_deadline
            ):
                continue
            if straggler is None or chunk.started_at < straggler.started_at:
                straggler = chunk
        if straggler is None:
            return None
        filled = self._filled[straggler.group]
        remaining = [
            index
            for index, position in enumerate(straggler.slots)
            if not filled[position]
        ]
        if not remaining:
            return None
        straggler.resplit_issued = True
        duplicate = Chunk(
            engine=straggler.engine,
            group=straggler.group,
            slots=[straggler.slots[i] for i in remaining],
            items=[straggler.items[i] for i in remaining],
            home=slot_id,
            priority=0,
            resplit_of=straggler,
        )
        self.counters["resplits"] += 1
        self.counters["chunks_pulled"] += 1
        return self._start(duplicate, slot_id)

    # ------------------------------------------------------------------
    def complete(self, chunk: Chunk, results: Sequence[Tuple]) -> None:
        """Record a chunk's results (first writer wins per item)."""
        with self._cond:
            self._in_flight.pop(id(chunk), None)
            if chunk.priority == 0:
                filled = self._filled[chunk.group]
                out = self.results[chunk.group]
                for position, result in zip(chunk.slots, results):
                    if not filled[position]:
                        filled[position] = True
                        out[position] = result
                        self._pending_slots -= 1
            else:
                self.spec_results.extend(results)
            self._cond.notify_all()


class _Wait:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<wait>"


_WAIT = _Wait()


# ----------------------------------------------------------------------
# per-backend cumulative counters (typed, in the metrics registry)
# ----------------------------------------------------------------------
#: Registry namespace the scheduler's counters live under.
SCHEDULER_METRIC_PREFIX = "scheduler."


def backend_metrics(backend) -> Optional[MetricsRegistry]:
    """The backend's metrics registry, attaching one on first use.

    :class:`~repro.engine.backends.ExecutorBackend` exposes a lazily
    created ``metrics`` property; duck-typed third-party backends get a
    registry set as a plain attribute.  Returns None only for
    ``__slots__`` objects that cannot carry one.
    """
    registry = getattr(backend, "metrics", None)
    if isinstance(registry, MetricsRegistry):
        return registry
    registry = MetricsRegistry()
    try:
        backend.metrics = registry
    except AttributeError:
        return None
    return registry


def backend_counters(backend) -> Dict[str, Any]:
    """Cumulative scheduler counters of a backend (zeros if never used).

    The counters are typed :class:`~repro.obs.metrics.Counter`
    instruments under ``scheduler.<key>`` in the backend's registry;
    this is the plain-dict view reports and the CLI print.
    """
    out = zero_counters()
    registry = getattr(backend, "metrics", None)
    if isinstance(registry, MetricsRegistry):
        recorded = registry.counters_with_prefix(SCHEDULER_METRIC_PREFIX)
        for key in COUNTER_KEYS:
            if key in recorded:
                out[key] = recorded[key]
    return out


def _accumulate(backend, report: Dict[str, Any]) -> None:
    registry = backend_metrics(backend)
    if registry is None:  # __slots__ backends cannot carry a registry
        return
    for key in COUNTER_KEYS:
        value = report.get(key, 0)
        if value:
            registry.counter(SCHEDULER_METRIC_PREFIX + key).inc(value)


# ----------------------------------------------------------------------
# chunking
# ----------------------------------------------------------------------
def _auto_chunk_size(work_size: int, num_slots: int) -> int:
    """Items per chunk: ~DEFAULT_CHUNKS_PER_SLOT chunks per slot, capped."""
    target = max(1, -(-work_size // (num_slots * DEFAULT_CHUNKS_PER_SLOT)))
    return min(MAX_CHUNK_ITEMS, target)


def _chunk_group(engine, group: int, work, chunk_size: int) -> List[Chunk]:
    return [
        Chunk(
            engine=engine,
            group=group,
            slots=list(range(start, min(start + chunk_size, len(work)))),
            items=list(work[start : start + chunk_size]),
        )
        for start in range(0, len(work), chunk_size)
    ]


def _interleave(per_group: List[List[Chunk]]) -> List[Chunk]:
    """Round-robin across groups so engine groups overlap from pull #1."""
    out: List[Chunk] = []
    cursors = [0] * len(per_group)
    remaining = sum(len(chunks) for chunks in per_group)
    while remaining:
        for group, chunks in enumerate(per_group):
            cursor = cursors[group]
            if cursor < len(chunks):
                out.append(chunks[cursor])
                cursors[group] = cursor + 1
                remaining -= 1
    return out


# ----------------------------------------------------------------------
# the entry point
# ----------------------------------------------------------------------
def run_plan_groups(
    groups: Sequence[Tuple[Any, Sequence[Any]]],
    max_workers: Optional[int] = None,
    executor=None,
    return_errors: bool = False,
    speculative: Sequence[Any] = (),
    chunk_size: Optional[int] = None,
    steal_deadline: Optional[float] = None,
    clock=None,
) -> Dict[str, Any]:
    """Execute the pending misses of several engines' plans as one queue.

    ``groups`` is ``[(engine, [BatchPlan, ...]), ...]``.  Each group's
    misses are flattened with cross-plan dedup (the engine's own
    :meth:`~repro.engine.EvaluationEngine.run_plans` semantics), then —
    when the shared backend advertises two or more pull slots — chunked
    onto one :class:`WorkQueue` and drained by one puller thread per
    slot.  Otherwise each group runs through the backend's legacy
    ``run`` batch, bit-identically to the pre-scheduler behaviour.

    ``speculative`` is a sequence of extra :class:`EvalRequest` objects
    for the *first* group's engine, enqueued at low priority; their
    results only ever warm that engine's cache.

    Returns the scheduler counter report for this invocation (all-zero
    ``mode: "static"`` when the pull path was not engaged).  Errors obey
    ``return_errors`` exactly like ``run_plans``: every plan is fully
    resolved, then the first per-item error (in group, then submission
    order) is raised.
    """
    from repro.errors import SimulationError

    for engine, plans in groups:
        for plan in plans:
            if plan.engine is not engine:
                raise SimulationError(
                    "run_plan_groups received a BatchPlan built by a "
                    "different engine"
                )

    collected: List[Tuple[Any, Sequence[Any], List, List]] = []
    for engine, plans in groups:
        work, owners = engine._collect_pending(plans)
        collected.append((engine, plans, work, owners))

    report = zero_counters()
    report["mode"] = "static"
    if not collected:
        return report

    lead_engine = collected[0][0]
    backends = {
        id(engine._resolve_backend(executor, max_workers)): engine
        for engine, _plans, _work, _owners in collected
    }
    backend = lead_engine._resolve_backend(executor, max_workers)
    workers = max_workers if max_workers is not None else lead_engine.max_workers
    if chunk_size is None:
        chunk_size = getattr(lead_engine, "chunk_size", None)
    if steal_deadline is None:
        steal_deadline = getattr(lead_engine, "steal_deadline", None)

    total_items = sum(len(work) for _e, _p, work, _o in collected)
    slots: List = []
    if len(backends) == 1 and total_items > 1:
        slots = backend.pull_slots(lead_engine, max_workers=workers)

    if len(slots) > 1:
        report = _run_scheduled(
            collected,
            backend,
            slots,
            speculative=speculative,
            chunk_size=chunk_size,
            steal_deadline=steal_deadline,
            clock=clock,
        )
        report["mode"] = "pull"
        _accumulate(backend, report)
    else:
        # Legacy path: one static backend batch per group.  Serial
        # execution, third-party backends and single-slot pools land
        # here; speculation has no low-priority lane and is skipped.
        for engine, _plans, work, owners in collected:
            if not work:
                continue
            group_backend = engine._resolve_backend(executor, max_workers)
            group_workers = (
                max_workers if max_workers is not None else engine.max_workers
            )
            run = group_backend.run(engine, work, max_workers=group_workers)
            engine._merge_results(work, owners, run)

    for _engine, plans, _work, _owners in collected:
        for plan in plans:
            plan._resolve_duplicates()
    first_error = _first_error(collected)
    if first_error is not None and not return_errors:
        raise first_error
    return report


def _first_error(collected) -> Optional[Exception]:
    """The first per-item error in group, then submission order."""
    for _engine, plans, work, owners in collected:
        for slot, owner_list in enumerate(owners):
            plan, position = owner_list[0]
            payload = plan.results[position]
            if isinstance(payload, Exception):
                return payload
    return None


def _run_scheduled(
    collected,
    backend,
    slots: List,
    speculative: Sequence[Any],
    chunk_size: Optional[int],
    steal_deadline: Optional[float],
    clock,
) -> Dict[str, Any]:
    """The pull path: chunk, enqueue, drain with one puller per slot."""
    with TRACER.span(
        "scheduler.pull", category="scheduler",
        groups=len(collected), slots=len(slots),
    ):
        return _run_scheduled_inner(
            collected, backend, slots, speculative, chunk_size,
            steal_deadline, clock,
        )


def _run_scheduled_inner(
    collected,
    backend,
    slots: List,
    speculative: Sequence[Any],
    chunk_size: Optional[int],
    steal_deadline: Optional[float],
    clock,
) -> Dict[str, Any]:
    group_sizes = [len(work) for _e, _p, work, _o in collected]
    queue = WorkQueue(
        num_groups=len(collected),
        group_sizes=group_sizes,
        clock=clock,
        steal_deadline=steal_deadline,
    )

    per_group: List[List[Chunk]] = []
    for group, (engine, _plans, work, _owners) in enumerate(collected):
        size = (
            chunk_size
            if chunk_size is not None and chunk_size >= 1
            else _auto_chunk_size(len(work), len(slots))
        )
        per_group.append(_chunk_group(engine, group, work, size))
    ordered = _interleave(per_group)
    # Home = the slot static round-robin fan-out would have assigned;
    # a pull by any other slot is a steal.
    for index, chunk in enumerate(ordered):
        chunk.home = slots[index % len(slots)]
        queue.add(chunk)

    spec_engine = collected[0][0]
    spec_work = _speculative_work(spec_engine, collected, speculative)
    if spec_work:
        spec_size = (
            chunk_size
            if chunk_size is not None and chunk_size >= 1
            else _auto_chunk_size(len(spec_work), len(slots))
        )
        for start in range(0, len(spec_work), spec_size):
            queue.add(
                Chunk(
                    engine=spec_engine,
                    group=None,
                    slots=None,
                    items=spec_work[start : start + spec_size],
                    priority=1,
                )
            )

    pullers = [
        threading.Thread(
            target=_drain,
            args=(queue, backend, slot),
            name=f"repro-puller-{index}",
            daemon=True,
        )
        for index, slot in enumerate(slots)
    ]
    for thread in pullers:
        thread.start()
    for thread in pullers:
        thread.join()

    # Merge on the calling thread: cache writes and plan mutation stay
    # single-threaded, exactly like the legacy path.
    for group, (engine, _plans, work, owners) in enumerate(collected):
        if work:
            engine._merge_results(work, owners, queue.results[group])

    speculative_simulations = 0
    if queue.spec_results and spec_engine.cache_enabled:
        for key, payload in queue.spec_results:
            if key is not None and not isinstance(payload, Exception):
                spec_engine.cache.put(key, payload)
                speculative_simulations += 1
    report = dict(queue.counters)
    report["speculative_simulations"] = speculative_simulations
    return report


def _speculative_work(engine, collected, speculative) -> List[Tuple]:
    """Key and dedup speculative requests against all pending work."""
    if not speculative or not getattr(engine, "cache_enabled", False):
        return []
    from repro.engine.evaluation import evaluation_key

    pending_keys = {
        key
        for _e, _p, work, _o in collected
        for key, _request in work
        if key is not None
    }
    out: List[Tuple] = []
    for request in speculative:
        key = evaluation_key(engine.fingerprint, request.layer, request.mapping)
        if key in pending_keys or key in engine.cache:
            continue
        pending_keys.add(key)
        out.append((key, request))
    return out


def _slot_lane(slot) -> str:
    """A trace lane per backend slot (remote tokens flattened)."""
    if isinstance(slot, tuple):
        return "slot-" + "-".join(str(part) for part in slot)
    return f"slot-{slot}"


def _chunk_span_name(chunk: Chunk, slot) -> str:
    """Distinct event names per lifecycle kind, so steals / re-splits /
    speculation are visually distinguishable in a Chrome trace."""
    if chunk.priority:
        return "scheduler.speculative"
    if chunk.resplit_of is not None:
        return "scheduler.resplit"
    if chunk.home is not None and chunk.home != slot:
        return "scheduler.steal"
    return "scheduler.chunk"


def _drain(queue: WorkQueue, backend, slot) -> None:
    """One puller: pull, execute, complete, until the queue is done."""
    lane = _slot_lane(slot)
    registry = backend_metrics(backend)
    latency = (
        registry.histogram(SCHEDULER_METRIC_PREFIX + "chunk_latency_s")
        if registry is not None
        else None
    )
    while True:
        chunk = queue.pull(slot)
        if chunk is None:
            return
        started = time.perf_counter()
        with TRACER.span(
            _chunk_span_name(chunk, slot), category="scheduler", lane=lane,
            items=len(chunk.items), group=chunk.group, home=str(chunk.home),
        ):
            try:
                results = backend.run_chunk(
                    chunk.engine, chunk.items, slot=slot
                )
            except Exception as exc:  # infrastructure failure: fail items
                results = [(key, exc) for key, _request in chunk.items]
        if latency is not None:
            latency.observe(time.perf_counter() - started)
        queue.complete(chunk, results)
