"""Executor backends: how a batch of simulations is actually run.

The evaluation engine separates *what* to simulate (cache-missing
``EvalRequest``s) from *how* to run the misses.  The "how" is an
:class:`ExecutorBackend`, selected by name through a registry that
mirrors the controller registry (:mod:`repro.stonne.controller`):

* :class:`SerialBackend` — inline, one chunk at a time;
* :class:`ThreadBackend` — a thread pool.  Same-layer work in a chunk
  executes as one numpy batch kernel (:func:`simulate_chunk`), and
  numpy releases the GIL inside its array loops, so grouped chunks
  genuinely overlap across threads; only singleton scalar simulations
  still serialize on the GIL;
* :class:`ProcessBackend` — a process pool.  Controllers are pure
  functions of (config, params, layer, mapping) and every piece
  pickles cleanly, so workers rebuild the controller once per process,
  simulate their chunk (grouped through the same batch kernels), and
  ship ``(key, stats)`` pairs back for the parent to merge into its
  :class:`~repro.engine.cache.StatsCache`.

Backends receive work as ``(key, EvalRequest)`` pairs — ``key`` is the
content-addressed cache key (``None`` when caching is off) — and return
``(key, stats_or_exception)`` pairs in submission order.  Exceptions are
captured per item rather than aborting the batch, so one invalid mapping
cannot poison a generation of tuner proposals.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import (
    Callable,
    ClassVar,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.errors import ConfigError

#: One unit of backend work: (cache key or None, EvalRequest).
WorkItem = Tuple[Optional[Hashable], "EvalRequest"]  # noqa: F821
#: One backend result: the key plus either stats or the captured error.
WorkResult = Tuple[Optional[Hashable], object]


def _default_workers(requested: Optional[int]) -> int:
    if requested is not None and requested > 0:
        return requested
    return max(2, os.cpu_count() or 2)


class ExecutorBackend:
    """How the engine executes a batch of cache-missing simulations.

    Subclasses set :attr:`name` (the registry key) and implement
    :meth:`run`.  Backends hold no simulation state of their own — the
    engine passes itself in so backends can reach its config, params and
    functional flag — which keeps one backend shareable across engines.
    """

    #: Registry key; subclasses must override.
    name: ClassVar[str] = ""

    def run(
        self,
        engine,
        items: Sequence[WorkItem],
        max_workers: Optional[int] = None,
    ) -> List[WorkResult]:
        """Simulate every item, returning ``(key, stats | exception)``
        pairs in submission order."""
        raise NotImplementedError

    def pull_slots(self, engine, max_workers: Optional[int] = None) -> List:
        """Slot identities for pull-mode scheduling.

        Each slot is an opaque token naming one concurrent execution
        lane (a pool worker, a fleet capacity unit).  The work-stealing
        scheduler spawns one puller per slot; an empty list (the
        default) means the backend only supports static :meth:`run`
        batches.
        """
        return []

    def run_chunk(
        self, engine, items: Sequence[WorkItem], slot=None
    ) -> List[WorkResult]:
        """Execute one scheduler chunk on ``slot``, in submission order.

        Called concurrently from scheduler puller threads, one per slot
        from :meth:`pull_slots` — implementations must be thread-safe
        across distinct slots.  The default runs inline (correct for
        thread-pool semantics, where the puller thread *is* the lane),
        grouping the chunk's same-layer items through the controller's
        batch kernels (:func:`simulate_chunk`).
        """
        local = getattr(engine, "_local_controller", None)
        if local is None:  # duck-typed engines without the controller seam
            return [_simulate_item(engine, item) for item in items]
        pairs = [(request.layer, request.mapping) for _, request in items]
        payloads = simulate_chunk(
            local(), pairs, getattr(engine, "functional", False)
        )
        return [(key, payload) for (key, _), payload in zip(items, payloads)]

    @property
    def metrics(self):
        """The backend's :class:`~repro.obs.metrics.MetricsRegistry`.

        Created lazily on first access (subclasses do not all route
        through a common ``__init__``).  The scheduler accumulates its
        typed counters here under ``scheduler.*`` — see
        :func:`repro.engine.scheduler.backend_counters` for the plain
        dict view — and backends may add their own instruments (the
        remote backend records per-worker fleet health).
        """
        registry = self.__dict__.get("_metrics_registry")
        if registry is None:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
            self.__dict__["_metrics_registry"] = registry
        return registry

    def close(self) -> None:
        """Release pooled resources (idempotent; no-op by default)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def simulate_layer(controller, layer, mapping, functional: bool):
    """Run one cycle-model simulation (plus the exact datapath when
    ``functional``) on an already-built controller.

    This is the single definition of "simulate" shared by the engine's
    in-process path and the process-pool workers, so the two can never
    drift apart.  Outputs of the functional datapath are discarded —
    they never affect stats.
    """
    import numpy as np

    from repro.stonne.layer import ConvLayer, FcLayer

    if isinstance(layer, ConvLayer):
        stats = controller.run_conv(layer, mapping)
    elif isinstance(layer, FcLayer):
        stats = controller.run_fc(layer, mapping)
    else:
        stats = controller.run_gemm(layer)
    if functional:
        from repro.stonne.simulator import _conv_via_gemm

        if isinstance(layer, ConvLayer):
            if layer.layout == "NHWC":
                # NHWC activations / RSCK kernels, transposed around the
                # NCHW core exactly like Bifrost's layout-emulation path.
                from repro.topi.layout import nchw_to_nhwc, nhwc_to_nchw, rsck_to_kcrs

                data = np.ones((layer.N, layer.H, layer.W, layer.C))
                weights = np.ones((layer.R, layer.S, layer.C // layer.G, layer.K))
                out = _conv_via_gemm(
                    nhwc_to_nchw(data), rsck_to_kcrs(weights), layer
                )
                nchw_to_nhwc(out)
            else:
                data = np.ones((layer.N, layer.C, layer.H, layer.W))
                weights = np.ones((layer.K, layer.C // layer.G, layer.R, layer.S))
                _conv_via_gemm(data, weights, layer)
        elif isinstance(layer, FcLayer):
            data = np.ones((layer.batch, layer.in_features))
            weights = np.ones((layer.out_features, layer.in_features))
            data @ weights.T
        else:
            np.ones((layer.M, layer.K)) @ np.ones((layer.K, layer.N))
    return stats


def simulate_layer_batch(controller, layer, mappings) -> List:
    """Simulate one layer under many mappings through the controller's
    batch kernels; returns stats-or-exception per item, in order.

    GEMM layers carry no mapping, so a group of ``n`` items lowers to
    ``run_gemm_batch([layer] * n)``.  Duck-typed controllers without the
    batch surface fall back to a scalar loop — batching is an
    optimization, never a requirement.
    """
    from repro.stonne.layer import ConvLayer, FcLayer

    if isinstance(layer, ConvLayer):
        batch = getattr(controller, "run_conv_batch", None)
        if batch is not None:
            return batch(layer, mappings)
    elif isinstance(layer, FcLayer):
        batch = getattr(controller, "run_fc_batch", None)
        if batch is not None:
            return batch(layer, mappings)
    else:
        batch = getattr(controller, "run_gemm_batch", None)
        if batch is not None:
            return batch([layer] * len(mappings))
    results: List = []
    for mapping in mappings:
        try:
            results.append(simulate_layer(controller, layer, mapping, False))
        except Exception as exc:
            results.append(exc)
    return results


def simulate_chunk(controller, pairs, functional: bool) -> List:
    """Payloads (stats or the captured exception) for a chunk of
    ``(layer, mapping)`` pairs, in submission order.

    The chunk-grouping rule: pairs sharing a layer (dataclass equality —
    the engine's structural dedup already collapses same-shape duplicates
    at plan time) form one group, and each multi-item group is simulated
    by a single controller batch-kernel call.  Singleton groups,
    unhashable duck-typed layers and functional mode go through the
    scalar :func:`simulate_layer` seam one at a time, preserving its
    exact behaviour (including test monkeypatching) where batching buys
    nothing.
    """
    groups: Dict = {}
    singles: List[int] = []
    if functional:
        singles = list(range(len(pairs)))
    else:
        for index, (layer, _) in enumerate(pairs):
            try:
                groups.setdefault(layer, []).append(index)
            except TypeError:  # unhashable duck-typed layer
                singles.append(index)
    results: List = [None] * len(pairs)
    for layer, indices in groups.items():
        if len(indices) == 1:
            singles.extend(indices)
            continue
        payloads = simulate_layer_batch(
            controller, layer, [pairs[i][1] for i in indices]
        )
        for index, payload in zip(indices, payloads):
            results[index] = payload
    for index in sorted(singles):
        layer, mapping = pairs[index]
        try:
            results[index] = simulate_layer(controller, layer, mapping, functional)
        except Exception as exc:
            results[index] = exc
    return results


def _simulate_item(engine, item: WorkItem) -> WorkResult:
    """Run one simulation in the calling thread, capturing errors."""
    key, request = item
    try:
        return key, engine._simulate(request.layer, request.mapping)
    except Exception as exc:  # per-item isolation, re-raised by callers
        return key, exc


class SerialBackend(ExecutorBackend):
    """Inline execution — the baseline every other backend must beat.

    Static batches run as one inline chunk, so same-layer groups still
    collapse into batch-kernel calls: the serial default benefits from
    vectorization exactly like the pooled backends.
    """

    name = "serial"

    def run(self, engine, items, max_workers=None):
        return self.run_chunk(engine, items)


class _PooledBackend(ExecutorBackend):
    """Shared pool lifecycle for the thread and process backends.

    The pool is created lazily on first parallel batch, reused across
    batches (spawn cost is paid once per backend), recreated when the
    requested width changes, and released by :meth:`close`.  Batches too
    small to benefit run inline.
    """

    #: concurrent.futures executor class; subclasses set this.
    _pool_factory: ClassVar[type]

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers
        self._pool = None
        self._pool_width = 0

    def _ensure_pool(self, workers: int):
        if self._pool is None or self._pool_width != workers:
            self.close()
            self._pool = self._pool_factory(max_workers=workers)
            self._pool_width = workers
        return self._pool

    def run(self, engine, items, max_workers=None):
        workers = _default_workers(max_workers or self.max_workers)
        if len(items) <= 1 or workers <= 1:
            return [_simulate_item(engine, item) for item in items]
        return self._run_pooled(engine, items, self._ensure_pool(workers))

    def _run_pooled(self, engine, items, pool) -> List[WorkResult]:
        raise NotImplementedError

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_width = 0


class ThreadBackend(_PooledBackend):
    """Thread-pooled execution.

    Each worker thread lazily builds its own controller through the
    engine (cycle-model tallies must not race).  Historically this
    backend "helped little" — not because of anything subtle, but
    because the cycle models were pure Python and therefore fully
    GIL-bound.  With chunks grouped into numpy batch kernels
    (:func:`simulate_chunk`) the array math releases the GIL, so
    scheduler-driven thread runs now overlap for real; see
    ``benchmarks/bench_scheduler.py`` for the measured scenario.
    Per-item static batches (this class's :meth:`run`) remain
    GIL-bound scalar simulations.
    """

    name = "thread"
    _pool_factory = ThreadPoolExecutor

    def _run_pooled(self, engine, items, pool):
        return list(pool.map(lambda item: _simulate_item(engine, item), items))

    def pull_slots(self, engine, max_workers=None):
        workers = _default_workers(max_workers or self.max_workers)
        if workers <= 1:
            return []
        # Pullers are scheduler-owned threads; each builds its own
        # thread-local controller through the engine, so no pool here.
        return list(range(workers))


# ----------------------------------------------------------------------
# process backend
# ----------------------------------------------------------------------
#: Per-worker-process controller cache, keyed by the engine fingerprint.
#: Workers rebuild a controller once and reuse it across chunks, which is
#: what makes generation-sized batches cheap to fan out.
_WORKER_CONTROLLERS: Dict[str, object] = {}


def _process_chunk(spec: Tuple, chunk: List[Tuple]) -> List[Tuple]:
    """Worker entry point: simulate one chunk of (position, key, layer,
    mapping) items under the controller described by ``spec``.

    Runs in the worker process.  Same-layer items group into one batch
    kernel call (:func:`simulate_chunk`).  Returns (position, key,
    stats-or-error) triples; errors are captured so a bad mapping never
    kills the pool.
    """
    fingerprint, controller_cls, config, params, functional = spec
    controller = _WORKER_CONTROLLERS.get(fingerprint)
    if controller is None:
        controller = controller_cls(config, params)
        _WORKER_CONTROLLERS[fingerprint] = controller

    pairs = [(layer, mapping) for _, _, layer, mapping in chunk]
    payloads = simulate_chunk(controller, pairs, functional)
    return [
        (position, key, payload)
        for (position, key, _, _), payload in zip(chunk, payloads)
    ]


class ProcessBackend(_PooledBackend):
    """Process-pooled execution for CPU-bound sweeps.

    Processes sidestep the GIL entirely, which made this the only real
    fan-out for the historical pure-Python models; with chunks grouped
    into numpy batch kernels the thread backend competes again, but
    processes still win when chunks degenerate to singleton scalar
    simulations.  Work is split into one chunk per worker to amortize
    pickling, each worker simulates its chunk with a per-process cached
    controller, and the parent merges the returned ``(key, stats)``
    pairs into its cache.
    """

    name = "process"
    _pool_factory = ProcessPoolExecutor

    def _run_pooled(self, engine, items, pool):
        spec = (
            engine.fingerprint,
            type(engine.controller),
            engine.config,
            engine.params,
            engine.functional,
        )
        indexed = [
            (position, key, request.layer, request.mapping)
            for position, (key, request) in enumerate(items)
        ]
        chunks = [indexed[i :: self._pool_width] for i in range(self._pool_width)]
        chunks = [chunk for chunk in chunks if chunk]
        results: List[WorkResult] = [None] * len(items)  # type: ignore
        for chunk_results in pool.map(
            _process_chunk, [spec] * len(chunks), chunks
        ):
            for position, key, payload in chunk_results:
                results[position] = (key, payload)
        return results

    def pull_slots(self, engine, max_workers=None):
        workers = _default_workers(max_workers or self.max_workers)
        if workers <= 1:
            return []
        self._ensure_pool(workers)
        return list(range(workers))

    def run_chunk(self, engine, items, slot=None):
        if self._pool is None:
            return [_simulate_item(engine, item) for item in items]
        spec = (
            engine.fingerprint,
            type(engine.controller),
            engine.config,
            engine.params,
            engine.functional,
        )
        chunk = [
            (position, key, request.layer, request.mapping)
            for position, (key, request) in enumerate(items)
        ]
        results: List[WorkResult] = [None] * len(items)  # type: ignore
        for position, key, payload in self._pool.submit(
            _process_chunk, spec, chunk
        ).result():
            results[position] = (key, payload)
        return results


# ----------------------------------------------------------------------
# registry (mirrors repro.stonne.controller)
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[ExecutorBackend]] = {}


def register_backend(
    name: str,
) -> Callable[[Type[ExecutorBackend]], Type[ExecutorBackend]]:
    """Class decorator registering an executor backend under ``name``."""

    def decorator(cls: Type[ExecutorBackend]) -> Type[ExecutorBackend]:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ConfigError(
                f"executor backend {name!r} is already registered to "
                f"{existing.__name__}; unregister it first"
            )
        _REGISTRY[name] = cls
        # Stamp the registry name onto classes that don't declare their
        # own; never mutate one that does (registering a built-in under
        # an alias must not corrupt its original name).
        if "name" not in cls.__dict__:
            cls.name = name
        return cls

    return decorator


def unregister_backend(name: str) -> None:
    """Remove a registration (tests and hot-swapping extensions)."""
    _REGISTRY.pop(name, None)


def _ensure_builtin_backends() -> None:
    for cls in (SerialBackend, ThreadBackend, ProcessBackend):
        _REGISTRY.setdefault(cls.name, cls)
    # The remote backend lives in repro.fleet (it drags in the wire
    # protocol); importing it registers it, making "remote" a first-class
    # registry citizen everywhere backends are listed or resolved.
    try:
        import repro.fleet.remote_backend  # noqa: F401  (import = register)
    except ImportError:  # pragma: no cover - stripped-down installs only;
        pass  # anything else (a real bug in fleet code) must surface


def backend_class(name: str) -> Type[ExecutorBackend]:
    """The registered backend class for ``name``."""
    if name not in _REGISTRY:
        _ensure_builtin_backends()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"no executor backend registered for {name!r}; "
            f"known backends: {sorted(_REGISTRY)}"
        ) from None


def make_backend(
    executor: Union[str, ExecutorBackend, None],
    max_workers: Optional[int] = None,
) -> ExecutorBackend:
    """Resolve a backend name (or pass an instance through).

    ``None`` resolves to :class:`ThreadBackend` when ``max_workers``
    asks for parallelism and :class:`SerialBackend` otherwise, matching
    the engine's historical defaults.
    """
    if isinstance(executor, ExecutorBackend):
        return executor
    if executor is None:
        executor = "thread" if max_workers is not None and max_workers > 1 else "serial"
    cls = backend_class(executor)
    try:
        return cls(max_workers=max_workers)
    except TypeError:  # backends without pools take no width argument
        return cls()


def registered_backends() -> List[str]:
    """Sorted registry keys, built-ins included."""
    _ensure_builtin_backends()
    return sorted(_REGISTRY)


_ensure_builtin_backends()
