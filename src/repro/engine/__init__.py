"""repro.engine — cached, batched evaluation of simulated accelerators.

Why this package exists
-----------------------
Bifrost's core loop (§V, §VII-B of the paper) is "configure a simulator
instance per layer, run, record stats", repeated thousands of times
during mapping tuning — where the paper notes a full simulation per
trial is the *expensive exact objective*.  The seed code re-simulated
identical (layer, mapping, config) triples from scratch on every trial;
this package turns that hot path into a service with memoization and
batching.

Components
----------
:class:`~repro.engine.cache.StatsCache`
    A thread-safe, LRU-bounded, content-addressed cache mapping the
    fingerprint of (layer, mapping, SimulatorConfig, CycleModelParams)
    to :class:`~repro.stonne.stats.SimulationStats`, with hit/miss
    counters.  Keys are structural — the layer *name* is excluded — so
    re-tuning a layer whose shape already appeared (common in real
    networks: VGG/AlexNet repeat shapes) hits the cache.

:class:`~repro.engine.evaluation.EvaluationEngine`
    The evaluation front end.  ``evaluate(layer, mapping)`` resolves the
    architecture through the controller registry, consults the cache,
    and simulates on a miss; ``evaluate_many`` fans a batch of
    :class:`~repro.engine.evaluation.EvalRequest` out over a thread
    pool (each worker gets its own controller instance, so the cycle
    models' internal tallies never race).  ``num_simulations`` vs
    ``num_evaluations`` counters expose real simulation savings.

    ``functional=True`` additionally executes the exact datapath (the
    im2col GEMM) per simulation, reproducing the cost profile of real
    STONNE — which always computes outputs — so benchmarks can measure
    cache benefit against realistic per-trial cost.  Stats are identical
    with and without the functional datapath (mapping-invariance).

:mod:`~repro.engine.backends`
    The executor backends ``evaluate_many`` runs cache misses on,
    selected by name through a registry that mirrors the controller
    registry: ``serial`` (inline), ``thread`` (shared-memory pool, GIL
    bound for the pure-Python cycle models), and ``process`` (a process
    pool — controllers are pure functions of (config, params, layer,
    mapping) and pickle cleanly, so workers simulate independently and
    return ``(key, stats)`` pairs that merge into the parent cache).

:class:`~repro.engine.cache.PersistentStatsCache`
    The disk tier: an append-only JSONL spill under the in-memory LRU.
    Opening a cache on an existing file warm-starts it, so tuning
    sessions resume warm across processes and workers can share one
    measurement history.

:mod:`~repro.engine.scheduler`
    The saturation scheduler: :func:`~repro.engine.scheduler.run_plan_groups`
    drains many engines' planned batches through one pull-based work
    queue (one puller per backend slot) so engine groups overlap, fast
    slots steal slow slots' tails, stragglers re-split past a deadline,
    and speculative low-priority work (a tuner's predicted next
    generation) fills otherwise-idle slots — all bit-identical to
    serial execution, with exact steal/re-split/idle counters.

Who routes through it
---------------------
* ``repro.session.Session`` — the public facade: it builds one engine
  per session from a typed ``SessionConfig`` (executor, cache tier,
  fleet workers) and guarantees ``close()`` runs on exit;
* ``repro.tuner.measure.TuningTask`` — ``measure_batch`` submits a whole
  tuner generation to ``evaluate_many``, making GA/XGB tuning
  dramatically cheaper on revisited configs while keeping results
  bit-identical;
* ``repro.bifrost.api.StonneBifrostApi`` — offloaded conv2d/dense stats
  lookups go through the session engine, so repeated shapes in one graph
  skip the cycle model (the functional datapath still executes);
* ``repro.bifrost.runner.run_layers`` — bare-descriptor benchmarking
  batches through the session's engine;
* ``benchmarks/bench_engine_cache.py`` — measures the speedups.

Results are bit-identical with the cache on or off and across backends:
every controller is a deterministic function of (layer, config, params,
mapping), and cache hits return independent copies so callers can never
corrupt the cache.
"""

from repro.engine.backends import (
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
    register_backend,
    registered_backends,
    unregister_backend,
)
from repro.engine.cache import (
    PersistentStatsCache,
    StatsCache,
    make_stats_cache,
)
from repro.engine.evaluation import (
    BatchPlan,
    EvalRequest,
    EvaluationEngine,
    evaluation_key,
    fingerprint_config,
)
from repro.engine.scheduler import (
    WorkQueue,
    backend_counters,
    backend_metrics,
    run_plan_groups,
)
from repro.engine.sqlite_cache import SqliteStatsCache

__all__ = [
    "BatchPlan",
    "EvalRequest",
    "EvaluationEngine",
    "ExecutorBackend",
    "PersistentStatsCache",
    "ProcessBackend",
    "SerialBackend",
    "SqliteStatsCache",
    "StatsCache",
    "ThreadBackend",
    "WorkQueue",
    "backend_counters",
    "backend_metrics",
    "evaluation_key",
    "fingerprint_config",
    "make_backend",
    "make_stats_cache",
    "register_backend",
    "registered_backends",
    "run_plan_groups",
    "unregister_backend",
]
