"""repro.engine — cached, batched evaluation of simulated accelerators.

Why this package exists
-----------------------
Bifrost's core loop (§V, §VII-B of the paper) is "configure a simulator
instance per layer, run, record stats", repeated thousands of times
during mapping tuning — where the paper notes a full simulation per
trial is the *expensive exact objective*.  The seed code re-simulated
identical (layer, mapping, config) triples from scratch on every trial;
this package turns that hot path into a service with memoization and
batching.

Components
----------
:class:`~repro.engine.cache.StatsCache`
    A thread-safe, LRU-bounded, content-addressed cache mapping the
    fingerprint of (layer, mapping, SimulatorConfig, CycleModelParams)
    to :class:`~repro.stonne.stats.SimulationStats`, with hit/miss
    counters.  Keys are structural — the layer *name* is excluded — so
    re-tuning a layer whose shape already appeared (common in real
    networks: VGG/AlexNet repeat shapes) hits the cache.

:class:`~repro.engine.evaluation.EvaluationEngine`
    The evaluation front end.  ``evaluate(layer, mapping)`` resolves the
    architecture through the controller registry, consults the cache,
    and simulates on a miss; ``evaluate_many`` fans a batch of
    :class:`~repro.engine.evaluation.EvalRequest` out over a thread
    pool (each worker gets its own controller instance, so the cycle
    models' internal tallies never race).  ``num_simulations`` vs
    ``num_evaluations`` counters expose real simulation savings.

    ``functional=True`` additionally executes the exact datapath (the
    im2col GEMM) per simulation, reproducing the cost profile of real
    STONNE — which always computes outputs — so benchmarks can measure
    cache benefit against realistic per-trial cost.  Stats are identical
    with and without the functional datapath (mapping-invariance).

Who routes through it
---------------------
* ``repro.tuner.measure.TuningTask`` — cycles/energy objectives
  evaluate through an engine, making GA/XGB tuning dramatically cheaper
  on revisited configs while keeping results bit-identical;
* ``repro.bifrost.runner.run_layers`` — bare-descriptor benchmarking
  uses the session's engine;
* ``benchmarks/bench_engine_cache.py`` — measures the speedup.

Results are bit-identical with the cache on or off: every controller is
a deterministic function of (layer, config, params, mapping), and cache
hits return independent copies so callers can never corrupt the cache.
"""

from repro.engine.cache import StatsCache
from repro.engine.evaluation import (
    EvalRequest,
    EvaluationEngine,
    evaluation_key,
    fingerprint_config,
)

__all__ = [
    "EvalRequest",
    "EvaluationEngine",
    "StatsCache",
    "evaluation_key",
    "fingerprint_config",
]
