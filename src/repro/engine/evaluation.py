"""The evaluation engine: registry dispatch + memoization + batching.

See the package docstring (:mod:`repro.engine`) for the architecture
overview.  The key design points:

* **Content-addressed keys.**  :func:`evaluation_key` fingerprints the
  *structure* of the evaluation — layer fields (name excluded), mapping
  tiles, and a precomputed digest of (SimulatorConfig, CycleModelParams)
  — so identical work is recognized across layers, sessions and tuner
  runs.  The config/params digest is computed once per engine, keeping
  the per-evaluation key a cheap tuple of scalars.
* **Copy-on-hit.**  Cache hits return an independent
  :class:`~repro.stonne.stats.SimulationStats` with ``layer_name``
  rewritten to the requesting layer's name, so records stay attributable
  even when they were produced by a different layer of the same shape.
* **Pluggable batching.**  ``evaluate_many`` splits a batch into cache
  hits and misses and hands the misses to an executor backend
  (:mod:`repro.engine.backends`): serial, thread-pooled, or
  process-pooled.  Batch-internal duplicates simulate once.  Worker
  threads lazily build their own controller (controllers keep internal
  tallies, e.g. the accumulation buffer's write counters, which must
  not race); worker processes return ``(key, stats)`` pairs that merge
  into the parent cache.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import asdict, dataclass, fields
from functools import lru_cache
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import SimulationError
from repro.stonne.controller import AcceleratorController, make_controller
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS
from repro.stonne.stats import SimulationStats

from repro.engine.backends import ExecutorBackend, make_backend
from repro.engine.cache import StatsCache
from repro.obs.trace import TRACER

Layer = Union[ConvLayer, FcLayer, GemmLayer]
Mapping = Union[ConvMapping, FcMapping]


def fingerprint_config(
    config, params: CycleModelParams, controller_cls: Optional[type] = None
) -> str:
    """Digest of a (SimulatorConfig, CycleModelParams[, controller]) triple.

    Canonical JSON over sorted keys, hashed; any object with ``to_dict``
    (or plain attributes) works, so mock configs fingerprint too.  The
    controller class is part of the digest so hot-swapped registrations
    (same ``controller_type``, different model) never share cache entries.
    """
    if hasattr(config, "to_dict"):
        config_dict = config.to_dict()
    else:  # mock / duck-typed configs
        config_dict = {
            k: str(v) for k, v in vars(config).items() if not k.startswith("_")
        }
    payload = json.dumps(
        {
            "config": config_dict,
            "params": asdict(params),
            "controller": (
                f"{controller_cls.__module__}.{controller_cls.__qualname__}"
                if controller_cls is not None
                else None
            ),
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


#: Per-class cache of non-name field names: ``dataclasses.fields`` builds
#: a fresh tuple of Field objects on every call, which showed up in
#: profiles when keying generation-sized tuner batches.
_LAYER_FIELD_NAMES: Dict[type, Tuple[str, ...]] = {}


def _layer_field_names(cls: type) -> Tuple[str, ...]:
    names = _LAYER_FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(f.name for f in fields(cls) if f.name != "name")
        _LAYER_FIELD_NAMES[cls] = names
    return names


@lru_cache(maxsize=4096)
def _layer_key_cached(layer) -> Tuple:
    return tuple(getattr(layer, name) for name in _layer_field_names(type(layer)))


def _layer_key(layer: Layer) -> Tuple:
    """Structural identity of a layer: every field except its name.

    Memoized on the layer itself — the built-in layers are frozen,
    hashable dataclasses, and a tuner batch keys the same few layer
    objects thousands of times.  Unhashable duck-typed layers fall back
    to direct reflection.
    """
    try:
        return _layer_key_cached(layer)
    except TypeError:
        return tuple(
            getattr(layer, f.name) for f in fields(layer) if f.name != "name"
        )


def evaluation_key(
    config_fingerprint: str, layer: Layer, mapping: Optional[Mapping]
) -> Hashable:
    """The cache key for simulating ``layer`` under ``mapping``."""
    mapping_key = None if mapping is None else mapping.as_tuple()
    return (
        config_fingerprint,
        type(layer).__name__,
        _layer_key(layer),
        type(mapping).__name__ if mapping is not None else None,
        mapping_key,
    )


@dataclass(frozen=True)
class EvalRequest:
    """One unit of work for :meth:`EvaluationEngine.evaluate_many`."""

    layer: Layer
    mapping: Optional[Mapping] = None


class BatchPlan:
    """A planned ``evaluate_many`` call whose misses are still pending.

    Produced by :meth:`EvaluationEngine.plan_many`: cache hits are
    resolved immediately into :attr:`results`, batch-internal duplicate
    keys are parked, and the deduplicated misses wait in the plan until
    :meth:`EvaluationEngine.run_plans` executes them.  Splitting the two
    phases is what lets a sweep driver collect the plans of *several*
    scenarios first and then flatten all their misses into one executor
    batch — cross-scenario duplicates simulate once and the pool sees
    the widest possible batch.
    """

    __slots__ = (
        "engine",
        "requests",
        "results",
        "_pending",
        "_duplicates",
        "_miss_stats",
        "_miss_errors",
    )

    def __init__(self, engine: "EvaluationEngine", requests: List[EvalRequest]):
        self.engine = engine
        self.requests = requests
        #: One slot per request; hits are filled at plan time, misses
        #: (and their duplicates) after :meth:`EvaluationEngine.run_plans`.
        self.results: List[Optional[SimulationStats]] = [None] * len(requests)
        self._pending: List[Tuple[Optional[Hashable], int]] = []
        self._duplicates: List[Tuple[int, Hashable]] = []
        self._miss_stats: dict = {}
        self._miss_errors: dict = {}

    @property
    def num_pending(self) -> int:
        """Deduplicated misses still waiting for execution."""
        return len(self._pending)

    def counters(self) -> dict:
        """This plan's own bookkeeping (scenario-scoped, unlike the
        engine's cumulative :meth:`EvaluationEngine.counters`).

        ``cache_hits`` counts results resolved at plan time,
        ``batch_duplicates`` the in-plan repeats of a pending key, and
        ``unique_misses`` the work this plan contributed to the flattened
        batch — which may still simulate on another plan's behalf (the
        engine, not the plan, knows what actually ran).
        """
        return {
            "num_evaluations": len(self.requests),
            "cache_hits": (
                len(self.requests)
                - len(self._pending)
                - len(self._duplicates)
            ),
            "batch_duplicates": len(self._duplicates),
            "unique_misses": len(self._pending),
        }

    def _record(self, position: int, key, payload) -> None:
        """Store one executed miss (stats or captured exception)."""
        if isinstance(payload, Exception):
            self._miss_errors[key] = payload
        else:
            self._miss_stats[key] = payload
        self.results[position] = payload

    def _resolve_duplicates(self) -> None:
        """Fill the parked duplicate slots from the cache (or the
        batch-local result when the LRU bound already evicted it)."""
        for position, key in self._duplicates:
            if key in self._miss_errors:
                # The first occurrence failed; its error stands in here too.
                self.results[position] = self._miss_errors[key]
                continue
            cached = self.engine.cache.get(key)
            if cached is None:
                # Already evicted (LRU bound smaller than the batch's
                # distinct misses); serve the batch-local result instead.
                cached = self._miss_stats[key]
            # Attribute a copy — never rename a shared object in place
            # (a duck-typed cache may have returned its stored record).
            self.results[position] = cached.clone(
                layer_name=self.requests[position].layer.name
            )


class EvaluationEngine:
    """Cached, batched evaluation of one accelerator configuration.

    Args:
        config: Hardware configuration; resolved through the controller
            registry.
        params: Cycle-model calibration constants.
        cache: A shared :class:`StatsCache`; a private one is created
            when omitted.  Sharing a cache across engines is safe — the
            config/params fingerprint is part of every key.
        cache_enabled: When False every evaluation simulates (the cache
            is neither consulted nor populated); counters still track.
        functional: When True every *simulation* also executes the exact
            datapath (im2col GEMM) with synthetic tensors, reproducing
            real STONNE's cost profile where the exact objective requires
            a full simulation.  Statistics are identical either way.
        executor: How :meth:`evaluate_many` runs cache misses: a backend
            name from :func:`repro.engine.backends.registered_backends`
            ("serial"/"thread"/"process") or an
            :class:`~repro.engine.backends.ExecutorBackend` instance.
            ``None`` keeps the historical default — threads when
            ``max_workers`` asks for parallelism, inline otherwise.
        max_workers: Default pool width for :meth:`evaluate_many`.
        chunk_size: Items per scheduler chunk on pull-capable backends
            (:mod:`repro.engine.scheduler`); ``None`` sizes chunks
            automatically from the batch and slot count.
        steal_deadline: Seconds before an idle scheduler slot re-splits
            a straggler's unfinished chunk.
    """

    def __init__(
        self,
        config,
        params: CycleModelParams = DEFAULT_PARAMS,
        cache: Optional[StatsCache] = None,
        cache_enabled: bool = True,
        functional: bool = False,
        executor: Union[str, ExecutorBackend, None] = None,
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        steal_deadline: Optional[float] = None,
    ) -> None:
        self.config = config
        self.params = params
        self.cache = cache if cache is not None else StatsCache()
        self.cache_enabled = cache_enabled
        self.functional = functional
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.steal_deadline = steal_deadline
        self.backend: ExecutorBackend = make_backend(executor, max_workers)
        self.controller: AcceleratorController = make_controller(config, params)
        self.num_evaluations = 0
        self.num_simulations = 0
        self._fingerprint = fingerprint_config(
            config, params, type(self.controller)
        )
        self._counter_lock = threading.Lock()
        self._thread_local = threading.local()
        #: Per-call override backends, keyed by (executor name, width).
        self._override_backends: dict = {}

    # ------------------------------------------------------------------
    @property
    def requires_mapping(self) -> bool:
        """Whether the configured architecture consumes dataflow mappings."""
        return self.controller.requires_mapping

    @property
    def fingerprint(self) -> str:
        """Digest identifying this engine's (config, params) pair."""
        return self._fingerprint

    def _local_controller(self) -> AcceleratorController:
        """A per-thread controller (cycle-model tallies must not race).

        Instantiates the class resolved at engine construction rather than
        re-querying the registry, so a later registry hot-swap cannot make
        worker threads disagree with :attr:`controller` or the fingerprint.
        """
        controller = getattr(self._thread_local, "controller", None)
        if controller is None:
            controller = type(self.controller)(self.config, self.params)
            self._thread_local.controller = controller
        return controller

    # ------------------------------------------------------------------
    def _simulate(self, layer: Layer, mapping: Optional[Mapping]) -> SimulationStats:
        from repro.engine.backends import simulate_layer

        return simulate_layer(
            self._local_controller(), layer, mapping, self.functional
        )

    # ------------------------------------------------------------------
    def evaluate(
        self, layer: Layer, mapping: Optional[Mapping] = None
    ) -> SimulationStats:
        """Stats for simulating ``layer`` (cache-first, then simulate)."""
        if not isinstance(layer, (ConvLayer, FcLayer, GemmLayer)):
            raise SimulationError(
                f"EvaluationEngine expects ConvLayer/FcLayer/GemmLayer, "
                f"got {type(layer).__name__}"
            )
        with self._counter_lock:
            self.num_evaluations += 1
        if not self.cache_enabled:
            stats = self._simulate(layer, mapping)
            with self._counter_lock:
                self.num_simulations += 1
            return stats

        key = evaluation_key(self._fingerprint, layer, mapping)
        cached = self.cache.get(key)
        if cached is not None:
            # Attribute a copy rather than renaming in place: the
            # built-in tiers return private copies, but a duck-typed
            # cache may hand back its stored record, and mutating that
            # would rename every earlier hit of the same key.
            return cached.clone(layer_name=layer.name)
        stats = self._simulate(layer, mapping)
        with self._counter_lock:
            self.num_simulations += 1
        self.cache.put(key, stats)
        return stats

    def evaluate_request(self, request: EvalRequest) -> SimulationStats:
        return self.evaluate(request.layer, request.mapping)

    def _resolve_backend(
        self,
        executor: Union[str, ExecutorBackend, None],
        max_workers: Optional[int],
    ) -> ExecutorBackend:
        """The backend one ``evaluate_many`` call should use.

        An explicit ``executor`` wins; an explicit ``max_workers`` keeps
        the historical behaviour (threads above 1, inline otherwise);
        everything else uses the engine's configured backend.  Override
        backends are cached per (name, width) so repeated calls reuse
        one pool, and :meth:`close` shuts them all down.
        """
        if executor is None and max_workers is None:
            return self.backend
        if isinstance(executor, ExecutorBackend):
            return executor  # caller-owned; the caller closes it
        key = (executor, max_workers)
        backend = self._override_backends.get(key)
        if backend is None:
            backend = make_backend(executor, max_workers)
            self._override_backends[key] = backend
        return backend

    def plan_many(
        self, requests: Iterable[Union[EvalRequest, Layer]]
    ) -> BatchPlan:
        """Resolve a batch's cache hits and collect its pending misses.

        The first half of :meth:`evaluate_many`: bare layers are
        normalized to mapping-less requests, cache hits fill their
        result slots immediately, batch-internal duplicate keys are
        parked, and the deduplicated misses wait in the returned
        :class:`BatchPlan` until :meth:`run_plans` executes them.
        Sweep drivers call this once per scenario and then run every
        plan in one flattened executor batch.
        """
        with TRACER.span("engine.plan_many", category="engine") as span:
            plan = self._plan_many(requests)
            span.set(requests=len(plan.requests), pending=plan.num_pending)
            return plan

    def _plan_many(
        self, requests: Iterable[Union[EvalRequest, Layer]]
    ) -> BatchPlan:
        normalized: List[EvalRequest] = [
            r if isinstance(r, EvalRequest) else EvalRequest(layer=r)
            for r in requests
        ]
        for request in normalized:
            if not isinstance(request.layer, (ConvLayer, FcLayer, GemmLayer)):
                raise SimulationError(
                    f"EvaluationEngine expects ConvLayer/FcLayer/GemmLayer, "
                    f"got {type(request.layer).__name__}"
                )
        plan = BatchPlan(self, normalized)
        with self._counter_lock:
            self.num_evaluations += len(normalized)

        if not self.cache_enabled:
            # No keys, no dedup: every request simulates.
            plan._pending = [(None, position) for position in range(len(normalized))]
            return plan

        pending_keys: set = set()
        with TRACER.span("cache.lookup", category="cache") as span:
            for position, request in enumerate(normalized):
                key = evaluation_key(
                    self._fingerprint, request.layer, request.mapping
                )
                if key in pending_keys:
                    # Resolved from the cache after the first occurrence
                    # runs, mirroring what a serial loop would do.
                    plan._duplicates.append((position, key))
                    continue
                cached = self.cache.get(key)
                if cached is not None:
                    # An attributed *copy*, mirroring run_plans'
                    # semantics: renaming the returned object in place
                    # would alias two plans onto one record whenever the
                    # cache's get() does not copy (duck-typed caches),
                    # letting the second scenario rename the first's
                    # result.
                    plan.results[position] = cached.clone(
                        layer_name=request.layer.name
                    )
                else:
                    pending_keys.add(key)
                    plan._pending.append((key, position))
            span.set(
                lookups=len(normalized),
                hits=len(normalized) - len(plan._pending) - len(plan._duplicates),
                misses=len(plan._pending),
                duplicates=len(plan._duplicates),
            )
        return plan

    def _collect_pending(
        self, plans: Sequence[BatchPlan]
    ) -> Tuple[List[Tuple[Optional[Hashable], EvalRequest]], List[List[Tuple[BatchPlan, int]]]]:
        """Flatten several plans' misses into one deduplicated work list.

        Returns ``(work, owners)``: one ``(key, request)`` item per
        distinct pending key across all plans, plus the (plan, position)
        slots each item must fill — cross-plan duplicates share one
        work item with multiple owners.
        """
        work: List[Tuple[Optional[Hashable], EvalRequest]] = []
        owners: List[List[Tuple[BatchPlan, int]]] = []
        slot_by_key: dict = {}
        for plan in plans:
            for key, position in plan._pending:
                if key is not None:
                    slot = slot_by_key.get(key)
                    if slot is not None:
                        owners[slot].append((plan, position))
                        continue
                    slot_by_key[key] = len(work)
                work.append((key, plan.requests[position]))
                owners.append([(plan, position)])
        return work, owners

    def _merge_results(
        self,
        work: Sequence[Tuple[Optional[Hashable], EvalRequest]],
        owners: Sequence[List[Tuple[BatchPlan, int]]],
        run: Sequence[Tuple[Optional[Hashable], object]],
    ) -> None:
        """Merge executed work back into the cache and the owning plans.

        Single-threaded by design (cache writes and plan mutation never
        race); counts each distinct successful item as one simulation
        regardless of how the backend executed it, so counters stay
        deterministic even when the scheduler re-splits a straggler.
        """
        simulated = 0
        for slot, result in enumerate(run):
            key, payload = result if result is not None else (work[slot][0], None)
            if payload is None:
                payload = SimulationError(
                    "backend returned no result for a submitted item"
                )
            if isinstance(payload, Exception):
                for plan, position in owners[slot]:
                    plan._record(position, key, payload)
            else:
                simulated += 1
                if self.cache_enabled and key is not None:
                    self.cache.put(key, payload)
                for index, (plan, position) in enumerate(owners[slot]):
                    stats = payload
                    if index > 0:
                        # Cross-plan shared result: every other plan
                        # gets an independent, re-attributed copy.
                        stats = payload.clone()
                        stats.layer_name = (
                            plan.requests[position].layer.name
                        )
                    plan._record(position, key, stats)
        with self._counter_lock:
            self.num_simulations += simulated

    def run_plans(
        self,
        plans: Sequence[BatchPlan],
        max_workers: Optional[int] = None,
        executor: Union[str, ExecutorBackend, None] = None,
        return_errors: bool = False,
        speculative: Sequence[EvalRequest] = (),
    ) -> dict:
        """Execute the pending misses of one or more plans as one batch.

        The misses of every plan are flattened into a single backend
        batch with *cross-plan* key dedup — a layer shared by several
        plans (scenarios of a sweep) simulates exactly once and every
        plan receives an independently attributed copy.  Results merge
        into the cache and into each plan's ``results``; parked
        duplicates resolve afterwards.

        On pull-capable backends with two or more slots the work runs
        through the work-stealing scheduler
        (:func:`repro.engine.scheduler.run_plan_groups`); otherwise it
        runs as one static backend batch.  Results are bit-identical
        either way.  ``speculative`` requests, if any, ride the
        scheduler's low-priority lane and only ever warm the cache.

        Per-request failures abort by re-raising the first one unless
        ``return_errors`` is True, in which case the failed slots hold
        the exception instances instead of stats (every plan is still
        fully resolved before the raise).  Returns the scheduler's
        counter report for this call.
        """
        from repro.engine.scheduler import run_plan_groups

        for plan in plans:
            if plan.engine is not self:
                raise SimulationError(
                    "run_plans received a BatchPlan built by a different engine"
                )
        with TRACER.span(
            "engine.run_plans", category="engine",
            plans=len(plans),
            pending=sum(plan.num_pending for plan in plans),
        ):
            return run_plan_groups(
                [(self, plans)],
                max_workers=max_workers,
                executor=executor,
                return_errors=return_errors,
                speculative=speculative,
            )

    def evaluate_many(
        self,
        requests: Iterable[Union[EvalRequest, Layer]],
        max_workers: Optional[int] = None,
        executor: Union[str, ExecutorBackend, None] = None,
        return_errors: bool = False,
        speculative: Sequence[EvalRequest] = (),
    ) -> List[SimulationStats]:
        """Evaluate a batch, preserving order.

        Bare layers are accepted as shorthand for mapping-less requests.
        The batch is split into cache hits and misses; misses — deduped,
        so a key appearing twice in one batch simulates once — run on the
        executor backend (the engine's, or a per-call override via
        ``executor``/``max_workers``) and merge back into the cache.
        Internally this is a single-plan sweep batch:
        :meth:`plan_many` followed by :meth:`run_plans`, the same path
        multi-scenario sweeps use.

        ``speculative`` requests are extra low-priority work for the
        scheduler: they run only while normal slots would otherwise
        idle, populate the cache, and never appear in the returned
        results.

        Per-request failures abort the batch by re-raising the first one
        unless ``return_errors`` is True, in which case the failed slots
        hold the exception instances instead of stats.
        """
        plan = self.plan_many(requests)
        if not plan.requests and not speculative:
            return []
        self.run_plans(
            [plan],
            max_workers=max_workers,
            executor=executor,
            return_errors=return_errors,
            speculative=speculative,
        )
        return plan.results

    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return self.cache.hits

    @property
    def cache_misses(self) -> int:
        return self.cache.misses

    def counters(self) -> dict:
        """Snapshot of the engine's bookkeeping, for reports/benchmarks."""
        return {
            "num_evaluations": self.num_evaluations,
            "num_simulations": self.num_simulations,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_size": len(self.cache),
            "cache_hit_rate": self.cache.hit_rate,
            "executor": self.backend.name,
        }

    def close(self) -> None:
        """Release backend pools (worker threads/processes), if any —
        the engine's own backend plus any cached per-call overrides."""
        self.backend.close()
        for backend in self._override_backends.values():
            backend.close()
        self._override_backends.clear()
