"""The evaluation engine: registry dispatch + memoization + batching.

See the package docstring (:mod:`repro.engine`) for the architecture
overview.  The key design points:

* **Content-addressed keys.**  :func:`evaluation_key` fingerprints the
  *structure* of the evaluation — layer fields (name excluded), mapping
  tiles, and a precomputed digest of (SimulatorConfig, CycleModelParams)
  — so identical work is recognized across layers, sessions and tuner
  runs.  The config/params digest is computed once per engine, keeping
  the per-evaluation key a cheap tuple of scalars.
* **Copy-on-hit.**  Cache hits return an independent
  :class:`~repro.stonne.stats.SimulationStats` with ``layer_name``
  rewritten to the requesting layer's name, so records stay attributable
  even when they were produced by a different layer of the same shape.
* **Thread-pooled batching.**  ``evaluate_many`` fans requests out over
  a thread pool; each worker thread lazily builds its own controller
  (controllers keep internal tallies, e.g. the accumulation buffer's
  write counters, which must not race).
"""

from __future__ import annotations

import hashlib
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, fields
from typing import Hashable, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.stonne.controller import AcceleratorController, make_controller
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS
from repro.stonne.stats import SimulationStats

from repro.engine.cache import StatsCache

Layer = Union[ConvLayer, FcLayer, GemmLayer]
Mapping = Union[ConvMapping, FcMapping]


def fingerprint_config(
    config, params: CycleModelParams, controller_cls: Optional[type] = None
) -> str:
    """Digest of a (SimulatorConfig, CycleModelParams[, controller]) triple.

    Canonical JSON over sorted keys, hashed; any object with ``to_dict``
    (or plain attributes) works, so mock configs fingerprint too.  The
    controller class is part of the digest so hot-swapped registrations
    (same ``controller_type``, different model) never share cache entries.
    """
    if hasattr(config, "to_dict"):
        config_dict = config.to_dict()
    else:  # mock / duck-typed configs
        config_dict = {
            k: str(v) for k, v in vars(config).items() if not k.startswith("_")
        }
    payload = json.dumps(
        {
            "config": config_dict,
            "params": asdict(params),
            "controller": (
                f"{controller_cls.__module__}.{controller_cls.__qualname__}"
                if controller_cls is not None
                else None
            ),
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _layer_key(layer: Layer) -> Tuple:
    """Structural identity of a layer: every field except its name."""
    return tuple(
        getattr(layer, f.name) for f in fields(layer) if f.name != "name"
    )


def evaluation_key(
    config_fingerprint: str, layer: Layer, mapping: Optional[Mapping]
) -> Hashable:
    """The cache key for simulating ``layer`` under ``mapping``."""
    mapping_key = None if mapping is None else mapping.as_tuple()
    return (
        config_fingerprint,
        type(layer).__name__,
        _layer_key(layer),
        type(mapping).__name__ if mapping is not None else None,
        mapping_key,
    )


@dataclass(frozen=True)
class EvalRequest:
    """One unit of work for :meth:`EvaluationEngine.evaluate_many`."""

    layer: Layer
    mapping: Optional[Mapping] = None


class EvaluationEngine:
    """Cached, batched evaluation of one accelerator configuration.

    Args:
        config: Hardware configuration; resolved through the controller
            registry.
        params: Cycle-model calibration constants.
        cache: A shared :class:`StatsCache`; a private one is created
            when omitted.  Sharing a cache across engines is safe — the
            config/params fingerprint is part of every key.
        cache_enabled: When False every evaluation simulates (the cache
            is neither consulted nor populated); counters still track.
        functional: When True every *simulation* also executes the exact
            datapath (im2col GEMM) with synthetic tensors, reproducing
            real STONNE's cost profile where the exact objective requires
            a full simulation.  Statistics are identical either way.
        max_workers: Default thread-pool width for :meth:`evaluate_many`.
    """

    def __init__(
        self,
        config,
        params: CycleModelParams = DEFAULT_PARAMS,
        cache: Optional[StatsCache] = None,
        cache_enabled: bool = True,
        functional: bool = False,
        max_workers: Optional[int] = None,
    ) -> None:
        self.config = config
        self.params = params
        self.cache = cache if cache is not None else StatsCache()
        self.cache_enabled = cache_enabled
        self.functional = functional
        self.max_workers = max_workers
        self.controller: AcceleratorController = make_controller(config, params)
        self.num_evaluations = 0
        self.num_simulations = 0
        self._fingerprint = fingerprint_config(
            config, params, type(self.controller)
        )
        self._counter_lock = threading.Lock()
        self._thread_local = threading.local()

    # ------------------------------------------------------------------
    @property
    def requires_mapping(self) -> bool:
        """Whether the configured architecture consumes dataflow mappings."""
        return self.controller.requires_mapping

    @property
    def fingerprint(self) -> str:
        """Digest identifying this engine's (config, params) pair."""
        return self._fingerprint

    def _local_controller(self) -> AcceleratorController:
        """A per-thread controller (cycle-model tallies must not race).

        Instantiates the class resolved at engine construction rather than
        re-querying the registry, so a later registry hot-swap cannot make
        worker threads disagree with :attr:`controller` or the fingerprint.
        """
        controller = getattr(self._thread_local, "controller", None)
        if controller is None:
            controller = type(self.controller)(self.config, self.params)
            self._thread_local.controller = controller
        return controller

    # ------------------------------------------------------------------
    def _run_functional(self, layer: Layer) -> None:
        """Execute the exact datapath, the expensive part of a real
        STONNE run (outputs are discarded; they never affect stats)."""
        from repro.stonne.simulator import _conv_via_gemm

        if isinstance(layer, ConvLayer):
            data = np.ones((layer.N, layer.C, layer.H, layer.W))
            weights = np.ones((layer.K, layer.C // layer.G, layer.R, layer.S))
            _conv_via_gemm(data, weights, layer)
        elif isinstance(layer, FcLayer):
            data = np.ones((layer.batch, layer.in_features))
            weights = np.ones((layer.out_features, layer.in_features))
            data @ weights.T
        else:
            np.ones((layer.M, layer.K)) @ np.ones((layer.K, layer.N))

    def _simulate(self, layer: Layer, mapping: Optional[Mapping]) -> SimulationStats:
        controller = self._local_controller()
        if isinstance(layer, ConvLayer):
            stats = controller.run_conv(layer, mapping)
        elif isinstance(layer, FcLayer):
            stats = controller.run_fc(layer, mapping)
        else:
            stats = controller.run_gemm(layer)
        if self.functional:
            self._run_functional(layer)
        return stats

    # ------------------------------------------------------------------
    def evaluate(
        self, layer: Layer, mapping: Optional[Mapping] = None
    ) -> SimulationStats:
        """Stats for simulating ``layer`` (cache-first, then simulate)."""
        if not isinstance(layer, (ConvLayer, FcLayer, GemmLayer)):
            raise SimulationError(
                f"EvaluationEngine expects ConvLayer/FcLayer/GemmLayer, "
                f"got {type(layer).__name__}"
            )
        with self._counter_lock:
            self.num_evaluations += 1
        if not self.cache_enabled:
            stats = self._simulate(layer, mapping)
            with self._counter_lock:
                self.num_simulations += 1
            return stats

        key = evaluation_key(self._fingerprint, layer, mapping)
        cached = self.cache.get(key)
        if cached is not None:
            # get() already returned a private copy; just re-attribute it.
            cached.layer_name = layer.name
            return cached
        stats = self._simulate(layer, mapping)
        with self._counter_lock:
            self.num_simulations += 1
        self.cache.put(key, stats)
        return stats

    def evaluate_request(self, request: EvalRequest) -> SimulationStats:
        return self.evaluate(request.layer, request.mapping)

    def evaluate_many(
        self,
        requests: Iterable[Union[EvalRequest, Layer]],
        max_workers: Optional[int] = None,
    ) -> List[SimulationStats]:
        """Evaluate a batch, preserving order.

        Bare layers are accepted as shorthand for mapping-less requests.
        With ``max_workers`` (or the engine default) above 1 the batch
        fans out over a thread pool; otherwise it runs inline.
        """
        normalized: List[EvalRequest] = [
            r if isinstance(r, EvalRequest) else EvalRequest(layer=r)
            for r in requests
        ]
        workers = max_workers if max_workers is not None else self.max_workers
        if not normalized:
            return []
        if workers is None or workers <= 1 or len(normalized) == 1:
            return [self.evaluate_request(r) for r in normalized]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(self.evaluate_request, normalized))

    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return self.cache.hits

    @property
    def cache_misses(self) -> int:
        return self.cache.misses

    def counters(self) -> dict:
        """Snapshot of the engine's bookkeeping, for reports/benchmarks."""
        return {
            "num_evaluations": self.num_evaluations,
            "num_simulations": self.num_simulations,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_size": len(self.cache),
            "cache_hit_rate": self.cache.hit_rate,
        }
