"""Typed report diffing: ``repro report diff a.json b.json``.

Archived reports (``RunReport``/``TuneReport``/``CompareReport``/
``SweepReport`` JSON) become comparable artifacts: :func:`diff_reports`
aligns two of them scenario by scenario and produces per-metric deltas
(cycles, energy, tuning cost), and :attr:`ReportDiff.max_regression`
feeds the ``--fail-on-regression PCT`` CI gate — a branch that slows a
tracked scenario past the threshold fails the pipeline with a distinct
exit code.

Every metric here is *higher-is-worse* (cycles, energy, cost), so a
positive percent delta is a regression and a negative one an
improvement.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ReproError
from repro.session.reports import (
    CompareReport,
    RunReport,
    TuneReport,
    report_from_dict,
)
from repro.sweep.report import SweepReport

AnyReport = Union[RunReport, TuneReport, CompareReport, SweepReport]


def load_report(path: Union[str, Path]) -> AnyReport:
    """Load any archived report JSON, dispatching on its ``kind`` tag."""
    p = Path(path)
    if not p.exists():
        raise ReproError(f"report file not found: {p}")
    try:
        data = json.loads(p.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ReproError(f"invalid JSON in report file {p}: {exc}") from None
    if not isinstance(data, dict):
        raise ReproError(f"report file {p} does not hold a report object")
    if data.get("kind") == "sweep":
        return SweepReport.from_dict(data)
    try:
        return report_from_dict(data)
    except (KeyError, ValueError) as exc:
        raise ReproError(f"cannot parse report file {p}: {exc}") from None


def _report_metrics(report) -> Dict[str, float]:
    """The diffable scalar metrics of one single-scenario report."""
    if isinstance(report, RunReport):
        from repro.stonne.energy import attach_energy

        return {
            "cycles": float(report.total_cycles),
            "energy": float(
                sum(attach_energy(s.clone()).energy for s in report.layer_stats)
            ),
        }
    if isinstance(report, TuneReport):
        return {"best_cost": float(report.best_cost)}
    if isinstance(report, CompareReport):
        metrics: Dict[str, float] = {}
        for scheme in report.schemes:
            metrics[f"cycles[{scheme}]"] = float(
                sum(row["cycles"][scheme] for row in report.rows)
            )
        return metrics
    raise ReproError(
        f"cannot diff report of type {type(report).__name__}"
    )


def _scenario_key(scenario) -> str:
    """The matrix-coordinate identity of one sweep cell.

    Scenarios are matched across reports on their *labels* (kind, model,
    profile, override axes) rather than their raw names, so renaming a
    scenario between two archived sweeps does not break the CI gate.
    Scenarios without labels fall back to the name.
    """
    labels = {k: v for k, v in scenario.labels().items() if v is not None}
    if not labels:
        return scenario.name
    labels["kind"] = scenario.kind
    return json.dumps(labels, sort_keys=True, default=str)


def _as_scenarios(report: AnyReport) -> Dict[str, Any]:
    """Flatten any report into ``{match key: (display name, metrics)}``."""
    if isinstance(report, SweepReport):
        counts: Dict[str, int] = {}
        for scenario in report.scenarios:
            key = _scenario_key(scenario)
            counts[key] = counts.get(key, 0) + 1
        out: Dict[str, Any] = {}
        for scenario in report.scenarios:
            key = _scenario_key(scenario)
            if counts[key] > 1:
                key = scenario.name  # ambiguous coordinates: name decides
            out[key] = (scenario.name, _report_metrics(scenario.report))
        return out
    name = getattr(report, "model", None) or getattr(report, "layer", None)
    return {name or "report": (name or "report", _report_metrics(report))}


def _metric_selected(metric: str, metrics: Optional[List[str]]) -> bool:
    """Whether ``metric`` passes the ``--metric`` filter.  A filter name
    also matches its scheme-qualified forms (``cycles`` selects
    ``cycles[mRNA]``), so compare reports stay filterable."""
    if not metrics:
        return True
    return any(
        metric == name or metric.startswith(name + "[") for name in metrics
    )


@dataclass
class MetricDelta:
    """One metric's before/after pair (higher is worse)."""

    metric: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def percent(self) -> float:
        """Signed percent change; a zero baseline with any growth is an
        infinite regression (it can never pass a finite gate)."""
        if self.before == 0:
            return 0.0 if self.after == 0 else float("inf")
        return (self.after - self.before) / self.before * 100.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "before": self.before,
            "after": self.after,
            "delta": self.delta,
            "percent": self.percent,
        }


@dataclass
class ScenarioDelta:
    """Every metric delta of one scenario present in both reports."""

    name: str
    metrics: List[MetricDelta]

    @property
    def regression_pct(self) -> float:
        return max((m.percent for m in self.metrics), default=0.0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "metrics": [m.to_dict() for m in self.metrics],
        }


def _observability_deltas(before: AnyReport, after: AnyReport) -> Dict[str, Any]:
    """Informational deltas from the two reports' ``metrics`` sections.

    Present only when *both* archives carry a metrics section
    (``--metrics`` runs).  Strictly informational: throughput and hit
    rates depend on the machine, the cache's starting state and the
    executor, so they never feed ``max_regression``/``is_zero`` — the
    CI gate stays a pure measurement gate.
    """
    before_metrics = getattr(before, "metrics", None) or {}
    after_metrics = getattr(after, "metrics", None) or {}
    if not before_metrics or not after_metrics:
        return {}
    readers = (
        ("cache_hit_rate", lambda m: m.get("cache", {}).get("hit_rate")),
        ("simulations_per_s", lambda m: m.get("simulations_per_s")),
        ("wall_s", lambda m: m.get("wall_s")),
    )
    out: Dict[str, Any] = {}
    for name, read in readers:
        b, a = read(before_metrics), read(after_metrics)
        if isinstance(b, (int, float)) and isinstance(a, (int, float)):
            out[name] = {
                "before": float(b),
                "after": float(a),
                "delta": float(a) - float(b),
            }
    return out


@dataclass
class ReportDiff:
    """The typed comparison of two archived reports.

    ``observability`` carries informational metrics deltas (cache hit
    rate, simulations/sec, wall time) when both archives have a
    ``metrics`` section; it is excluded from ``max_regression`` and
    ``is_zero`` so environment-dependent throughput can never trip the
    ``--fail-on-regression`` gate.
    """

    scenarios: List[ScenarioDelta]
    only_before: List[str] = field(default_factory=list)
    only_after: List[str] = field(default_factory=list)
    observability: Dict[str, Any] = field(default_factory=dict)

    @property
    def max_regression(self) -> float:
        """Worst percent increase across every scenario and metric."""
        return max(
            (s.regression_pct for s in self.scenarios), default=0.0
        )

    @property
    def is_zero(self) -> bool:
        """True when both reports describe identical measurements."""
        return (
            not self.only_before
            and not self.only_after
            and all(
                m.delta == 0 for s in self.scenarios for m in s.metrics
            )
        )

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "kind": "report_diff",
            "scenarios": [s.to_dict() for s in self.scenarios],
            "only_before": list(self.only_before),
            "only_after": list(self.only_after),
            "max_regression_percent": self.max_regression,
            "zero": self.is_zero,
        }
        if self.observability:
            data["observability"] = dict(self.observability)
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """Aligned per-scenario metric deltas plus the verdict line."""
        rows = [("scenario", "metric", "before", "after", "delta", "pct")]
        for scenario in self.scenarios:
            for m in scenario.metrics:
                rows.append(
                    (
                        scenario.name,
                        m.metric,
                        f"{m.before:,.0f}",
                        f"{m.after:,.0f}",
                        f"{m.delta:+,.0f}",
                        f"{m.percent:+.2f}%" if m.percent != float("inf")
                        else "+inf%",
                    )
                )
        widths = [max(len(row[i]) for row in rows) for i in range(6)]
        lines = [
            "  ".join(
                cell.ljust(width) if i < 2 else cell.rjust(width)
                for i, (cell, width) in enumerate(zip(row, widths))
            ).rstrip()
            for row in rows
        ]
        lines.insert(1, "  ".join("-" * width for width in widths))
        for name in self.only_before:
            lines.append(f"only in before: {name}")
        for name in self.only_after:
            lines.append(f"only in after: {name}")
        if self.observability:
            parts = []
            pair = self.observability.get("cache_hit_rate")
            if pair:
                parts.append(
                    f"cache hit rate {pair['before']:.1%} -> "
                    f"{pair['after']:.1%}"
                )
            pair = self.observability.get("simulations_per_s")
            if pair:
                parts.append(
                    f"{pair['before']:,.0f} -> {pair['after']:,.0f} "
                    f"simulations/s"
                )
            pair = self.observability.get("wall_s")
            if pair:
                parts.append(
                    f"wall {pair['before']:.2f}s -> {pair['after']:.2f}s"
                )
            if parts:
                lines.append(
                    "observability (informational): " + ", ".join(parts)
                )
        if self.is_zero:
            lines.append("no differences")
        else:
            lines.append(
                f"max regression: {self.max_regression:+.2f}%"
                if self.max_regression != float("inf")
                else "max regression: +inf%"
            )
        return "\n".join(lines)


def diff_reports(
    before: AnyReport,
    after: AnyReport,
    metrics: Optional[List[str]] = None,
) -> ReportDiff:
    """Compare two reports scenario by scenario.

    Sweep scenarios are matched on their matrix labels (kind, model,
    profile, override axes) so a rename between archives still pairs up;
    label-less reports (bare ``RunReport``/``TuneReport``) match by
    name.  Metrics present on both sides are diffed — restricted to
    ``metrics`` when given (``["cycles"]`` gates cycles without gating
    energy) — and scenarios present on only one side are listed
    separately so a silently dropped benchmark cannot read as "no
    regression".
    """
    before_scenarios = _as_scenarios(before)
    after_scenarios = _as_scenarios(after)
    deltas: List[ScenarioDelta] = []
    for key, (name, before_metrics) in before_scenarios.items():
        matched = after_scenarios.get(key)
        if matched is None:
            continue
        after_metrics = matched[1]
        shared = [
            MetricDelta(metric, before_metrics[metric], after_metrics[metric])
            for metric in before_metrics
            if metric in after_metrics and _metric_selected(metric, metrics)
        ]
        deltas.append(ScenarioDelta(name=name, metrics=shared))
    return ReportDiff(
        scenarios=deltas,
        only_before=[
            name for key, (name, _) in before_scenarios.items()
            if key not in after_scenarios
        ],
        only_after=[
            name for key, (name, _) in after_scenarios.items()
            if key not in before_scenarios
        ],
        observability=_observability_deltas(before, after),
    )
