"""Scenario matrices: *what* a sweep evaluates, as first-class objects.

The paper's core experiment is a cross-product — DNN models × accelerator
configurations × mapping spaces — yet scripting that product by hand (one
``repro run`` per cell) loses cross-run caching and never saturates the
executor tiers.  :class:`Scenario` names one resolved cell (a
:class:`~repro.session.SessionConfig` plus a workload reference) and
:class:`SweepPlan` expands the matrix::

    plan = SweepPlan.matrix(
        base_config,
        models=["mlp", "lenet"],
        profiles=load_profiles("repro.toml"),      # [profile.edge] / [profile.cloud]
        axes={"architecture.ms_size": [64, 128]},  # any config knob, dotted or flat
    )
    report = session.sweep(plan)                   # -> SweepReport

Axis keys use either the flat spelling (``ms_size``) or the dotted
``section.name`` form; values pass through the config's own coercion
rules, so CLI strings and Python literals behave identically.  Every
expanded cell carries its labels (model, profile, axis assignments) for
:meth:`~repro.sweep.report.SweepReport.filter` and report diffing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError, ReproError
from repro.session.config import SessionConfig, _SPECS_BY_KEY, field_specs

#: Scenario kinds the sweep runner knows how to execute.
SCENARIO_KINDS = ("run", "tune", "compare")


def resolve_axis_key(key: str) -> str:
    """Normalize an axis key to its flat config spelling.

    Accepts the flat key (``ms_size``, ``cache_path``) or the dotted
    ``section.name`` form (``architecture.ms_size``).
    """
    if key in _SPECS_BY_KEY:
        return key
    if "." in key:
        section, _, name = key.partition(".")
        for spec in field_specs():
            if spec.section == section and spec.name == name:
                return spec.key
    raise ConfigError(
        f"unknown sweep axis {key!r}; use a flat config key "
        f"({', '.join(_SPECS_BY_KEY)}) or the dotted section.name form"
    )


@dataclass(frozen=True)
class Scenario:
    """One named cell of a sweep matrix: a resolved config + workload.

    Attributes:
        name: Unique label within the plan (``mlp/edge/ms_size=64``).
        config: The fully-resolved :class:`SessionConfig` for this cell.
        model: Zoo model name, or None when ``target`` carries a bare
            layer descriptor.
        kind: What to do with the workload — ``run`` (simulate every
            layer), ``tune`` (tune one layer's mapping) or ``compare``
            (the Figure 12 mapping-scheme comparison).
        layer: Layer name for ``tune`` scenarios on zoo models.
        profile: The config profile this cell was expanded from, if any.
        overrides: Axis assignments applied to this cell, as
            ``(flat_key, value)`` pairs in axis order.
        target: A bare layer descriptor standing in for (model, layer) —
            the adapter used by ``Session.tune(conv_layer)``.  Not part
            of equality or serialized labels.
    """

    name: str
    config: SessionConfig
    model: Optional[str] = None
    kind: str = "run"
    layer: Optional[str] = None
    profile: Optional[str] = None
    overrides: Tuple[Tuple[str, Any], ...] = ()
    target: Optional[Any] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ConfigError(
                f"scenario kind must be one of {SCENARIO_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.model is None and self.target is None:
            raise ConfigError(
                f"scenario {self.name!r} names neither a zoo model nor a "
                f"bare layer target"
            )
        if self.kind == "tune" and self.layer is None and self.target is None:
            raise ConfigError(
                f"tune scenario {self.name!r} must name a layer"
            )

    def labels(self) -> Dict[str, Any]:
        """The cell's coordinates in the matrix, for filtering/reports."""
        labels: Dict[str, Any] = {"model": self.model}
        if self.profile is not None:
            labels["profile"] = self.profile
        labels.update(self.overrides)
        return labels


@dataclass(frozen=True)
class SweepPlan:
    """An ordered, validated set of scenarios to execute as one sweep."""

    scenarios: Tuple[Scenario, ...]

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ConfigError("a SweepPlan needs at least one scenario")
        seen = set()
        for scenario in self.scenarios:
            if scenario.name in seen:
                raise ConfigError(
                    f"duplicate scenario name {scenario.name!r} in sweep plan"
                )
            seen.add(scenario.name)

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self):
        return iter(self.scenarios)

    # ------------------------------------------------------------------
    @classmethod
    def single(
        cls,
        config: SessionConfig,
        model: Optional[str] = None,
        kind: str = "run",
        layer: Optional[str] = None,
        target: Optional[Any] = None,
        name: Optional[str] = None,
    ) -> "SweepPlan":
        """A one-cell plan — how ``Session.run/tune/compare`` execute."""
        if name is None:
            name = model if model is not None else getattr(
                target, "name", "scenario"
            )
        return cls(
            scenarios=(
                Scenario(
                    name=name,
                    config=config,
                    model=model,
                    kind=kind,
                    layer=layer,
                    target=target,
                ),
            )
        )

    @classmethod
    def matrix(
        cls,
        base: SessionConfig,
        models: Sequence[str],
        profiles: Optional[Mapping[str, Mapping[str, Any]]] = None,
        axes: Optional[Mapping[str, Sequence[Any]]] = None,
        kind: str = "run",
        layer: Optional[str] = None,
    ) -> "SweepPlan":
        """Expand models × profiles × axis values into scenarios.

        Args:
            base: The resolved base config every cell derives from.
            models: Zoo model names (validated eagerly).
            profiles: ``{name: nested section overlay}`` — the shape
                :func:`repro.session.load_profiles` returns.  Omitted
                or empty means one unnamed profile (the base itself).
            axes: ``{config key: [values]}``; keys may be flat or
                dotted ``section.name``, values are coerced by the
                config's own rules.  The cross-product of every axis is
                taken.
            kind: Scenario kind applied to every cell.
            layer: Layer name for ``tune`` matrices.

        Expansion order is models (outer) → profiles → axis
        combinations, so reports group naturally by model.
        """
        from repro.zoo import zoo_models

        models = list(models)
        if not models:
            raise ConfigError("a sweep matrix needs at least one model")
        known = zoo_models()
        for model in models:
            if model not in known:
                raise ReproError(
                    f"unknown model {model!r}; expected one of {known}"
                )
        profile_items = (
            list(profiles.items()) if profiles else [(None, None)]
        )
        axes = axes or {}
        axis_keys = [resolve_axis_key(key) for key in axes]
        if len(set(axis_keys)) != len(axis_keys):
            raise ConfigError(f"duplicate sweep axis in {list(axes)!r}")
        axis_values = [list(values) for values in axes.values()]
        for key, values in zip(axis_keys, axis_values):
            if not values:
                raise ConfigError(f"sweep axis {key!r} has no values")

        scenarios = []
        for model in models:
            for profile_name, overlay in profile_items:
                profiled = (
                    base.merged_with_dict(overlay) if overlay else base
                )
                for combo in itertools.product(*axis_values):
                    config = (
                        profiled.with_overrides(**dict(zip(axis_keys, combo)))
                        if combo
                        else profiled
                    )
                    # Labels carry the *coerced* value (what the config
                    # actually uses), so "64" from a CLI axis and 64
                    # from Python expand to the same scenario name.
                    assignments = tuple(
                        (key, config.to_flat()[key]) for key in axis_keys
                    )
                    parts = [model]
                    if profile_name is not None:
                        parts.append(profile_name)
                    parts.extend(f"{key}={value}" for key, value in assignments)
                    scenarios.append(
                        Scenario(
                            name="/".join(parts),
                            config=config,
                            model=model,
                            kind=kind,
                            layer=layer,
                            profile=profile_name,
                            overrides=assignments,
                        )
                    )
        return cls(scenarios=tuple(scenarios))
