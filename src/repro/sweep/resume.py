"""Sweep resume: skip scenarios an archived report already answered.

A week-long matrix that dies at cell 37 should not re-simulate cells
1–36.  :func:`scenario_fingerprint` hashes the *resolved* inputs that
determine a cell's report — the result-determining sections of its
:class:`~repro.session.SessionConfig` (:func:`result_config`) plus the
workload reference (model, kind, layer) — so resume matching is
semantic, not positional: renamed scenarios still match, reconfigured
ones never do, and environmental differences (executor choice, cache
paths, fleet wiring, a rotated ``fleet.secret``) never invalidate a
match.  :func:`split_resume` partitions a new plan against an archived
:class:`~repro.sweep.report.SweepReport` into the scenarios that must
still run and the results that carry over (re-labelled to the new
plan's coordinates).

Archives written before hashes existed carry no ``config_hash`` and are
never matched — resume degrades to a full run, never to a wrong reuse.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

from repro.sweep.plan import Scenario, SweepPlan
from repro.sweep.report import ScenarioResult, SweepReport


def result_config(config) -> Dict[str, Dict[str, object]]:
    """The sections of a resolved config that determine a scenario's
    results: the architecture, the engine's ``functional`` flag, and the
    tuning section.

    Environmental knobs — executor choice and pool sizing, cache paths
    and bounds, fleet wiring and ``fleet.secret``, observability — are
    excluded: they change where and how fast a scenario runs, never what
    it reports (the sweep runner reads them from the driving session,
    not the scenario).  Keeping them out means resume fingerprints
    survive environment changes, and nothing secret ever lands in an
    archive or a wire frame.
    """
    full = config.to_dict()
    return {
        "architecture": full["architecture"],
        "engine": {"functional": full["engine"]["functional"]},
        "tuning": full["tuning"],
    }


def scenario_fingerprint(scenario: Scenario) -> Optional[str]:
    """The resolved-config hash identifying a scenario's result.

    Covers everything that determines the cell's report: the
    result-determining config sections (:func:`result_config`) and the
    workload reference.  Labels (name, profile, overrides) and
    environmental knobs are deliberately excluded — two cells that
    resolve to the same hardware+workload produce the same report,
    however they were spelled in the matrix and wherever they ran.

    Returns None for target-bearing scenarios (bare layer descriptors
    have no stable serialized form), which therefore never resume.
    """
    if scenario.target is not None:
        return None
    payload = {
        "config": result_config(scenario.config),
        "model": scenario.model,
        "kind": scenario.kind,
        "layer": scenario.layer,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def split_resume(
    plan: SweepPlan, archive: SweepReport
) -> Tuple[List[Scenario], Dict[str, ScenarioResult]]:
    """Partition ``plan`` against ``archive`` into (pending, reused).

    ``pending`` keeps plan order; ``reused`` maps scenario *name* (from
    the new plan) to the archived result re-labelled to the new cell's
    coordinates, so the merged report reads as if the whole plan ran.
    Each archived result is consumed at most once.
    """
    by_hash: Dict[str, ScenarioResult] = {}
    for result in archive.scenarios:
        if result.config_hash and result.config_hash not in by_hash:
            by_hash[result.config_hash] = result

    pending: List[Scenario] = []
    reused: Dict[str, ScenarioResult] = {}
    for scenario in plan.scenarios:
        fingerprint = scenario_fingerprint(scenario)
        archived = by_hash.pop(fingerprint, None) if fingerprint else None
        if archived is None:
            pending.append(scenario)
            continue
        reused[scenario.name] = ScenarioResult(
            name=scenario.name,
            kind=scenario.kind,
            report=archived.report,
            model=scenario.model,
            profile=scenario.profile,
            overrides=dict(scenario.overrides),
            config_hash=fingerprint,
        )
    return pending, reused


__all__ = ["result_config", "scenario_fingerprint", "split_resume"]
