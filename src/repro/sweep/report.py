"""Typed, diffable results of a scenario-matrix sweep.

:class:`SweepReport` maps every executed :class:`~repro.sweep.plan.Scenario`
to its single-scenario report (:class:`~repro.session.RunReport`,
:class:`~repro.session.TuneReport` or :class:`~repro.session.CompareReport`)
plus the sweep-scoped engine counters — ``num_simulations`` here is the
proof that cross-scenario dedup worked.  Reports are plain data:
``to_json``/``from_json`` round-trip bit-identically, ``summary()``
renders the tabular view, and ``best()``/``filter()`` answer the two
questions every sweep ends with ("which cell won?", "show me the edge
rows").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import ReproError
from repro.session.reports import (
    CompareReport,
    RunReport,
    TuneReport,
    report_from_dict,
)


def scenario_metric(report, metric: str) -> Optional[float]:
    """Extract one scalar metric from a single-scenario report.

    ``total_cycles``/``cycles`` and ``total_psums``/``psums`` read run
    reports, ``energy`` sums the per-layer energy model over a run, and
    ``best_cost``/``cost`` reads tune reports.  Returns None when the
    report kind does not carry the metric (a compare scenario has no
    single total), so mixed-kind sweeps rank only the comparable cells.
    """
    if isinstance(report, RunReport):
        if metric in ("total_cycles", "cycles"):
            return float(report.total_cycles)
        if metric in ("total_psums", "psums"):
            return float(report.total_psums)
        if metric == "energy":
            from repro.stonne.energy import attach_energy

            return float(
                sum(attach_energy(s.clone()).energy for s in report.layer_stats)
            )
        return None
    if isinstance(report, TuneReport):
        if metric in ("best_cost", "cost"):
            return float(report.best_cost)
        return None
    return None


@dataclass
class ScenarioResult:
    """One executed sweep cell: its matrix coordinates plus its report.

    ``config_hash`` is the scenario's resolved-config fingerprint
    (:func:`repro.sweep.resume.scenario_fingerprint`), stamped at
    execution time — it is what ``--resume`` matches an archived cell
    against a new plan with, so renamed scenarios still resume and
    reconfigured ones never do.  Archives predating it (no hash) are
    simply never matched.
    """

    name: str
    kind: str
    report: Any  # RunReport | TuneReport | CompareReport
    model: Optional[str] = None
    profile: Optional[str] = None
    overrides: Dict[str, Any] = field(default_factory=dict)
    config_hash: Optional[str] = None

    def labels(self) -> Dict[str, Any]:
        labels: Dict[str, Any] = {"model": self.model}
        if self.profile is not None:
            labels["profile"] = self.profile
        labels.update(self.overrides)
        return labels

    def metric(self, name: str = "total_cycles") -> Optional[float]:
        return scenario_metric(self.report, name)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "kind": self.kind,
            "model": self.model,
            "profile": self.profile,
            "overrides": dict(self.overrides),
            "report": self.report.to_dict(),
        }
        if self.config_hash is not None:
            data["config_hash"] = self.config_hash
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioResult":
        return cls(
            name=data["name"],
            kind=data.get("kind", "run"),
            report=report_from_dict(data["report"]),
            model=data.get("model"),
            profile=data.get("profile"),
            overrides=dict(data.get("overrides", {})),
            config_hash=data.get("config_hash"),
        )


@dataclass
class SweepReport:
    """The full result of one :meth:`repro.session.Session.sweep` call.

    Attributes:
        scenarios: One :class:`ScenarioResult` per plan scenario, in
            plan order.
        counters: Sweep-scoped engine bookkeeping deltas —
            ``num_evaluations``, ``num_simulations`` (the dedup proof),
            ``cache_hits``/``cache_misses`` across every engine the
            sweep touched.
        metrics: Observability section (``--metrics``): wall time,
            simulations/sec, per-tier cache hit rates, scheduler
            chunk-latency histogram, fleet worker health.  Empty unless
            metrics were enabled; omitted from the JSON form when
            empty, so metrics-less archives stay byte-stable.
    """

    scenarios: List[ScenarioResult]
    counters: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[ScenarioResult]:
        return iter(self.scenarios)

    def __getitem__(self, name: str) -> Any:
        """The single-scenario report for ``name`` (``report["mlp/edge"]``)."""
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario.report
        raise KeyError(
            f"no scenario {name!r} in this sweep; "
            f"scenarios: {', '.join(self.names)}"
        )

    @property
    def names(self) -> List[str]:
        return [scenario.name for scenario in self.scenarios]

    @property
    def reports(self) -> Dict[str, Any]:
        """``{scenario name: report}`` in plan order."""
        return {s.name: s.report for s in self.scenarios}

    # ------------------------------------------------------------------
    def best(self, metric: str = "total_cycles") -> ScenarioResult:
        """The scenario minimizing ``metric`` (cells without it are
        skipped; an all-incomparable sweep raises)."""
        ranked = [
            (value, scenario)
            for scenario in self.scenarios
            if (value := scenario.metric(metric)) is not None
        ]
        if not ranked:
            raise ReproError(
                f"no scenario in this sweep carries metric {metric!r}"
            )
        return min(ranked, key=lambda pair: pair[0])[1]

    def filter(
        self,
        predicate: Optional[Callable[[ScenarioResult], bool]] = None,
        **labels: Any,
    ) -> "SweepReport":
        """A sub-report of the scenarios matching every criterion.

        ``labels`` match the cell's matrix coordinates
        (``filter(model="mlp")``, ``filter(profile="edge")``, any axis
        key); ``predicate`` is an arbitrary test on the
        :class:`ScenarioResult`.
        """
        kept = []
        for scenario in self.scenarios:
            cell = scenario.labels()
            if any(
                key not in cell or cell[key] != value
                for key, value in labels.items()
            ):
                continue
            if predicate is not None and not predicate(scenario):
                continue
            kept.append(scenario)
        return SweepReport(
            scenarios=kept,
            counters=dict(self.counters),
            metrics=dict(self.metrics),
        )

    # ------------------------------------------------------------------
    def summary(self, metric: str = "total_cycles") -> str:
        """Aligned table: one row per scenario plus the dedup counters."""
        rows = [("scenario", "kind", metric)]
        for scenario in self.scenarios:
            value = scenario.metric(metric)
            rows.append(
                (
                    scenario.name,
                    scenario.kind,
                    f"{value:,.0f}" if value is not None else "-",
                )
            )
        widths = [max(len(row[i]) for row in rows) for i in range(3)]
        lines = [
            "  ".join(
                cell.ljust(width) if i < 2 else cell.rjust(width)
                for i, (cell, width) in enumerate(zip(row, widths))
            ).rstrip()
            for row in rows
        ]
        lines.insert(1, "  ".join("-" * width for width in widths))
        if self.counters:
            lines.append(
                "sweep: {scenarios} scenarios, "
                "{num_evaluations} evaluations, "
                "{num_simulations} simulations, "
                "{cache_hits} cache hits".format(
                    scenarios=len(self.scenarios),
                    num_evaluations=self.counters.get("num_evaluations", 0),
                    num_simulations=self.counters.get("num_simulations", 0),
                    cache_hits=self.counters.get("cache_hits", 0),
                )
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = {
            "kind": "sweep",
            "scenarios": [scenario.to_dict() for scenario in self.scenarios],
            "counters": dict(self.counters),
        }
        if self.metrics:
            data["metrics"] = dict(self.metrics)
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepReport":
        return cls(
            scenarios=[
                ScenarioResult.from_dict(entry)
                for entry in data.get("scenarios", [])
            ],
            counters=dict(data.get("counters", {})),
            metrics=dict(data.get("metrics", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        return cls.from_dict(json.loads(text))


__all__ = [
    "CompareReport",
    "RunReport",
    "ScenarioResult",
    "SweepReport",
    "TuneReport",
    "scenario_metric",
]
