"""repro.sweep — scenario matrices as the top of the measurement API.

The paper's experiments are cross-products (models × accelerator
configurations × mapping spaces); this package makes that product a
first-class object instead of a shell loop:

* :class:`Scenario` — one named cell: a resolved
  :class:`~repro.session.SessionConfig` plus a workload reference;
* :class:`SweepPlan` — matrix expansion of models × config profiles ×
  axis overrides (``SweepPlan.matrix(base, models, profiles, axes)``);
* :class:`~repro.sweep.runner.SweepRunner` — planned cross-scenario
  execution: all scenarios sharing a hardware config flatten into one
  engine batch, so shared layers simulate once and the process/fleet
  tiers stay saturated across the whole matrix
  (:meth:`repro.session.Session.sweep` is the public entry point);
* :class:`SweepReport` — typed results (scenario → run/tune/compare
  report) with JSON round-tripping, ``summary()``, ``best()`` and
  ``filter()``;
* :func:`diff_reports` / :func:`load_report` — typed deltas between
  archived reports, the engine behind ``repro report diff`` and its
  ``--fail-on-regression`` CI gate.

Typical use::

    from repro.session import Session, load_profiles
    from repro.sweep import SweepPlan

    with Session.from_file("repro.toml") as s:
        plan = SweepPlan.matrix(
            s.config,
            models=["mlp", "lenet"],
            profiles=load_profiles("repro.toml"),
            axes={"architecture.ms_size": [64, 128]},
        )
        report = s.sweep(plan)
        print(report.summary())
        print(report.best().name)
"""

from repro.sweep.diff import (
    MetricDelta,
    ReportDiff,
    ScenarioDelta,
    diff_reports,
    load_report,
)
from repro.sweep.plan import (
    SCENARIO_KINDS,
    Scenario,
    SweepPlan,
    resolve_axis_key,
)
from repro.sweep.report import ScenarioResult, SweepReport, scenario_metric
from repro.sweep.resume import (
    result_config,
    scenario_fingerprint,
    split_resume,
)
from repro.sweep.runner import SweepRunner

__all__ = [
    "MetricDelta",
    "ReportDiff",
    "SCENARIO_KINDS",
    "Scenario",
    "ScenarioDelta",
    "ScenarioResult",
    "SweepPlan",
    "SweepReport",
    "SweepRunner",
    "diff_reports",
    "load_report",
    "resolve_axis_key",
    "result_config",
    "scenario_fingerprint",
    "scenario_metric",
    "split_resume",
]
