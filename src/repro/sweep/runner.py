"""Planned cross-scenario execution: one engine batch per hardware config.

The runner is what makes a sweep cheaper than the equivalent shell loop.
For every scenario it *plans* the evaluations first
(:meth:`~repro.engine.EvaluationEngine.plan_many` resolves cache hits and
collects pending misses), then flattens the plans of **all** scenarios
that share a hardware configuration into one
:meth:`~repro.engine.EvaluationEngine.run_plans` batch:

* cross-scenario key dedup — a layer shared by several scenarios (two
  profiles of the same model, two models with a common shape) simulates
  exactly once;
* tier saturation — the process pool / fleet sees the union of every
  scenario's misses as a single wide batch instead of one small batch
  per run.

Resource sharing is strict: every engine the sweep materializes uses the
driving session's stats cache and executor backend, so a shared
``.sqlite`` cache path and one process pool serve the whole matrix.
Engines are keyed by their config fingerprint — scenarios that differ
only in non-hardware knobs (tuning budget, cache bounds, executor hints)
reuse one engine and therefore one key space.

``Session.run``/``tune``/``compare`` construct single-scenario plans and
execute through this same runner, so there is exactly one measurement
path to maintain.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SweepCancelled, TuningError
from repro.obs.trace import TRACER
from repro.session.reports import CompareReport, RunReport, TuneReport
from repro.sweep.plan import Scenario, SweepPlan
from repro.sweep.report import ScenarioResult, SweepReport
from repro.sweep.resume import scenario_fingerprint, split_resume

#: Counter keys aggregated per engine into the sweep-scoped delta.
_ENGINE_COUNTERS = ("num_evaluations", "num_simulations")
_CACHE_COUNTERS = ("cache_hits", "cache_misses")


class SweepRunner:
    """Executes a :class:`SweepPlan` against one driving session.

    ``progress``, when given, is called with one event dict per
    milestone (``start``, ``plan``, ``execute``, ``scenario``, ``done``)
    — the hook the sweep service streams to watching clients.  Events
    double as cancellation checkpoints: a callback that raises
    :class:`~repro.errors.SweepCancelled` aborts the sweep between
    scenarios, and the exception is re-raised with ``partial`` set to a
    :class:`SweepReport` of everything finished so far (resumable via
    ``--resume``).
    """

    def __init__(self, session, progress=None) -> None:
        self.session = session
        self._progress = progress
        #: Engines by (fingerprint, functional); seeded with the
        #: session's own so single-scenario sweeps are bit-identical to
        #: the pre-sweep entry points.
        self._engines: Dict[Tuple[str, bool], Any] = {
            (session.engine.fingerprint, session.engine.functional):
                session.engine
        }
        self._sim_configs: Dict[Tuple[str, bool], Tuple[Any, List[str]]] = {
            (session.engine.fingerprint, session.engine.functional):
                (session.simulator_config, session.corrections)
        }
        #: MappingConfigurators by (engine fingerprint, tuning section).
        self._mappers: Dict[Tuple[str, Any], Any] = {
            (session.engine.fingerprint, session.config.tuning):
                session.mappings
        }

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def _engine_for(self, scenario: Scenario):
        """The (engine, simulator_config) pair executing ``scenario``.

        Scenarios whose architecture section (and functional flag) match
        the driving session reuse its engine — which also honours a
        hand-built ``Session(simulator_config=...)``.  Anything else
        builds a hardware config from the scenario's architecture
        section and reuses an engine per fingerprint, always sharing the
        session's cache and executor backend.
        """
        from repro.engine import EvaluationEngine

        session = self.session
        config = scenario.config
        if (
            config.architecture == session.config.architecture
            and config.engine.functional == session.config.engine.functional
        ):
            return session.engine, session.simulator_config

        sim_config, corrections = config.build_simulator_config()
        engine = EvaluationEngine(
            sim_config,
            session.params,
            cache=session.engine.cache,
            executor=session.engine.backend,
            max_workers=session.config.engine.max_workers,
            functional=config.engine.functional,
            chunk_size=session.config.engine.chunk_size,
            steal_deadline=session.config.engine.steal_deadline,
        )
        key = (engine.fingerprint, engine.functional)
        if key in self._engines:
            # Same hardware as an earlier scenario: share its engine (and
            # key space).  The probe engine holds no resources of its own
            # — the backend instance above is the session's.
            return self._engines[key], self._sim_configs[key][0]
        self._engines[key] = engine
        self._sim_configs[key] = (sim_config, corrections)
        return engine, sim_config

    def _mapper_for(self, scenario: Scenario, engine, sim_config):
        """One MappingConfigurator per (hardware, tuning section)."""
        from repro.bifrost.mapping_config import (
            MappingConfigurator,
            MappingStrategy,
        )

        tuning = scenario.config.tuning
        key = (engine.fingerprint, tuning)
        mapper = self._mappers.get(key)
        if mapper is None:
            mapper = MappingConfigurator(
                config=sim_config,
                strategy=MappingStrategy(tuning.mapping),
                objective=tuning.objective,
                tuner_trials=tuning.trials,
                tuner_early_stopping=tuning.early_stopping,
                seed=tuning.seed,
                engine=engine,
            )
            self._mappers[key] = mapper
        return mapper

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self, plan: SweepPlan, resume: Optional[SweepReport] = None
    ) -> SweepReport:
        """Run every scenario, batching run-kind evaluations per engine.

        ``resume`` is an archived :class:`SweepReport`: scenarios whose
        resolved-config hash matches an archived cell adopt its report
        instead of re-running (``counters["resumed_scenarios"]`` counts
        them).
        """
        with TRACER.span(
            "sweep.execute", category="sweep", scenarios=len(plan.scenarios)
        ):
            return self._execute(plan, resume)

    # ------------------------------------------------------------------
    # progress / cancellation
    # ------------------------------------------------------------------
    def _emit(
        self,
        event: Dict[str, Any],
        plan: SweepPlan,
        completed: Dict[str, ScenarioResult],
    ) -> None:
        """Deliver one progress event; translate a callback's
        :class:`SweepCancelled` into one carrying the partial report."""
        if self._progress is None:
            return
        try:
            self._progress(dict(event))
        except SweepCancelled as exc:
            if exc.partial is None:
                exc.partial = self._partial_report(plan, completed)
            raise

    def _partial_report(
        self, plan: SweepPlan, completed: Dict[str, ScenarioResult]
    ) -> SweepReport:
        """The resumable report of everything finished at cancel time."""
        scenarios = [
            completed[s.name] for s in plan.scenarios if s.name in completed
        ]
        return SweepReport(
            scenarios=scenarios,
            counters={"scenarios": len(scenarios), "cancelled": True},
        )

    def _execute(
        self, plan: SweepPlan, resume: Optional[SweepReport] = None
    ) -> SweepReport:
        from repro.engine import EvalRequest
        from repro.session.session import zoo_layers

        started = time.perf_counter()
        tier_baseline = self._tier_counters()
        baseline = {
            id(engine): {k: getattr(engine, k) for k in _ENGINE_COUNTERS}
            for engine in self._engines.values()
        }
        cache = self.session.engine.cache
        cache_baseline = {k: getattr(cache, k.split("_", 1)[1])
                          for k in _CACHE_COUNTERS}

        if resume is not None:
            pending, reused = split_resume(plan, resume)
        else:
            pending, reused = list(plan.scenarios), {}
        total = len(plan.scenarios)
        completed: Dict[str, ScenarioResult] = dict(reused)

        self._emit(
            {
                "event": "start",
                "total": total,
                "pending": len(pending),
                "resumed": len(reused),
            },
            plan, completed,
        )
        for name in reused:
            self._emit(
                {"event": "scenario", "name": name, "status": "resumed",
                 "completed": len(reused), "total": total},
                plan, completed,
            )

        # Phase 1: plan every run-kind scenario (cache hits resolve now,
        # misses stay pending) so phase 2 can flatten across scenarios.
        entries: List[Tuple[Scenario, Any, Any, Any]] = []
        batches: Dict[int, Tuple[Any, List[Any]]] = {}
        for scenario in pending:
            self._emit(
                {"event": "plan", "name": scenario.name,
                 "completed": len(completed), "total": total},
                plan, completed,
            )
            engine, sim_config = self._engine_for(scenario)
            batch_plan = None
            if scenario.kind == "run":
                mapper = self._mapper_for(scenario, engine, sim_config)
                requests = []
                for layer in zoo_layers(scenario.model):
                    mapping = (
                        mapper.mapping_for(layer)
                        if engine.requires_mapping
                        else None
                    )
                    requests.append(EvalRequest(layer=layer, mapping=mapping))
                with TRACER.span(
                    "sweep.plan", category="sweep", scenario=scenario.name
                ):
                    batch_plan = engine.plan_many(requests)
                engine_id = id(engine)
                if engine_id not in batches:
                    batches[engine_id] = (engine, [])
                batches[engine_id][1].append(batch_plan)
            entries.append((scenario, engine, sim_config, batch_plan))

        # Phase 2: every engine group through one work-stealing queue —
        # cross-scenario duplicates simulate once, engine groups overlap
        # instead of running back to back, and fast executor slots steal
        # the tail of slow ones' load.  (Single-slot backends fall back
        # to one static batch per group inside run_plan_groups.)
        from repro.engine.scheduler import run_plan_groups

        self._emit(
            {"event": "execute", "pending": len(entries),
             "completed": len(completed), "total": total},
            plan, completed,
        )
        scheduler_report = run_plan_groups(list(batches.values()))

        # Phase 3: assemble per-scenario reports (tune/compare scenarios
        # execute here, still through the shared engines and cache).
        for scenario, engine, sim_config, batch_plan in entries:
            if scenario.kind == "run":
                # Counters are scenario-scoped (this plan's hits/misses),
                # not the engine's cumulative snapshot — in a batched
                # sweep the engine numbers describe the whole matrix and
                # would repeat identically on every scenario.
                report: Any = RunReport(
                    model=scenario.model,
                    architecture=str(sim_config.controller_type.value),
                    layer_stats=list(batch_plan.results),
                    counters={
                        **batch_plan.counters(),
                        "executor": engine.backend.name,
                        "scheduler": dict(scheduler_report),
                    },
                )
            elif scenario.kind == "tune":
                report = self._tune_scenario(scenario, engine, sim_config)
            else:
                report = self._compare_scenario(scenario, engine, sim_config)
            completed[scenario.name] = ScenarioResult(
                name=scenario.name,
                kind=scenario.kind,
                report=report,
                model=scenario.model,
                profile=scenario.profile,
                overrides=dict(scenario.overrides),
                config_hash=scenario_fingerprint(scenario),
            )
            self._emit(
                {"event": "scenario", "name": scenario.name, "status": "done",
                 "kind": scenario.kind, "completed": len(completed),
                 "total": total},
                plan, completed,
            )

        results = [completed[s.name] for s in plan.scenarios]

        counters: Dict[str, Any] = {"scenarios": len(plan.scenarios)}
        if reused:
            counters["resumed_scenarios"] = len(reused)
        for key in _ENGINE_COUNTERS:
            counters[key] = sum(
                getattr(engine, key) - baseline.get(id(engine), {}).get(key, 0)
                for engine in self._engines.values()
            )
        for key in _CACHE_COUNTERS:
            counters[key] = (
                getattr(cache, key.split("_", 1)[1]) - cache_baseline[key]
            )
        counters["scheduler"] = dict(scheduler_report)

        obs = self.session.config.observability
        metrics: Dict[str, Any] = {}
        if obs.metrics or obs.trace:
            # Built for either flag: --metrics attaches it to the
            # reports, --trace embeds it in the trace document (so the
            # summary's hit-rate lines work without --metrics).
            built = self._build_metrics(
                counters,
                wall_s=time.perf_counter() - started,
                tier_baseline=tier_baseline,
            )
            self.session._last_metrics = dict(built)
            if obs.metrics:
                metrics = built
                for result in results:
                    if result.kind == "run":
                        result.report.metrics = dict(metrics)
        report = SweepReport(
            scenarios=results, counters=counters, metrics=metrics
        )
        self._emit(
            {"event": "done", "completed": len(results), "total": total},
            plan, completed,
        )
        return report

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _tier_counters(self) -> Dict[str, int]:
        """The shared cache's per-tier counters (zeros for duck caches)."""
        tiers = getattr(self.session.engine.cache, "tier_counters", None)
        return dict(tiers()) if callable(tiers) else {}

    def _build_metrics(
        self,
        counters: Dict[str, Any],
        wall_s: float,
        tier_baseline: Dict[str, int],
    ) -> Dict[str, Any]:
        """The report's ``metrics`` section for this sweep.

        Everything here is a *sweep-scoped delta* except the backend
        snapshot, which is cumulative over the backend's lifetime (a
        shared pool may have served earlier sweeps of the same session).
        """
        sims = counters.get("num_simulations", 0)
        hits = counters.get("cache_hits", 0)
        misses = counters.get("cache_misses", 0)
        lookups = hits + misses
        tiers_now = self._tier_counters()
        tier_delta = {
            key: value - tier_baseline.get(key, 0)
            for key, value in tiers_now.items()
        }
        metrics: Dict[str, Any] = {
            "wall_s": wall_s,
            "evaluations": counters.get("num_evaluations", 0),
            "simulations": sims,
            "simulations_per_s": sims / wall_s if wall_s > 0 else 0.0,
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / lookups if lookups else 0.0,
                "tiers": tier_delta,
            },
            "scheduler": dict(counters.get("scheduler", {})),
        }
        backend = self.session.engine.backend
        registry = getattr(backend, "metrics", None)
        if registry is not None and hasattr(registry, "snapshot"):
            metrics["backend"] = registry.snapshot()
        return metrics

    # ------------------------------------------------------------------
    # scenario kinds beyond plain runs
    # ------------------------------------------------------------------
    def _tune_scenario(
        self, scenario: Scenario, engine, sim_config
    ) -> TuneReport:
        """Tune one layer's mapping under the scenario's tuning config."""
        from repro.session.session import zoo_layers
        from repro.stonne.layer import ConvLayer
        from repro.tuner import (
            GATuner,
            GridSearchTuner,
            MaeriConvTask,
            MaeriFcTask,
            RandomTuner,
            XGBTuner,
        )

        target = scenario.target
        if target is None:
            layers = {l.name: l for l in zoo_layers(scenario.model)}
            if scenario.layer not in layers:
                raise TuningError(
                    f"model {scenario.model!r} has no layer "
                    f"{scenario.layer!r}; choose from {sorted(layers)}"
                )
            target = layers[scenario.layer]
        tuning = scenario.config.tuning
        if isinstance(target, ConvLayer):
            task = MaeriConvTask(
                target, sim_config, objective=tuning.objective, engine=engine,
            )
        else:
            task = MaeriFcTask(
                target, sim_config, objective=tuning.objective, engine=engine,
            )
        tuners = {
            "grid": GridSearchTuner,
            "random": RandomTuner,
            "ga": GATuner,
            "xgb": XGBTuner,
        }
        if tuning.tuner not in tuners:
            raise TuningError(
                f"tuner must be one of {sorted(tuners)}, got {tuning.tuner!r}"
            )
        tuner = tuners[tuning.tuner](task, seed=tuning.seed)
        tuner.speculation = tuning.speculation
        result = tuner.tune(
            n_trials=tuning.trials,
            early_stopping=tuning.early_stopping,
        )
        if result.best_config is None:
            raise TuningError("no valid mapping found")
        mapping = task.best_mapping(result.best_config)
        return TuneReport(
            model=scenario.model,
            layer=target.name,
            objective=tuning.objective,
            tuner=tuning.tuner,
            seed=tuning.seed,
            best_mapping=tuple(mapping.as_tuple()),
            best_cost=result.best_cost,
            num_trials=result.num_trials,
            stopped_early=result.stopped_early,
            records=result.records,
        )

    def _compare_scenario(
        self, scenario: Scenario, engine, sim_config
    ) -> CompareReport:
        """Default vs AutoTVM vs mRNA mappings (the Figure 12 view)."""
        from repro.mrna import MrnaMapper
        from repro.session.session import zoo_layers
        from repro.stonne.layer import ConvLayer
        from repro.stonne.mapping import ConvMapping, FcMapping
        from repro.tuner import GridSearchTuner, MaeriConvTask, MaeriFcTask

        mapper = MrnaMapper(sim_config)
        schemes = ("default", "AutoTVM", "mRNA")
        rows: List[Dict[str, Any]] = []
        for layer in zoo_layers(scenario.model):
            is_conv = isinstance(layer, ConvLayer)
            if is_conv:
                task = MaeriConvTask(
                    layer, sim_config, objective="psums",
                    max_options_per_tile=4, engine=engine,
                )
            else:
                task = MaeriFcTask(
                    layer, sim_config, objective="psums", engine=engine,
                )
            tuned = task.best_mapping(
                GridSearchTuner(task).tune(n_trials=10 ** 9).best_config
            )
            mrna = mapper.map_conv(layer) if is_conv else mapper.map_fc(layer)
            basic = ConvMapping.basic() if is_conv else FcMapping.basic()
            cycles = {
                "default": engine.evaluate(layer, basic).cycles,
                "AutoTVM": engine.evaluate(layer, tuned).cycles,
                "mRNA": engine.evaluate(layer, mrna).cycles,
            }
            rows.append({"layer": layer.name, "cycles": cycles})
        return CompareReport(
            model=scenario.model, schemes=schemes, rows=rows
        )
