"""Tuner base class: the measure-update loop with early stopping.

Concrete tuners implement :meth:`propose` (a batch of config indices to
try next) and may override :meth:`update` to learn from results.  The
driver loop mirrors AutoTVM's: propose, measure, update, repeat until the
trial budget or the early-stopping patience is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import TuningError
from repro.tuner.measure import INVALID_COST, TuningTask
from repro.tuner.records import TuningRecords
from repro.tuner.space import Config


@dataclass
class TuningResult:
    """Outcome of a tuning run."""

    best_config: Optional[Config]
    best_cost: float
    records: TuningRecords
    stopped_early: bool

    @property
    def num_trials(self) -> int:
        return len(self.records.trials)


class Tuner:
    """Base class for all tuners.

    Args:
        task: The search problem (space + cost function).
        seed: RNG seed for stochastic tuners; fixed for reproducibility.
    """

    #: Default number of proposals per round.
    batch_size = 16

    #: Opt-in: enqueue :meth:`speculate` proposals as low-priority
    #: scheduler work alongside each measured batch.  Speculative
    #: results only ever warm the engine cache — they are never
    #: recorded, never update the tuner, and cannot change the chosen
    #: best config.
    speculation = False

    def __init__(self, task: TuningTask, seed: int = 0) -> None:
        self.task = task
        self.seed = seed
        self._seen: set = set()

    # ------------------------------------------------------------------
    # subclass interface
    # ------------------------------------------------------------------
    def propose(self, count: int) -> List[int]:
        """Return up to ``count`` *unseen* config indices to measure."""
        raise NotImplementedError

    def speculate(self, count: int) -> List[int]:
        """Up to ``count`` config indices likely to be proposed next.

        Must be side-effect free: calling it must not advance the
        tuner's RNG or otherwise change what :meth:`propose` will
        return.  The default tuner predicts nothing.
        """
        return []

    def update(self, indices: Sequence[int], costs: Sequence[float]) -> None:
        """Learn from a batch of measurements (default: nothing)."""

    # ------------------------------------------------------------------
    def tune(
        self,
        n_trials: int,
        early_stopping: Optional[int] = None,
        records: Optional[TuningRecords] = None,
    ) -> TuningResult:
        """Run the tuning loop.

        Args:
            n_trials: Maximum number of measurements.
            early_stopping: Stop after this many trials without improving
                the best cost (AutoTVM's "early stopping" utility, which
                the paper uses to detect convergence).
            records: Optional pre-existing history to append to.
        """
        if n_trials < 1:
            raise TuningError(f"n_trials must be >= 1, got {n_trials}")
        records = records or TuningRecords(objective=self.task.objective)
        best_cost = INVALID_COST
        best_config: Optional[Config] = None
        trials_since_best = 0
        stopped_early = False

        while len(records.trials) < n_trials:
            want = min(self.batch_size, n_trials - len(records.trials))
            proposed = self.propose(want)
            if not proposed:
                break  # space exhausted
            indices = [i for i in proposed if i not in self._seen]
            self._seen.update(indices)
            if not indices:
                continue
            # The whole generation is measured in one batch, so the
            # task can submit it to the engine's executor backend
            # (threads/processes) instead of one trial at a time.
            speculative = self.speculate(want) if self.speculation else []
            if speculative:
                results = self.task.measure_batch(
                    indices, speculative=speculative
                )
            else:
                results = self.task.measure_batch(indices)
            costs: List[float] = []
            measured: List[int] = []
            for index, result in zip(indices, results):
                records.add(index, result.config, result.cost)
                costs.append(result.cost)
                measured.append(index)
                if result.cost < best_cost:
                    best_cost = result.cost
                    best_config = result.config
                    trials_since_best = 0
                else:
                    trials_since_best += 1
                if early_stopping and trials_since_best >= early_stopping:
                    stopped_early = True
                    break
            self.update(measured, costs)
            if stopped_early:
                break

        return TuningResult(
            best_config=best_config,
            best_cost=best_cost,
            records=records,
            stopped_early=stopped_early,
        )
