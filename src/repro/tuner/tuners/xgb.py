"""Surrogate-model tuner using gradient-boosted trees (XGBTuner analog).

The loop alternates exploration and exploitation:

1. while fewer than ``warmup`` measurements exist, propose random configs;
2. afterwards, fit :class:`~repro.tuner.gbt.GradientBoostedTrees` on the
   measured (features, log-cost) pairs, score a random candidate pool,
   and propose the configs with the lowest predicted cost, salted with an
   ``epsilon`` fraction of random picks to keep exploring.

Features are the per-knob value positions plus the raw numeric values
when knob values are numeric — enough signal for tile-size spaces.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.tuner.gbt import GradientBoostedTrees
from repro.tuner.measure import INVALID_COST, TuningTask
from repro.tuner.tuners.base import Tuner


class XGBTuner(Tuner):
    """Cost-model-guided tuner on our NumPy GBT implementation."""

    def __init__(
        self,
        task: TuningTask,
        seed: int = 0,
        warmup: int = 24,
        pool_size: int = 512,
        epsilon: float = 0.15,
        model_kwargs: Dict = None,
    ) -> None:
        super().__init__(task, seed)
        self._rng = np.random.default_rng(seed)
        self.warmup = warmup
        self.pool_size = pool_size
        self.epsilon = epsilon
        self._model = GradientBoostedTrees(**(model_kwargs or {}))
        self._train_x: List[List[float]] = []
        self._train_y: List[float] = []

    # ------------------------------------------------------------------
    def _featurize(self, index: int) -> List[float]:
        config = self.task.space.config_at(index)
        features: List[float] = []
        for name, values in self.task.space.knobs.items():
            value = config[name]
            features.append(float(values.index(value)))
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                features.append(float(value))
                features.append(math.log2(float(value)) if value > 0 else 0.0)
        return features

    def _random_unseen(self, count: int) -> List[int]:
        size = self.task.space.raw_size
        batch: List[int] = []
        attempts = 0
        while len(batch) < count and attempts < 50 * max(count, 1):
            attempts += 1
            index = int(self._rng.integers(0, size))
            if index not in self._seen and index not in batch:
                batch.append(index)
        return batch

    # ------------------------------------------------------------------
    def propose(self, count: int) -> List[int]:
        if len(self._train_y) < self.warmup or not self._train_y:
            return self._random_unseen(count)

        x = np.asarray(self._train_x)
        y = np.asarray(self._train_y)
        self._model.fit(x, y)

        pool = self._random_unseen(self.pool_size)
        if not pool:
            return []
        features = np.asarray([self._featurize(i) for i in pool])
        predicted = self._model.predict(features)
        order = np.argsort(predicted, kind="stable")

        n_random = int(round(count * self.epsilon))
        n_model = max(1, count - n_random)
        batch = [pool[i] for i in order[:n_model]]
        for index in self._random_unseen(n_random):
            if index not in batch:
                batch.append(index)
        return batch[:count]

    def update(self, indices, costs) -> None:
        for index, cost in zip(indices, costs):
            if cost == INVALID_COST:
                continue  # the model learns only from valid configs
            self._train_x.append(self._featurize(index))
            self._train_y.append(math.log1p(cost))
