"""Exhaustive grid-search tuner.

Enumerates every valid config in index order.  This is the tuner Figure
10 uses ("an exhaustive grid-search over the whole mapping space") to
find the globally optimal and suboptimal mappings.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.tuner.measure import TuningTask
from repro.tuner.tuners.base import Tuner


class GridSearchTuner(Tuner):
    """Visit every valid config exactly once, in index order."""

    def __init__(self, task: TuningTask, seed: int = 0) -> None:
        super().__init__(task, seed)
        self._iterator: Optional[Iterator[int]] = None

    def propose(self, count: int) -> List[int]:
        if self._iterator is None:
            self._iterator = self.task.space.valid_indices()
        batch: List[int] = []
        for index in self._iterator:
            if index in self._seen:
                continue
            batch.append(index)
            if len(batch) >= count:
                break
        return batch
