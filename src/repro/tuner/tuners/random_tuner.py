"""Uniform random-search tuner (the sanity baseline)."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.tuner.measure import TuningTask
from repro.tuner.tuners.base import Tuner


class RandomTuner(Tuner):
    """Sample unseen config indices uniformly at random."""

    def __init__(self, task: TuningTask, seed: int = 0) -> None:
        super().__init__(task, seed)
        self._rng = np.random.default_rng(seed)

    def propose(self, count: int) -> List[int]:
        size = self.task.space.raw_size
        if len(self._seen) >= size:
            return []
        batch: List[int] = []
        attempts = 0
        max_attempts = 50 * count
        while len(batch) < count and attempts < max_attempts:
            attempts += 1
            index = int(self._rng.integers(0, size))
            if index in self._seen or index in batch:
                continue
            batch.append(index)
        if not batch:
            # Dense fallback: scan for any unseen index.
            for index in range(size):
                if index not in self._seen:
                    batch.append(index)
                    if len(batch) >= count:
                        break
        return batch
