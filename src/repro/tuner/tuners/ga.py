"""Genetic-algorithm tuner (AutoTVM's GATuner analog).

Configs are chromosomes: one gene per knob, each gene the index into that
knob's value list.  Standard generational loop — tournament selection,
uniform crossover, per-gene mutation — with elitism.  Invalid offspring
(constraint violations) are still proposed; the measure step prices them
at infinity, and selection weeds them out.

The operators are vectorized: each generation draws its random matrices
in bulk — one :class:`numpy.random.Generator` call per operator
(tournament indices, crossover mask, mutation mask, mutation genes) —
instead of per-gene scalar calls, which profiling showed dominated the
tuner's ~100µs/trial overhead (the simulation itself is ~16µs).
Results stay deterministic per seed.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.tuner.measure import INVALID_COST, TuningTask
from repro.tuner.tuners.base import Tuner


class GATuner(Tuner):
    """Generational genetic algorithm over the knob space."""

    def __init__(
        self,
        task: TuningTask,
        seed: int = 0,
        population_size: int = 32,
        mutation_rate: float = 0.15,
        elite: int = 4,
    ) -> None:
        super().__init__(task, seed)
        self._rng = np.random.default_rng(seed)
        self.population_size = population_size
        self.mutation_rate = mutation_rate
        self.elite = min(elite, population_size)
        self._radices = np.array(
            [len(v) for v in task.space.knobs.values()], dtype=np.int64
        )
        # Mixed-radix place values: index = genes @ multipliers.
        self._multipliers = np.concatenate(
            ([1], np.cumprod(self._radices[:-1]))
        ).astype(np.int64)
        self._population: np.ndarray = np.empty((0, len(self._radices)), np.int64)
        self._fitness: Dict[int, float] = {}  # config index -> cost

    # ------------------------------------------------------------------
    def _genes_to_indices(self, genes: np.ndarray) -> np.ndarray:
        """Config indices for a (pop, genes) matrix, one dot product."""
        return genes @ self._multipliers

    def _costs_of(self, indices: np.ndarray) -> np.ndarray:
        return np.array(
            [self._fitness.get(int(i), INVALID_COST) for i in indices]
        )

    def _random_population(self, count: int) -> np.ndarray:
        """``count`` random chromosomes in one bulk draw."""
        return self._rng.integers(
            0, self._radices, size=(count, len(self._radices)), dtype=np.int64
        )

    def _next_generation(self) -> np.ndarray:
        """Elites plus vectorized tournament -> crossover -> mutation."""
        pop = self._population
        indices = self._genes_to_indices(pop)
        costs = self._costs_of(indices)
        order = np.argsort(costs, kind="stable")
        survivors = pop[order]
        n_children = self.population_size - self.elite
        if n_children <= 0:
            return survivors[: self.population_size].copy()

        # Tournament: two contestants per parent, two parents per child,
        # all drawn in one call; the fitter contestant wins.
        contestants = self._rng.integers(
            0, len(pop), size=(2, n_children, 2)
        )
        contestant_costs = costs[contestants]
        winners = np.where(
            contestant_costs[..., 0] <= contestant_costs[..., 1],
            contestants[..., 0],
            contestants[..., 1],
        )
        parents_a = pop[winners[0]]
        parents_b = pop[winners[1]]

        # Uniform crossover: one boolean matrix for the whole generation.
        cross = self._rng.random((n_children, pop.shape[1])) < 0.5
        children = np.where(cross, parents_a, parents_b)

        # Mutation: one mask plus one bulk gene redraw (per-gene radix
        # via broadcasting against the radices vector).
        mutate = self._rng.random((n_children, pop.shape[1])) < self.mutation_rate
        fresh = self._rng.integers(
            0, self._radices, size=children.shape, dtype=np.int64
        )
        children = np.where(mutate, fresh, children)
        return np.concatenate([survivors[: self.elite], children])

    # ------------------------------------------------------------------
    def propose(self, count: int) -> List[int]:
        if len(self._population) == 0:
            self._population = self._random_population(self.population_size)
        else:
            self._population = self._next_generation()

        batch: List[int] = []
        for index in self._genes_to_indices(self._population):
            index = int(index)
            if index not in self._seen and index not in batch:
                batch.append(index)
            if len(batch) >= count:
                break
        # Top up with random immigrants when the population is stale,
        # drawing candidate chromosomes a chunk at a time.
        attempts = 0
        while len(batch) < count and attempts < 20 * count:
            chunk = min(count - len(batch), 20 * count - attempts)
            attempts += chunk
            for index in self._genes_to_indices(self._random_population(chunk)):
                index = int(index)
                if index not in self._seen and index not in batch:
                    batch.append(index)
                if len(batch) >= count:
                    break
        return batch

    def speculate(self, count: int) -> List[int]:
        """Predict the next generation's offspring without committing.

        Draws one :meth:`_next_generation` under a saved-and-restored
        RNG state, so the *real* next ``propose`` replays identical
        random numbers — speculation can never perturb the search
        trajectory.  The prediction uses current fitness, which is one
        generation stale at speculate time; offspring that the real
        generation reproduces are cache hits, the rest are wasted idle
        cycles, never wrong results.
        """
        if len(self._population) == 0 or count <= 0:
            return []
        state = self._rng.bit_generator.state
        try:
            batch: List[int] = []
            for index in self._genes_to_indices(self._next_generation()):
                index = int(index)
                if index not in self._seen and index not in batch:
                    batch.append(index)
                if len(batch) >= count:
                    break
        finally:
            self._rng.bit_generator.state = state
        return batch

    def update(self, indices, costs) -> None:
        for index, cost in zip(indices, costs):
            self._fitness[index] = cost
