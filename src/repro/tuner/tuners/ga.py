"""Genetic-algorithm tuner (AutoTVM's GATuner analog).

Configs are chromosomes: one gene per knob, each gene the index into that
knob's value list.  Standard generational loop — tournament selection,
uniform crossover, per-gene mutation — with elitism.  Invalid offspring
(constraint violations) are still proposed; the measure step prices them
at infinity, and selection weeds them out.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.tuner.measure import INVALID_COST, TuningTask
from repro.tuner.tuners.base import Tuner


class GATuner(Tuner):
    """Generational genetic algorithm over the knob space."""

    def __init__(
        self,
        task: TuningTask,
        seed: int = 0,
        population_size: int = 32,
        mutation_rate: float = 0.15,
        elite: int = 4,
    ) -> None:
        super().__init__(task, seed)
        self._rng = np.random.default_rng(seed)
        self.population_size = population_size
        self.mutation_rate = mutation_rate
        self.elite = min(elite, population_size)
        self._radices = [len(v) for v in task.space.knobs.values()]
        self._population: List[List[int]] = []
        self._fitness: Dict[int, float] = {}  # config index -> cost

    # ------------------------------------------------------------------
    def _genes_to_index(self, genes: List[int]) -> int:
        index = 0
        multiplier = 1
        for gene, radix in zip(genes, self._radices):
            index += gene * multiplier
            multiplier *= radix
        return index

    def _random_genes(self) -> List[int]:
        return [int(self._rng.integers(0, radix)) for radix in self._radices]

    def _tournament(self) -> List[int]:
        """Pick the fitter of two random population members."""
        a, b = self._rng.integers(0, len(self._population), size=2)
        ca = self._fitness.get(self._genes_to_index(self._population[a]), INVALID_COST)
        cb = self._fitness.get(self._genes_to_index(self._population[b]), INVALID_COST)
        return list(self._population[a] if ca <= cb else self._population[b])

    def _crossover(self, a: List[int], b: List[int]) -> List[int]:
        return [
            ai if self._rng.random() < 0.5 else bi for ai, bi in zip(a, b)
        ]

    def _mutate(self, genes: List[int]) -> List[int]:
        return [
            int(self._rng.integers(0, radix))
            if self._rng.random() < self.mutation_rate
            else gene
            for gene, radix in zip(genes, self._radices)
        ]

    # ------------------------------------------------------------------
    def propose(self, count: int) -> List[int]:
        if not self._population:
            self._population = [
                self._random_genes() for _ in range(self.population_size)
            ]
        else:
            scored = sorted(
                self._population,
                key=lambda genes: self._fitness.get(
                    self._genes_to_index(genes), INVALID_COST
                ),
            )
            next_gen = [list(g) for g in scored[: self.elite]]
            while len(next_gen) < self.population_size:
                child = self._mutate(
                    self._crossover(self._tournament(), self._tournament())
                )
                next_gen.append(child)
            self._population = next_gen

        batch: List[int] = []
        for genes in self._population:
            index = self._genes_to_index(genes)
            if index not in self._seen and index not in batch:
                batch.append(index)
            if len(batch) >= count:
                break
        # Top up with random immigrants when the population is stale.
        attempts = 0
        while len(batch) < count and attempts < 20 * count:
            attempts += 1
            index = self._genes_to_index(self._random_genes())
            if index not in self._seen and index not in batch:
                batch.append(index)
        return batch

    def update(self, indices, costs) -> None:
        for index, cost in zip(indices, costs):
            self._fitness[index] = cost
