"""Tuner implementations: grid, random, genetic, GBT-surrogate."""

from repro.tuner.tuners.base import Tuner, TuningResult
from repro.tuner.tuners.ga import GATuner
from repro.tuner.tuners.grid import GridSearchTuner
from repro.tuner.tuners.random_tuner import RandomTuner
from repro.tuner.tuners.xgb import XGBTuner

__all__ = [
    "GATuner",
    "GridSearchTuner",
    "RandomTuner",
    "Tuner",
    "TuningResult",
    "XGBTuner",
]
