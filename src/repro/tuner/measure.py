"""Measurement: turning a config into a cost (AutoTVM's measure step).

The paper's key departure from stock AutoTVM (§VII-B): *latency is not a
valid cost on a simulator*, because simulation wall time is uncorrelated
with simulated performance.  Bifrost instead optimizes ``cycles`` (exact
but expensive — a full simulation per trial) or ``psums`` (a cheap proxy
computed in closed form).  :class:`MaeriConvTask` and :class:`MaeriFcTask`
expose both objectives over the mapping spaces of :mod:`repro.tuner.space`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.engine import EvalRequest, EvaluationEngine
from repro.errors import MappingError, TuningError
from repro.stonne.config import SimulatorConfig
from repro.stonne.layer import ConvLayer, FcLayer
from repro.tuner.space import (
    Config,
    ConfigSpace,
    config_to_conv_mapping,
    config_to_fc_mapping,
    conv_mapping_space,
    fc_mapping_space,
)

#: Cost returned for configs that violate hard constraints.
INVALID_COST = float("inf")

VALID_OBJECTIVES = ("cycles", "psums", "energy")


def _check_objective(objective: str) -> None:
    if objective not in VALID_OBJECTIVES:
        raise TuningError(
            f"objective must be one of {VALID_OBJECTIVES}, got {objective!r}"
        )


@dataclass
class MeasureResult:
    """One measurement: the config, its cost, and the objective used."""

    config: Config
    cost: float
    objective: str

    @property
    def valid(self) -> bool:
        return self.cost != INVALID_COST


class TuningTask:
    """A search problem: a config space plus an evaluation function.

    Subclasses implement :meth:`evaluate`.  Costs are minimized; invalid
    configs return :data:`INVALID_COST` so tuners can skip them without
    special-casing exceptions.

    Tasks that route evaluations through an
    :class:`~repro.engine.EvaluationEngine` are *cache-aware*:
    :attr:`num_measurements` counts every :meth:`measure` call while
    :attr:`num_simulations` counts only the evaluations that actually ran
    a cycle-model simulation (cache misses), so benchmarks can report
    real simulation savings.

    Tasks also memoize at the *cost* level: :meth:`measure_batch` keys a
    config-index -> :class:`MeasureResult` memo, so a revisited index
    skips mapping construction and space validation entirely, not just
    the simulation the engine cache would have saved.
    """

    def __init__(
        self,
        space: ConfigSpace,
        objective: str,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        _check_objective(objective)
        self.space = space
        self.objective = objective
        # Adapter: a repro.session.Session (or a StonneBifrostApi) is
        # accepted wherever an engine is — tasks always measure through
        # the session's engine, so its stats cache serves every tier.
        if engine is not None and not isinstance(engine, EvaluationEngine):
            engine = getattr(engine, "engine", engine)
        self.engine = engine
        self.num_measurements = 0
        self._local_sims = 0
        self._engine_sim_baseline = engine.num_simulations if engine else 0
        self._cost_memo: Dict[int, MeasureResult] = {}

    @property
    def num_simulations(self) -> int:
        """Cycle-model simulations this task triggered (cache misses only
        when an engine with caching is attached)."""
        if self.engine is not None:
            return self.engine.num_simulations - self._engine_sim_baseline
        return self._local_sims

    def evaluate(self, config: Config) -> float:
        raise NotImplementedError

    def evaluate_batch(
        self, configs: Sequence[Config], speculative: Sequence[Config] = ()
    ) -> List[float]:
        """Costs for a batch of *valid* configs, isolating per-config
        mapping failures as :data:`INVALID_COST`.

        The default runs :meth:`evaluate` per config; engine-backed tasks
        override this to submit the whole batch to
        :meth:`~repro.engine.EvaluationEngine.evaluate_many`, which is
        what lets a process backend fan a tuner generation out.
        ``speculative`` configs are low-priority cache-warming hints for
        the scheduler; the default (engineless) implementation ignores
        them.
        """
        costs: List[float] = []
        for config in configs:
            try:
                costs.append(self.evaluate(config))
                if self.engine is None:
                    self._local_sims += 1
            except MappingError:
                costs.append(INVALID_COST)
        return costs

    def measure(self, config: Config, index: Optional[int] = None) -> MeasureResult:
        """Evaluate one config, recording the measurement count.

        With ``index`` the result is memoized, and revisits are served
        from the memo without touching the space or the engine.
        """
        self.num_measurements += 1
        if index is not None and index in self._cost_memo:
            return self._cost_memo[index]
        if not self.space.is_valid(config):
            result = MeasureResult(config=config, cost=INVALID_COST,
                                   objective=self.objective)
        else:
            try:
                cost = self.evaluate(config)
                if self.engine is None:
                    self._local_sims += 1
            except MappingError:
                cost = INVALID_COST
            result = MeasureResult(config=config, cost=cost,
                                   objective=self.objective)
        if index is not None:
            self._cost_memo[index] = result
        return result

    def measure_batch(
        self, indices: Sequence[int], speculative: Sequence[int] = ()
    ) -> List[MeasureResult]:
        """Measure a whole generation of config indices at once.

        Memoized indices are served immediately; the rest are validated,
        and every cost that needs evaluation goes through
        :meth:`evaluate_batch` in a single call — one batch for the
        engine's executor backend instead of one submission per trial.

        ``speculative`` indices (a tuner's guess at its *next* batch)
        are deduped against ``indices`` and the memo, validated, and
        passed through to :meth:`evaluate_batch` as cache-warming hints;
        they produce no results and no measurement counts.
        """
        self.num_measurements += len(indices)
        results: List[Optional[MeasureResult]] = [None] * len(indices)
        first_seen: Dict[int, int] = {}  # index -> position of first occurrence
        duplicates: List[int] = []
        fresh_positions: List[int] = []
        fresh_configs: List[Config] = []
        for position, index in enumerate(indices):
            memo = self._cost_memo.get(index)
            if memo is not None:
                results[position] = memo
                continue
            if index in first_seen:
                duplicates.append(position)
                continue
            first_seen[index] = position
            config = self.space.config_at(index)
            if not self.space.is_valid(config):
                results[position] = MeasureResult(
                    config=config, cost=INVALID_COST, objective=self.objective
                )
            else:
                fresh_positions.append(position)
                fresh_configs.append(config)
        spec_configs: List[Config] = []
        if speculative:
            excluded = set(indices) | set(self._cost_memo)
            for index in speculative:
                if index in excluded:
                    continue
                excluded.add(index)
                config = self.space.config_at(index)
                if self.space.is_valid(config):
                    spec_configs.append(config)
        if fresh_configs or spec_configs:
            if spec_configs:
                costs = self.evaluate_batch(
                    fresh_configs, speculative=spec_configs
                )
            else:
                costs = self.evaluate_batch(fresh_configs)
            for position, config, cost in zip(
                fresh_positions, fresh_configs, costs
            ):
                results[position] = MeasureResult(
                    config=config, cost=cost, objective=self.objective
                )
        for index, position in first_seen.items():
            self._cost_memo.setdefault(index, results[position])
        for position in duplicates:
            results[position] = results[first_seen[indices[position]]]
        return results


class _MaeriLayerTask(TuningTask):
    """Shared machinery of the MAERI conv/FC tuning tasks.

    Subclasses provide :meth:`best_mapping` (config -> mapping) and
    :meth:`_estimate_psums`; everything else — single and batched
    evaluation, cost-from-stats — is identical for both workloads.
    """

    def __init__(self, layer, space, objective, engine) -> None:
        super().__init__(space, objective, engine=engine)
        self.layer = layer
        self.controller = self.engine.controller

    def best_mapping(self, config: Config):
        raise NotImplementedError

    def _estimate_psums(self, mapping) -> int:
        raise NotImplementedError

    def _estimate_psums_batch(self, mappings: Sequence) -> List:
        """Per-mapping psum estimates (value or captured exception), via
        the controller's batch kernels — one numpy pass per generation."""
        raise NotImplementedError

    def _cost_from_stats(self, stats) -> float:
        if self.objective == "energy":
            from repro.stonne.energy import estimate_energy

            return estimate_energy(stats).total
        return float(stats.cycles)

    def evaluate(self, config: Config) -> float:
        mapping = self.best_mapping(config)
        if self.objective == "psums":
            return float(self._estimate_psums(mapping))
        return self._cost_from_stats(self.engine.evaluate(self.layer, mapping))

    def evaluate_batch(
        self, configs: Sequence[Config], speculative: Sequence[Config] = ()
    ) -> List[float]:
        """Batch evaluation: one ``evaluate_many`` per generation.

        The psums objective is closed-form (no simulation): the whole
        generation is scored in one controller batch-kernel call
        (:meth:`_estimate_psums_batch`).  Cycles/energy submit every
        simulation-requiring config in a single engine batch, which the
        executor backend may fan out over threads or worker processes.
        Per-config mapping failures price at :data:`INVALID_COST`
        without poisoning the batch.

        ``speculative`` configs become low-priority scheduler requests
        riding the same engine batch: they run only on otherwise-idle
        slots and only populate the cache (psums needs no simulation,
        so they are dropped there).
        """
        costs: List[Optional[float]] = [None] * len(configs)
        pending_positions: List[int] = []
        pending_mappings: List = []
        for position, config in enumerate(configs):
            try:
                mapping = self.best_mapping(config)
                pending_positions.append(position)
                pending_mappings.append(mapping)
            except MappingError:
                costs[position] = INVALID_COST
        if self.objective == "psums":
            if pending_mappings:
                estimates = self._estimate_psums_batch(pending_mappings)
                for position, estimate in zip(pending_positions, estimates):
                    if isinstance(estimate, MappingError):
                        costs[position] = INVALID_COST
                    elif isinstance(estimate, Exception):
                        raise estimate
                    else:
                        costs[position] = float(estimate)
            return costs
        spec_requests: List[EvalRequest] = []
        if speculative and self.objective != "psums":
            for config in speculative:
                try:
                    spec_requests.append(
                        EvalRequest(self.layer, self.best_mapping(config))
                    )
                except MappingError:
                    continue  # an unmappable guess is simply not warmed
        if pending_mappings or spec_requests:
            outcomes = self.engine.evaluate_many(
                [EvalRequest(self.layer, m) for m in pending_mappings],
                return_errors=True,
                speculative=spec_requests,
            )
            for position, outcome in zip(pending_positions, outcomes):
                if isinstance(outcome, MappingError):
                    costs[position] = INVALID_COST
                elif isinstance(outcome, Exception):
                    raise outcome
                else:
                    costs[position] = self._cost_from_stats(outcome)
        return costs


class MaeriConvTask(_MaeriLayerTask):
    """Tune the conv mapping of ``layer`` on a MAERI configuration."""

    def __init__(
        self,
        layer: ConvLayer,
        config: SimulatorConfig,
        objective: str = "psums",
        max_options_per_tile: int = 10,
        space: Optional[ConfigSpace] = None,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        super().__init__(
            layer,
            space or conv_mapping_space(layer, config.ms_size, max_options_per_tile),
            objective,
            engine or EvaluationEngine(config),
        )

    def best_mapping(self, config: Config):
        return config_to_conv_mapping(config)

    def _estimate_psums(self, mapping) -> int:
        return self.controller.estimate_conv_psums(self.layer, mapping)

    def _estimate_psums_batch(self, mappings: Sequence) -> List:
        return self.controller.estimate_conv_psums_batch(self.layer, mappings)


class MaeriFcTask(_MaeriLayerTask):
    """Tune the FC mapping of ``layer`` on a MAERI configuration."""

    def __init__(
        self,
        layer: FcLayer,
        config: SimulatorConfig,
        objective: str = "psums",
        space: Optional[ConfigSpace] = None,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        super().__init__(
            layer,
            space or fc_mapping_space(layer, config.ms_size),
            objective,
            engine or EvaluationEngine(config),
        )

    def best_mapping(self, config: Config):
        return config_to_fc_mapping(config)

    def _estimate_psums(self, mapping) -> int:
        return self.controller.estimate_fc_psums(self.layer, mapping)

    def _estimate_psums_batch(self, mappings: Sequence) -> List:
        return self.controller.estimate_fc_psums_batch(self.layer, mappings)


class CallableTask(TuningTask):
    """Wrap an arbitrary cost function as a task (used by hardware search
    and the test suite)."""

    def __init__(self, space: ConfigSpace, fn, objective: str = "cycles") -> None:
        super().__init__(space, objective)
        self._fn = fn

    def evaluate(self, config: Config) -> float:
        return float(self._fn(config))
