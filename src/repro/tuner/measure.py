"""Measurement: turning a config into a cost (AutoTVM's measure step).

The paper's key departure from stock AutoTVM (§VII-B): *latency is not a
valid cost on a simulator*, because simulation wall time is uncorrelated
with simulated performance.  Bifrost instead optimizes ``cycles`` (exact
but expensive — a full simulation per trial) or ``psums`` (a cheap proxy
computed in closed form).  :class:`MaeriConvTask` and :class:`MaeriFcTask`
expose both objectives over the mapping spaces of :mod:`repro.tuner.space`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.engine import EvaluationEngine
from repro.errors import MappingError, TuningError
from repro.stonne.config import SimulatorConfig
from repro.stonne.layer import ConvLayer, FcLayer
from repro.tuner.space import (
    Config,
    ConfigSpace,
    config_to_conv_mapping,
    config_to_fc_mapping,
    conv_mapping_space,
    fc_mapping_space,
)

#: Cost returned for configs that violate hard constraints.
INVALID_COST = float("inf")

VALID_OBJECTIVES = ("cycles", "psums", "energy")


def _check_objective(objective: str) -> None:
    if objective not in VALID_OBJECTIVES:
        raise TuningError(
            f"objective must be one of {VALID_OBJECTIVES}, got {objective!r}"
        )


@dataclass
class MeasureResult:
    """One measurement: the config, its cost, and the objective used."""

    config: Config
    cost: float
    objective: str

    @property
    def valid(self) -> bool:
        return self.cost != INVALID_COST


class TuningTask:
    """A search problem: a config space plus an evaluation function.

    Subclasses implement :meth:`evaluate`.  Costs are minimized; invalid
    configs return :data:`INVALID_COST` so tuners can skip them without
    special-casing exceptions.

    Tasks that route evaluations through an
    :class:`~repro.engine.EvaluationEngine` are *cache-aware*:
    :attr:`num_measurements` counts every :meth:`measure` call while
    :attr:`num_simulations` counts only the evaluations that actually ran
    a cycle-model simulation (cache misses), so benchmarks can report
    real simulation savings.
    """

    def __init__(
        self,
        space: ConfigSpace,
        objective: str,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        _check_objective(objective)
        self.space = space
        self.objective = objective
        self.engine = engine
        self.num_measurements = 0
        self._local_sims = 0
        self._engine_sim_baseline = engine.num_simulations if engine else 0

    @property
    def num_simulations(self) -> int:
        """Cycle-model simulations this task triggered (cache misses only
        when an engine with caching is attached)."""
        if self.engine is not None:
            return self.engine.num_simulations - self._engine_sim_baseline
        return self._local_sims

    def evaluate(self, config: Config) -> float:
        raise NotImplementedError

    def measure(self, config: Config) -> MeasureResult:
        """Evaluate one config, recording the measurement count."""
        self.num_measurements += 1
        if not self.space.is_valid(config):
            return MeasureResult(config=config, cost=INVALID_COST,
                                 objective=self.objective)
        try:
            cost = self.evaluate(config)
            if self.engine is None:
                self._local_sims += 1
        except MappingError:
            cost = INVALID_COST
        return MeasureResult(config=config, cost=cost, objective=self.objective)


class MaeriConvTask(TuningTask):
    """Tune the conv mapping of ``layer`` on a MAERI configuration."""

    def __init__(
        self,
        layer: ConvLayer,
        config: SimulatorConfig,
        objective: str = "psums",
        max_options_per_tile: int = 10,
        space: Optional[ConfigSpace] = None,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        super().__init__(
            space or conv_mapping_space(layer, config.ms_size, max_options_per_tile),
            objective,
            engine=engine or EvaluationEngine(config),
        )
        self.layer = layer
        self.controller = self.engine.controller

    def evaluate(self, config: Config) -> float:
        mapping = config_to_conv_mapping(config)
        if self.objective == "psums":
            return float(self.controller.estimate_conv_psums(self.layer, mapping))
        stats = self.engine.evaluate(self.layer, mapping)
        if self.objective == "energy":
            from repro.stonne.energy import estimate_energy

            return estimate_energy(stats).total
        return float(stats.cycles)

    def best_mapping(self, config: Config):
        return config_to_conv_mapping(config)


class MaeriFcTask(TuningTask):
    """Tune the FC mapping of ``layer`` on a MAERI configuration."""

    def __init__(
        self,
        layer: FcLayer,
        config: SimulatorConfig,
        objective: str = "psums",
        space: Optional[ConfigSpace] = None,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        super().__init__(
            space or fc_mapping_space(layer, config.ms_size),
            objective,
            engine=engine or EvaluationEngine(config),
        )
        self.layer = layer
        self.controller = self.engine.controller

    def evaluate(self, config: Config) -> float:
        mapping = config_to_fc_mapping(config)
        if self.objective == "psums":
            return float(self.controller.estimate_fc_psums(self.layer, mapping))
        stats = self.engine.evaluate(self.layer, mapping)
        if self.objective == "energy":
            from repro.stonne.energy import estimate_energy

            return estimate_energy(stats).total
        return float(stats.cycles)

    def best_mapping(self, config: Config):
        return config_to_fc_mapping(config)


class CallableTask(TuningTask):
    """Wrap an arbitrary cost function as a task (used by hardware search
    and the test suite)."""

    def __init__(self, space: ConfigSpace, fn, objective: str = "cycles") -> None:
        super().__init__(space, objective)
        self._fn = fn

    def evaluate(self, config: Config) -> float:
        return float(self._fn(config))
