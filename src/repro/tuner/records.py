"""Tuning records: the history of measured configs and the best result.

AutoTVM logs measurements to a file so the best config can be applied
later; :class:`TuningRecords` is the in-memory equivalent with optional
JSONL persistence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.errors import TuningError
from repro.tuner.measure import INVALID_COST
from repro.tuner.space import Config


@dataclass
class Trial:
    """One measured trial."""

    trial: int
    index: int
    config: Config
    cost: float

    @property
    def valid(self) -> bool:
        return self.cost != INVALID_COST


@dataclass
class TuningRecords:
    """Measurement history with best-so-far tracking."""

    objective: str = "cycles"
    trials: List[Trial] = field(default_factory=list)

    def add(self, index: int, config: Config, cost: float) -> Trial:
        trial = Trial(
            trial=len(self.trials), index=index, config=dict(config), cost=cost
        )
        self.trials.append(trial)
        return trial

    @property
    def best(self) -> Optional[Trial]:
        valid = [t for t in self.trials if t.valid]
        if not valid:
            return None
        return min(valid, key=lambda t: (t.cost, t.trial))

    @property
    def num_valid(self) -> int:
        return sum(1 for t in self.trials if t.valid)

    def best_cost_curve(self) -> List[float]:
        """Best-so-far cost after each trial (inf until one is valid)."""
        curve: List[float] = []
        best = INVALID_COST
        for t in self.trials:
            best = min(best, t.cost)
            curve.append(best)
        return curve

    # ------------------------------------------------------------------
    def save_jsonl(self, path: Path) -> None:
        """Persist the history as one JSON object per line."""
        path = Path(path)
        with path.open("w") as handle:
            for t in self.trials:
                handle.write(
                    json.dumps(
                        {
                            "trial": t.trial,
                            "index": t.index,
                            "config": t.config,
                            "cost": None if not t.valid else t.cost,
                            "objective": self.objective,
                        }
                    )
                    + "\n"
                )

    @classmethod
    def load_jsonl(cls, path: Path) -> "TuningRecords":
        path = Path(path)
        records = cls()
        for line_no, line in enumerate(path.read_text().splitlines()):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TuningError(
                    f"{path}:{line_no + 1}: invalid record: {exc}"
                ) from exc
            records.objective = entry.get("objective", records.objective)
            cost = entry.get("cost")
            records.add(
                index=entry["index"],
                config=entry["config"],
                cost=INVALID_COST if cost is None else float(cost),
            )
        return records
