"""Gradient-boosted regression trees on NumPy (XGBoost stand-in).

The XGBoost tuner in AutoTVM fits a surrogate cost model over measured
configs and ranks unmeasured ones by predicted cost.  xgboost itself is
not installed offline, so this module implements the minimum viable
equivalent: least-squares boosting of depth-limited regression trees with
shrinkage.  It is deliberately simple — exact greedy splits over all
features, no column subsampling — because tuning spaces here are small
(hundreds to tens of thousands of points, <= 8 features).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import TuningError


@dataclass
class _TreeNode:
    """One node of a regression tree (leaf when ``feature`` is None)."""

    value: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None


class RegressionTree:
    """A depth-limited CART regression tree with exact greedy splits."""

    def __init__(self, max_depth: int = 3, min_samples_leaf: int = 2) -> None:
        if max_depth < 1:
            raise TuningError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise TuningError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: Optional[_TreeNode] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise TuningError(
                f"bad training shapes: x {x.shape}, y {y.shape}"
            )
        if x.shape[0] == 0:
            raise TuningError("cannot fit a tree on zero samples")
        self._root = self._build(x, y, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(value=float(y.mean()))
        if depth >= self.max_depth or y.size < 2 * self.min_samples_leaf:
            return node
        best = self._best_split(x, y)
        if best is None:
            return node
        feature, threshold, mask = best
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, x: np.ndarray, y: np.ndarray):
        """Exact greedy split minimizing summed squared error."""
        best_gain = 1e-12
        best = None
        base_sse = float(((y - y.mean()) ** 2).sum())
        for feature in range(x.shape[1]):
            column = x[:, feature]
            candidates = np.unique(column)
            if candidates.size < 2:
                continue
            midpoints = (candidates[:-1] + candidates[1:]) / 2.0
            if midpoints.size > 32:
                # Histogram-style split finding: cap the threshold count
                # at 32 quantiles, the standard trick to keep exact greedy
                # splitting O(features x 32 x n) instead of O(features x n^2).
                midpoints = np.unique(
                    np.quantile(midpoints, np.linspace(0, 1, 32))
                )
            for threshold in midpoints:
                mask = column <= threshold
                n_left = int(mask.sum())
                if (
                    n_left < self.min_samples_leaf
                    or y.size - n_left < self.min_samples_leaf
                ):
                    continue
                left, right = y[mask], y[~mask]
                sse = float(((left - left.mean()) ** 2).sum()) + float(
                    ((right - right.mean()) ** 2).sum()
                )
                gain = base_sse - sse
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold), mask)
        return best

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise TuningError("tree is not fitted")
        x = np.asarray(x, dtype=np.float64)
        out = np.empty(x.shape[0])
        for i, row in enumerate(x):
            node = self._root
            while node.feature is not None:
                node = node.left if row[node.feature] <= node.threshold else node.right
                assert node is not None
            out[i] = node.value
        return out


class GradientBoostedTrees:
    """Least-squares gradient boosting with shrinkage.

    Args:
        n_estimators: Boosting rounds.
        learning_rate: Shrinkage applied to every tree's contribution.
        max_depth: Depth of each regression tree.
    """

    def __init__(
        self,
        n_estimators: int = 30,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        min_samples_leaf: int = 2,
    ) -> None:
        if n_estimators < 1:
            raise TuningError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < learning_rate <= 1.0:
            raise TuningError(
                f"learning_rate must be in (0, 1], got {learning_rate}"
            )
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._base: float = 0.0
        self._trees: List[RegressionTree] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape[0] != y.shape[0] or x.shape[0] == 0:
            raise TuningError(f"bad training shapes: x {x.shape}, y {y.shape}")
        self._base = float(y.mean())
        self._trees = []
        residual = y - self._base
        for _ in range(self.n_estimators):
            tree = RegressionTree(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            ).fit(x, residual)
            update = tree.predict(x)
            residual = residual - self.learning_rate * update
            self._trees.append(tree)
            if float(np.abs(residual).max(initial=0.0)) < 1e-12:
                break
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = np.full(x.shape[0], self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(x)
        return out

    @property
    def is_fitted(self) -> bool:
        return bool(self._trees)
