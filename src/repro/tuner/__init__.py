"""Auto-tuning module (AutoTVM stand-in).

Declares tuning-knob config spaces over MAERI mappings and hardware
parameters, measures configs through the cycle-level simulator (cost =
``cycles`` or ``psums``, never wall latency — §VII-B), and searches with
grid / random / genetic / gradient-boosted-tree tuners.
"""

from repro.tuner.gbt import GradientBoostedTrees, RegressionTree
from repro.tuner.measure import (
    INVALID_COST,
    CallableTask,
    MaeriConvTask,
    MaeriFcTask,
    MeasureResult,
    TuningTask,
)
from repro.tuner.records import Trial, TuningRecords
from repro.tuner.space import (
    ConfigSpace,
    config_to_conv_mapping,
    config_to_fc_mapping,
    conv_mapping_space,
    fc_mapping_space,
    hardware_space,
)
from repro.tuner.tuners import (
    GATuner,
    GridSearchTuner,
    RandomTuner,
    Tuner,
    TuningResult,
    XGBTuner,
)

__all__ = [
    "CallableTask",
    "ConfigSpace",
    "GATuner",
    "GradientBoostedTrees",
    "GridSearchTuner",
    "INVALID_COST",
    "MaeriConvTask",
    "MaeriFcTask",
    "MeasureResult",
    "RandomTuner",
    "RegressionTree",
    "Trial",
    "Tuner",
    "TuningRecords",
    "TuningResult",
    "TuningTask",
    "XGBTuner",
    "config_to_conv_mapping",
    "config_to_fc_mapping",
    "conv_mapping_space",
    "fc_mapping_space",
    "hardware_space",
]
