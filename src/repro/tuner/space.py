"""Config spaces and tuning knobs (AutoTVM's ``define_knob`` analog).

A :class:`ConfigSpace` is an ordered set of named knobs, each with a
finite value list, plus optional validity constraints.  Configs are
addressed by a mixed-radix integer index, which is what the tuners
enumerate, sample and learn over.

:func:`conv_mapping_space` and :func:`fc_mapping_space` build the spaces
Bifrost exposes for MAERI: one knob per tile of Tables IV/V, constrained
by the multiplier-array capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.errors import TuningError
from repro.stonne.layer import ConvLayer, FcLayer
from repro.stonne.mapping import ConvMapping, FcMapping

Config = Dict[str, object]
Constraint = Callable[[Config], bool]


@dataclass
class ConfigSpace:
    """An ordered product of named knobs with validity constraints."""

    knobs: Dict[str, List[object]] = field(default_factory=dict)
    constraints: List[Constraint] = field(default_factory=list)

    def define_knob(self, name: str, values: Sequence[object]) -> None:
        """Declare a tunable parameter (AutoTVM's ``cfg.define_knob``)."""
        values = list(values)
        if not values:
            raise TuningError(f"knob {name!r} needs at least one value")
        if name in self.knobs:
            raise TuningError(f"knob {name!r} already defined")
        self.knobs[name] = values

    def add_constraint(self, constraint: Constraint) -> None:
        self.constraints.append(constraint)

    # ------------------------------------------------------------------
    @property
    def raw_size(self) -> int:
        """Product of knob cardinalities, ignoring constraints."""
        size = 1
        for values in self.knobs.values():
            size *= len(values)
        return size

    def config_at(self, index: int) -> Config:
        """Decode a mixed-radix index into a config dict."""
        if not 0 <= index < self.raw_size:
            raise TuningError(
                f"config index {index} out of range [0, {self.raw_size})"
            )
        config: Config = {}
        for name, values in self.knobs.items():
            index, digit = divmod(index, len(values))
            config[name] = values[digit]
        return config

    def index_of(self, config: Config) -> int:
        """Encode a config dict back into its index."""
        index = 0
        multiplier = 1
        for name, values in self.knobs.items():
            try:
                digit = values.index(config[name])
            except (KeyError, ValueError):
                raise TuningError(
                    f"config {config!r} is not addressable in this space "
                    f"(knob {name!r})"
                ) from None
            index += digit * multiplier
            multiplier *= len(values)
        return index

    def is_valid(self, config: Config) -> bool:
        return all(constraint(config) for constraint in self.constraints)

    def valid_indices(self) -> Iterator[int]:
        """Yield every index whose config satisfies the constraints."""
        for index in range(self.raw_size):
            if self.is_valid(self.config_at(index)):
                yield index

    def valid_size(self) -> int:
        """Number of valid configs (O(raw_size); use on bounded spaces)."""
        return sum(1 for _ in self.valid_indices())


def _tile_options(bound: int, max_options: int = 0) -> List[int]:
    """Candidate tile sizes for a dimension of extent ``bound``.

    All divisors of ``bound`` (perfect tilings) plus powers of two up to
    the bound; optionally subsampled to ``max_options`` values (the
    paper's "each tile has 10 options").
    """
    options = {d for d in range(1, bound + 1) if bound % d == 0}
    power = 1
    while power <= bound:
        options.add(power)
        power *= 2
    values = sorted(options)
    if max_options and len(values) > max_options:
        step = (len(values) - 1) / (max_options - 1)
        picked = sorted({values[round(i * step)] for i in range(max_options)})
        if bound not in picked:
            picked[-1] = bound
        values = picked
    return values


def conv_mapping_space(
    layer: ConvLayer, ms_size: int, max_options_per_tile: int = 10
) -> ConfigSpace:
    """The MAERI conv mapping space for ``layer`` (Table IV knobs)."""
    space = ConfigSpace()
    space.define_knob("T_R", _tile_options(layer.R, max_options_per_tile))
    space.define_knob("T_S", _tile_options(layer.S, max_options_per_tile))
    space.define_knob("T_C", _tile_options(layer.C // layer.G, max_options_per_tile))
    space.define_knob("T_K", _tile_options(layer.K // layer.G, max_options_per_tile))
    space.define_knob("T_X", _tile_options(layer.P, max_options_per_tile))
    space.define_knob("T_Y", _tile_options(layer.Q, max_options_per_tile))

    def fits(config: Config) -> bool:
        used = (
            config["T_R"] * config["T_S"] * config["T_C"]
            * config["T_K"] * config["T_X"] * config["T_Y"]
        )
        return used <= ms_size

    space.add_constraint(fits)
    return space


def fc_mapping_space(
    layer: FcLayer, ms_size: int, max_options_per_tile: int = 0
) -> ConfigSpace:
    """The MAERI FC mapping space for ``layer`` (Table V knobs)."""
    space = ConfigSpace()
    space.define_knob(
        "T_S", _tile_options(min(layer.out_features, ms_size), max_options_per_tile)
    )
    space.define_knob(
        "T_K", _tile_options(min(layer.in_features, ms_size), max_options_per_tile)
    )
    space.define_knob("T_N", [1])
    space.add_constraint(
        lambda config: config["T_S"] * config["T_K"] * config["T_N"] <= ms_size
    )
    return space


def config_to_conv_mapping(config: Config) -> ConvMapping:
    """Materialize a conv config dict into a :class:`ConvMapping`."""
    return ConvMapping(
        T_R=int(config["T_R"]), T_S=int(config["T_S"]), T_C=int(config["T_C"]),
        T_K=int(config["T_K"]), T_X=int(config["T_X"]), T_Y=int(config["T_Y"]),
    )


def config_to_fc_mapping(config: Config) -> FcMapping:
    """Materialize an FC config dict into a :class:`FcMapping`."""
    return FcMapping(
        T_S=int(config["T_S"]), T_K=int(config["T_K"]), T_N=int(config["T_N"])
    )


def hardware_space(
    ms_sizes: Sequence[int] = (8, 16, 32, 64, 128, 256),
    dn_bws: Sequence[int] = (8, 16, 32, 64),
    rn_bws: Sequence[int] = (8, 16, 32, 64),
) -> ConfigSpace:
    """A hardware-configuration search space (§VI: tunable hw parameters)."""
    space = ConfigSpace()
    space.define_knob("ms_size", list(ms_sizes))
    space.define_knob("dn_bw", list(dn_bws))
    space.define_knob("rn_bw", list(rn_bws))
    return space
