"""Modern workloads the paper's experiment matrix lacks (ROADMAP item 4).

A transformer encoder block, depthwise-separable and grouped
convolutions, and dilated plus NHWC-layout conv variants — each
registered in the zoo and therefore runnable by name through
``Session.run/tune/sweep`` and the CLI exactly like ``alexnet``.

Everything is expressed with the existing layer descriptors:

* The transformer block lowers to dense (``FcLayer``) scenarios — QKV
  and output projections, per-head attention score/value GEMMs (a
  ``(seq, d_head) @ (d_head, seq)`` GEMM *is* a dense layer with
  ``batch=seq``), and the FFN expand/contract pair.  Dense works on all
  four controllers (MAERI included, which refuses raw ``GemmLayer``).
* The conv variants exercise the descriptor axes PR 10 added: ``G``
  (groups / depthwise), ``dil_h``/``dil_w`` (dilation), ``layout``
  (NHWC emulation around the NCHW functional core).
"""

from __future__ import annotations

from typing import List

from repro.stonne.layer import ConvLayer, FcLayer
from repro.zoo import _ensure_builtin_models, register_model

# Importing this module directly (rather than through a zoo lookup)
# must not let the modern entries register ahead of the classics — the
# guard flag makes this a no-op when the registry itself imported us.
_ensure_builtin_models()


def transformer_encoder_layers(
    d_model: int = 256,
    heads: int = 8,
    seq_len: int = 64,
    ffn_dim: int = 1024,
    prefix: str = "enc",
) -> List[FcLayer]:
    """One transformer encoder block as dense scenarios.

    QKV + output projections (``d_model -> d_model`` over ``seq_len``
    tokens), per-head attention score (``Q @ K^T``) and value
    (``A @ V``) GEMMs, and the FFN pair (``d_model -> ffn_dim ->
    d_model``).  Per-head GEMMs are shape-identical across heads; the
    engine's structural dedup collapses them at plan time, so listing
    every head costs nothing but keeps MAC totals honest.
    """
    if d_model % heads:
        raise ValueError(
            f"heads={heads} must divide d_model={d_model}"
        )
    d_head = d_model // heads
    layers: List[FcLayer] = [
        FcLayer(f"{prefix}.q_proj", in_features=d_model, out_features=d_model, batch=seq_len),
        FcLayer(f"{prefix}.k_proj", in_features=d_model, out_features=d_model, batch=seq_len),
        FcLayer(f"{prefix}.v_proj", in_features=d_model, out_features=d_model, batch=seq_len),
    ]
    for h in range(heads):
        # scores: (seq, d_head) @ (d_head, seq) -> (seq, seq)
        layers.append(
            FcLayer(
                f"{prefix}.h{h}.score",
                in_features=d_head,
                out_features=seq_len,
                batch=seq_len,
            )
        )
        # values: (seq, seq) @ (seq, d_head) -> (seq, d_head)
        layers.append(
            FcLayer(
                f"{prefix}.h{h}.value",
                in_features=seq_len,
                out_features=d_head,
                batch=seq_len,
            )
        )
    layers += [
        FcLayer(f"{prefix}.out_proj", in_features=d_model, out_features=d_model, batch=seq_len),
        FcLayer(f"{prefix}.ffn1", in_features=d_model, out_features=ffn_dim, batch=seq_len),
        FcLayer(f"{prefix}.ffn2", in_features=ffn_dim, out_features=d_model, batch=seq_len),
    ]
    return layers


def depthwise_separable_layers(
    channels: int = 32,
    out_channels: int = 64,
    hw: int = 28,
    prefix: str = "dws",
) -> List[ConvLayer]:
    """A MobileNet-style depthwise-separable block: a ``G == C``
    depthwise 3x3 followed by a 1x1 pointwise projection."""
    return [
        ConvLayer(
            f"{prefix}.depthwise",
            C=channels, H=hw, W=hw, K=channels,
            R=3, S=3, pad_h=1, pad_w=1, G=channels,
        ),
        ConvLayer(
            f"{prefix}.pointwise",
            C=channels, H=hw, W=hw, K=out_channels, R=1, S=1,
        ),
    ]


def grouped_conv_layers(
    channels: int = 64,
    groups: int = 4,
    hw: int = 28,
    prefix: str = "grp",
) -> List[ConvLayer]:
    """A ResNeXt-style grouped 3x3 convolution."""
    return [
        ConvLayer(
            f"{prefix}.conv",
            C=channels, H=hw, W=hw, K=channels,
            R=3, S=3, pad_h=1, pad_w=1, G=groups,
        ),
    ]


def dilated_conv_layers(
    channels: int = 32,
    dilation: int = 2,
    hw: int = 28,
    prefix: str = "dil",
) -> List[ConvLayer]:
    """A dilated 3x3 (atrous) convolution; padding keeps H/W fixed."""
    return [
        ConvLayer(
            f"{prefix}.conv",
            C=channels, H=hw, W=hw, K=channels,
            R=3, S=3, pad_h=dilation, pad_w=dilation,
            dil_h=dilation, dil_w=dilation,
        ),
    ]


def nhwc_conv_layers(
    channels: int = 32,
    hw: int = 28,
    prefix: str = "nhwc",
) -> List[ConvLayer]:
    """A 3x3 convolution declared in NHWC/RSCK layout; the functional
    datapath transposes around the NCHW core (paper §V-B, Fig. 7/8)."""
    return [
        ConvLayer(
            f"{prefix}.conv",
            C=channels, H=hw, W=hw, K=channels,
            R=3, S=3, pad_h=1, pad_w=1, layout="NHWC",
        ),
    ]


register_model(
    "transformer",
    transformer_encoder_layers,
    description="Transformer encoder block (QKV/attention/FFN as dense GEMMs)",
    tags=("modern", "transformer"),
)
register_model(
    "depthwise_sep",
    depthwise_separable_layers,
    description="Depthwise-separable conv block (depthwise 3x3 + pointwise 1x1)",
    tags=("modern", "cnn", "conv-variant"),
)
register_model(
    "grouped_conv",
    grouped_conv_layers,
    description="Grouped 3x3 convolution (G=4)",
    tags=("modern", "cnn", "conv-variant"),
)
register_model(
    "dilated_conv",
    dilated_conv_layers,
    description="Dilated (atrous) 3x3 convolution (dil=2)",
    tags=("modern", "cnn", "conv-variant"),
)
register_model(
    "nhwc_conv",
    nhwc_conv_layers,
    description="NHWC-layout 3x3 convolution (layout-emulation path)",
    tags=("modern", "cnn", "conv-variant"),
)


__all__ = [
    "transformer_encoder_layers",
    "depthwise_separable_layers",
    "grouped_conv_layers",
    "dilated_conv_layers",
    "nhwc_conv_layers",
]
