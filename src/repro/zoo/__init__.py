"""repro.zoo — the workload zoo registry.

One registry replaces the ad-hoc per-model lookup (`if model ==
"alexnet": ...`) as the path from a model *name* to its layer
descriptors.  Everything that resolves a model — ``Session.run`` /
``tune`` / ``sweep``, the sweep plan matrix, the CLI's model choices,
the fuzz harness — goes through :func:`zoo_layers` / :func:`zoo_models`
here, so registering a new workload (built-in or user-defined) makes it
runnable by name everywhere at once.

The classic paper models (AlexNet, LeNet, VGG-small, MLP) register at
import time from :mod:`repro.models`; the modern workloads the paper's
matrix lacks (transformer encoder block, depthwise/grouped conv,
dilated and NHWC-layout variants) register from :mod:`repro.zoo.modern`.

Register your own::

    from repro.zoo import register_model

    @register_model("my_net", description="3-layer toy CNN")
    def my_net():
        return [ConvLayer("c1", C=3, H=32, W=32, K=8, R=3, S=3), ...]

Factories are called fresh on every :func:`zoo_layers` lookup and must
return a non-empty list of layer descriptors (``ConvLayer`` /
``FcLayer`` / ``GemmLayer``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class ZooEntry:
    """One registered workload: a name, a layer factory, and metadata."""

    name: str
    factory: Callable[[], List]
    description: str = ""
    tags: Tuple[str, ...] = ()

    def layers(self) -> List:
        layers = list(self.factory())
        if not layers:
            raise ReproError(
                f"zoo model {self.name!r} produced no layers"
            )
        return layers


_REGISTRY: Dict[str, ZooEntry] = {}


def register_model(
    name: str,
    factory: Optional[Callable[[], List]] = None,
    *,
    description: str = "",
    tags: Sequence[str] = (),
    replace: bool = False,
):
    """Register a layer factory under ``name``.

    Usable directly (``register_model("x", fn)``) or as a decorator
    (``@register_model("x")``).  Re-registering an existing name raises
    unless ``replace=True`` (the fuzz harness re-registers its generated
    models idempotently).
    """

    def _register(fn: Callable[[], List]) -> Callable[[], List]:
        if not name or not isinstance(name, str):
            raise ReproError(f"zoo model name must be a non-empty string, got {name!r}")
        existing = _REGISTRY.get(name)
        if existing is not None and not replace:
            raise ReproError(
                f"zoo model {name!r} is already registered; "
                f"pass replace=True to override"
            )
        _REGISTRY[name] = ZooEntry(
            name=name,
            factory=fn,
            description=description,
            tags=tuple(tags),
        )
        return fn

    if factory is not None:
        return _register(factory)
    return _register


def unregister_model(name: str) -> None:
    """Remove a registration (tests, fuzz-generated models)."""
    _REGISTRY.pop(name, None)


def zoo_entry(name: str) -> ZooEntry:
    """The :class:`ZooEntry` registered under ``name``."""
    _ensure_builtin_models()
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ReproError(
            f"unknown model {name!r}; expected one of {zoo_models()}"
        )
    return entry


def zoo_layers(model: str) -> List:
    """Layer descriptors of a registered zoo model."""
    return zoo_entry(model).layers()


def zoo_models(tag: Optional[str] = None) -> Tuple[str, ...]:
    """Registered model names (classic models first, then the rest in
    registration order); optionally filtered by tag."""
    _ensure_builtin_models()
    names = [
        name
        for name, entry in _REGISTRY.items()
        if tag is None or tag in entry.tags
    ]
    return tuple(names)


# ----------------------------------------------------------------------
# built-in registrations
# ----------------------------------------------------------------------
_BUILTINS_LOADED = False


def _ensure_builtin_models() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True

    from repro import models as classic

    register_model(
        "alexnet",
        lambda: classic.alexnet_conv_layers() + classic.alexnet_fc_layers(),
        description="AlexNet conv+fc stack (paper Table II)",
        tags=("classic", "cnn"),
    )
    register_model(
        "lenet",
        lambda: classic.lenet_conv_layers() + classic.lenet_fc_layers(),
        description="LeNet-5 conv+fc stack",
        tags=("classic", "cnn"),
    )
    register_model(
        "vgg_small",
        lambda: classic.vgg_small_conv_layers() + classic.vgg_small_fc_layers(),
        description="Reduced VGG conv+fc stack",
        tags=("classic", "cnn"),
    )
    register_model(
        "mlp",
        lambda: classic.mlp_fc_layers(),
        description="3-layer MLP (dense only)",
        tags=("classic", "mlp"),
    )

    # Modern workloads (transformer block, depthwise/grouped/dilated/NHWC
    # conv) — registration happens inside the module import.
    import repro.zoo.modern  # noqa: F401  (import = register)


__all__ = [
    "ZooEntry",
    "register_model",
    "unregister_model",
    "zoo_entry",
    "zoo_layers",
    "zoo_models",
]
